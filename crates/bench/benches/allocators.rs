//! Throughput of each allocator on representative instances.
//!
//! The paper positions layered allocation as cheap enough for JIT use
//! (linear scan territory) while matching ILP quality; this bench backs
//! the "fast" half of the claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lra_core::baselines::{BeladyLinearScan, ChaitinBriggs, LinearScan};
use lra_core::layered::Layered;
use lra_core::problem::{Allocator, Instance};
use lra_core::{LayeredHeuristic, Optimal};
use lra_graph::{generate, WeightedGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn chordal_instance(n: usize) -> Instance {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = generate::random_chordal(&mut rng, n, n + n / 2, 5);
    let w = generate::random_weights(&mut rng, n, 3);
    Instance::from_weighted_graph(WeightedGraph::new(g, w))
}

fn interval_instance(n: usize) -> Instance {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let profile = generate::IntervalProfile {
        n,
        points: n as u32 * 3,
        mean_len: 8,
        long_lived_percent: 12,
    };
    let ivs = generate::random_interval_set(&mut rng, &profile);
    let w = generate::random_weights(&mut rng, n, 3);
    Instance::from_intervals(ivs, w)
}

fn bench_chordal_allocators(c: &mut Criterion) {
    let inst = chordal_instance(400);
    let r = 8;
    let mut group = c.benchmark_group("chordal_400v_r8");
    group.sample_size(20);
    group.bench_function("GC", |b| b.iter(|| ChaitinBriggs::new().allocate(&inst, r)));
    group.bench_function("NL", |b| b.iter(|| Layered::nl().allocate(&inst, r)));
    group.bench_function("BL", |b| b.iter(|| Layered::bl().allocate(&inst, r)));
    group.bench_function("FPL", |b| b.iter(|| Layered::fpl().allocate(&inst, r)));
    group.bench_function("BFPL", |b| b.iter(|| Layered::bfpl().allocate(&inst, r)));
    group.bench_function("LH", |b| {
        b.iter(|| LayeredHeuristic::new().allocate(&inst, r))
    });
    group.finish();
}

fn bench_interval_allocators(c: &mut Criterion) {
    let inst = interval_instance(400);
    let r = 8;
    let mut group = c.benchmark_group("interval_400v_r8");
    group.sample_size(20);
    group.bench_function("DLS", |b| b.iter(|| LinearScan::new().allocate(&inst, r)));
    group.bench_function("BLS", |b| {
        b.iter(|| BeladyLinearScan::new().allocate(&inst, r))
    });
    group.bench_function("BFPL", |b| b.iter(|| Layered::bfpl().allocate(&inst, r)));
    group.bench_function("Optimal(flow)", |b| {
        b.iter(|| Optimal::new().allocate(&inst, r))
    });
    group.finish();
}

fn bench_instance_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfpl_by_size");
    group.sample_size(15);
    for n in [100usize, 200, 400, 800] {
        let inst = chordal_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| Layered::bfpl().allocate(inst, 8))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chordal_allocators,
    bench_interval_allocators,
    bench_instance_sizes
);
criterion_main!(benches);
