//! One Criterion bench per paper figure: regenerates the figure's data
//! series end to end (suite generation excluded from timing). These are
//! the `cargo bench` entry points referenced by DESIGN.md's
//! per-experiment index; the printable tables come from the
//! `lra-bench` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use lra_bench::experiments;
use lra_bench::suites;

fn bench_fig8(c: &mut Criterion) {
    let ws = suites::spec2000int(2013);
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig8_spec2000int", |b| {
        b.iter(|| experiments::mean_cost_figure(&ws, &experiments::CHORDAL_REGISTER_COUNTS))
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let ws = suites::eembc(2013);
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig9_eembc", |b| {
        b.iter(|| experiments::mean_cost_figure(&ws, &experiments::CHORDAL_REGISTER_COUNTS))
    });
    g.finish();
}

fn bench_fig10_and_13(c: &mut Criterion) {
    let ws = suites::lao_kernels(2013);
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig10_lao_kernels", |b| {
        b.iter(|| experiments::mean_cost_figure(&ws, &experiments::CHORDAL_REGISTER_COUNTS))
    });
    g.bench_function("fig13_lao_distribution", |b| {
        b.iter(|| experiments::distribution_figure(&ws, &experiments::CHORDAL_REGISTER_COUNTS))
    });
    g.finish();
}

fn bench_fig11_and_12(c: &mut Criterion) {
    let spec = suites::spec2000int(2013);
    let eembc = suites::eembc(2013);
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig11_spec_distribution", |b| {
        b.iter(|| experiments::distribution_figure(&spec, &experiments::CHORDAL_REGISTER_COUNTS))
    });
    g.bench_function("fig12_eembc_distribution", |b| {
        b.iter(|| experiments::distribution_figure(&eembc, &experiments::CHORDAL_REGISTER_COUNTS))
    });
    g.finish();
}

fn bench_fig14_and_15(c: &mut Criterion) {
    let ws = suites::specjvm98(2013);
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    // The full Figure 14 sweep runs the exact solver 8×9×6 times; bench
    // a representative R instead of the whole sweep to keep `cargo
    // bench` under a minute for this target.
    g.bench_function("fig14_jvm_r6", |b| {
        b.iter(|| experiments::jvm_mean_figure(&ws, &[6]))
    });
    g.bench_function("fig15_jvm_per_benchmark", |b| {
        b.iter(|| experiments::jvm_per_benchmark_figure(&ws, 6))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig8,
    bench_fig9,
    bench_fig10_and_13,
    bench_fig11_and_12,
    bench_fig14_and_15
);
criterion_main!(benches);
