//! Spill-then-reanalyse round cost: the shared incremental
//! `FunctionAnalysis` path (the default) against forced full per-round
//! recomputation (`LRA_FULL_REANALYSIS`). Both produce byte-identical
//! reports — this bench measures the wall-clock gap on the largest
//! `jit-large` methods, where re-analysis dominates the loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lra_bench::suites;
use lra_core::driver::AllocationPipeline;
use lra_core::pipeline::{build_instance, InstanceKind};
use lra_ir::Function;
use lra_targets::{Target, TargetKind};

/// The largest jit-large methods — the densest spill loops.
fn largest_functions(count: usize) -> Vec<Function> {
    let mut fs = suites::jit_large_functions(2013);
    fs.sort_by_key(|f| std::cmp::Reverse(f.value_count));
    fs.truncate(count);
    fs
}

/// Peak resident estimate of the heaviest first-round instance: the
/// packed adjacency matrix + CSR neighbor arena plus the weight
/// vector. Re-analysis rounds shrink the function's pressure, so the
/// first round's instance bounds the loop's allocation footprint.
fn peak_instance_bytes(fs: &[Function], target: &Target) -> u64 {
    fs.iter()
        .map(|f| {
            let inst = build_instance(f, target, InstanceKind::PreciseGraph);
            let weights = std::mem::size_of_val(inst.weighted_graph().weights());
            (inst.graph().resident_bytes() + weights) as u64
        })
        .max()
        .unwrap_or(0)
}

fn bench_rounds(c: &mut Criterion) {
    let fs = largest_functions(4);
    let target = Target::new(TargetKind::ArmCortexA8);
    let mut group = c.benchmark_group("pipeline_rounds");
    group.sample_size(10);
    group.metric("bytes_per_instance", peak_instance_bytes(&fs, &target));
    for full in [false, true] {
        let label = if full { "full" } else { "incremental" };
        // LH (not Portfolio) so the result cache and exact tier don't
        // blur the re-analysis comparison.
        let pipeline = AllocationPipeline::new(target)
            .allocator("LH")
            .instance_kind(InstanceKind::PreciseGraph)
            .registers(6)
            .max_rounds(4)
            .full_reanalysis(full);
        group.bench_with_input(BenchmarkId::from_parameter(label), &pipeline, |b, p| {
            b.iter(|| {
                for f in &fs {
                    let report = p.run(f).expect("LH accepts any graph");
                    assert!(report.rounds >= 1);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
