//! Complexity evidence: Frank's algorithm is O(|V| + |E|) and the
//! layered allocator is O(R(|V| + |E|)) — the paper's §4 claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lra_core::layered::Layered;
use lra_core::problem::{Allocator, Instance};
use lra_graph::{generate, peo, stable, WeightedGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn weighted_chordal(n: usize) -> WeightedGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let g = generate::random_chordal(&mut rng, n, n + n / 2, 5);
    let w = generate::random_weights(&mut rng, n, 3);
    WeightedGraph::new(g, w)
}

/// Frank's maximum weighted stable set versus graph size: time per
/// vertex should stay flat (linear algorithm).
fn bench_frank_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("frank_scaling");
    group.sample_size(15);
    for n in [250usize, 500, 1000, 2000, 4000] {
        let wg = weighted_chordal(n);
        let order = peo::perfect_elimination_order(wg.graph()).expect("chordal");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| stable::max_weight_stable_set(&wg, &order))
        });
    }
    group.finish();
}

/// Layered allocation versus register count: time should grow roughly
/// linearly in R until the candidate set empties.
fn bench_layered_vs_r(c: &mut Criterion) {
    let inst = Instance::from_weighted_graph(weighted_chordal(800));
    let mut group = c.benchmark_group("layered_vs_r");
    group.sample_size(15);
    for r in [1u32, 2, 4, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| Layered::nl().allocate(&inst, r))
        });
    }
    group.finish();
}

/// PEO computation (maximum cardinality search + verification).
fn bench_peo(c: &mut Criterion) {
    let mut group = c.benchmark_group("peo_mcs");
    group.sample_size(15);
    for n in [500usize, 2000, 8000] {
        let wg = weighted_chordal(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| peo::perfect_elimination_order(wg.graph()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frank_scaling, bench_layered_vs_r, bench_peo);
criterion_main!(benches);
