//! The `lra-bench batch` / `record` corpora and the persisted
//! benchmark baseline (`BENCH_batch.json`).
//!
//! [`standard_experiments`] defines the corpora the CLI batches over:
//! the random lao-kernels SSA suite (`BFPL`), the SPEC JVM98 JIT
//! methods (non-chordal, `LH`), the large-method JIT corpus under
//! the budgeted `Portfolio` policy, and the 504-method `jit-huge`
//! scaling corpus (many small methods — the thread-scaling
//! measurement). `batch` renders each
//! [`lra_core::BatchReport`] deterministically (timings go to stderr),
//! so CI can diff two runs — and a `--threads 4` run against the
//! sequential path — byte for byte. The standard portfolio
//! configuration is fuel-only (no wall-clock deadline), so its
//! escalation decisions are part of that determinism contract.
//!
//! [`record`] reruns the same corpora at several worker counts,
//! takes per-experiment **min and median** wall-clock times, and
//! writes the `BENCH_batch.json` baseline at the repo root so the
//! perf trajectory is tracked in-tree (see ROADMAP.md:
//! `BENCH_*.json` convention).

use crate::suites;
use lra_core::batch::BatchAllocator;
use lra_core::driver::AllocationPipeline;
use lra_core::pipeline::InstanceKind;
use lra_core::portfolio::PortfolioConfig;
use lra_core::BatchReport;
use lra_ir::Function;
use lra_targets::{Target, TargetKind};
use std::time::Duration;

/// One named batch corpus: a pipeline configuration plus the functions
/// it fans over.
pub struct BatchExperiment {
    /// Stable experiment name (`suite/allocator/R`).
    pub name: String,
    /// The per-function pipeline configuration.
    pub pipeline: AllocationPipeline,
    /// The function corpus, in suite order.
    pub functions: Vec<Function>,
}

impl BatchExperiment {
    /// Runs the corpus on `threads` workers (0 = default).
    pub fn run(&self, threads: usize) -> BatchReport {
        BatchAllocator::new(self.pipeline.clone())
            .threads(threads)
            .run(&self.functions)
    }
}

/// The deterministic portfolio configuration the standard corpora run
/// under: `LH` first, exact escalation under **node fuel only** — no
/// wall-clock deadline, so the escalation outcome (and therefore the
/// rendered report) is byte-identical at any worker count. The fuel is
/// sized so one escalation costs a few milliseconds at worst while
/// still letting the small half of the `jit-large` size mix certify.
pub fn standard_portfolio_config() -> PortfolioConfig {
    PortfolioConfig::default().node_budget(50_000)
}

/// The pipeline the `jit-large` batch corpus runs — and the one the
/// `serve` CLI subcommand hosts, so a `loadgen` dump over TCP is
/// byte-comparable to the in-tree `jit-large/Portfolio/R6` batch
/// experiment: ARM JIT target, precise graphs, R = 6, 4 rounds, the
/// standard fuel-only portfolio.
pub fn jit_large_pipeline() -> AllocationPipeline {
    AllocationPipeline::new(Target::new(TargetKind::ArmCortexA8))
        .instance_kind(InstanceKind::PreciseGraph)
        .registers(6)
        .max_rounds(4)
        .escalation(true)
        .portfolio(standard_portfolio_config())
}

/// The corpora behind `lra-bench -- batch` and `-- record`: the
/// random lao-kernels SSA suite under `BFPL` (interval view, R = 4),
/// the SPEC JVM98 JIT methods under `LH` (precise non-chordal graphs,
/// R = 6), and the large-method [`suites::jit_large`] corpus under the
/// budgeted `Portfolio` policy ([`standard_portfolio_config`], R = 6).
pub fn standard_experiments(seed: u64) -> Vec<BatchExperiment> {
    standard_experiments_with_policy(seed, None)
}

/// [`standard_experiments`] with an optional allocation-policy
/// override: `Some("portfolio")` (case-insensitive) moves every corpus
/// onto the budgeted portfolio policy; any other registry name runs
/// that allocator on every corpus (per-item errors, e.g. an interval
/// allocator on the precise-graph corpora, stay per-item); `None`
/// keeps each corpus's default shown above.
pub fn standard_experiments_with_policy(seed: u64, policy: Option<&str>) -> Vec<BatchExperiment> {
    experiments(seed, policy, standard_portfolio_config())
}

fn experiments(
    seed: u64,
    policy: Option<&str>,
    portfolio_cfg: PortfolioConfig,
) -> Vec<BatchExperiment> {
    let experiment = |suite: &'static str,
                      default_allocator: &'static str,
                      kind: InstanceKind,
                      r: u32,
                      max_rounds: u32,
                      functions: Vec<Function>| {
        // Every corpus opts into the split + remat escalation tier —
        // the §4.3 residual-pressure tail is exactly what these
        // converged counts track (`LRA_NO_SPLIT=1` still disables it
        // process-wide for before/after comparisons).
        let base = AllocationPipeline::new(Target::new(TargetKind::ArmCortexA8))
            .instance_kind(kind)
            .registers(r)
            .max_rounds(max_rounds)
            .escalation(true);
        let chosen = policy.unwrap_or(default_allocator);
        let (label, pipeline) = if chosen.eq_ignore_ascii_case("portfolio") {
            ("Portfolio", base.portfolio(portfolio_cfg.clone()))
        } else {
            (chosen, base.allocator(chosen))
        };
        BatchExperiment {
            name: format!("{suite}/{label}/R{r}"),
            pipeline,
            functions,
        }
    };
    vec![
        experiment(
            "lao-kernels",
            "BFPL",
            InstanceKind::LinearIntervals,
            4,
            8,
            suites::lao_kernel_functions(seed),
        ),
        experiment(
            "specjvm98",
            "LH",
            InstanceKind::PreciseGraph,
            6,
            8,
            suites::specjvm98_functions(seed),
        ),
        // The 200-temporary methods take the most work per round; a
        // tighter round budget keeps the batch wall-clock bounded
        // while still exercising the spill-then-reanalyse loop.
        experiment(
            "jit-large",
            "Portfolio",
            InstanceKind::PreciseGraph,
            6,
            4,
            suites::jit_large_functions(seed),
        ),
        // The scaling corpus: 504 mostly-small methods, so per-item
        // cost is low and the *pool* (queue churn, scratch reuse,
        // cache sharding) is what the timing measures.
        experiment(
            "jit-huge",
            "Portfolio",
            InstanceKind::PreciseGraph,
            6,
            3,
            suites::jit_huge_functions(seed),
        ),
    ]
}

/// One experiment's timing series in the recorded baseline.
#[derive(Clone, Debug)]
pub struct RecordedTiming {
    /// Worker-pool size of this series.
    pub threads: usize,
    /// Fastest wall-clock time over the repetitions, in milliseconds
    /// (the least noise-contaminated run — on a loaded host the min
    /// tracks the code's real cost better than the median).
    pub min_ms: f64,
    /// Median wall-clock time over the repetitions, in milliseconds.
    pub median_ms: f64,
    /// Repetitions the statistics were taken over.
    pub samples: usize,
}

/// One experiment's entry in the recorded baseline.
#[derive(Clone, Debug)]
pub struct RecordedExperiment {
    /// Experiment name (`suite/allocator/R`).
    pub name: String,
    /// Functions in the corpus.
    pub functions: usize,
    /// Total spill cost over the corpus (thread-count invariant).
    pub total_spill_cost: u64,
    /// Runs that converged.
    pub converged: usize,
    /// Runs that hit the round budget / residual-pressure cutoff.
    pub non_converged: usize,
    /// Converged runs rescued by the split + remat escalation tier.
    pub escalated: usize,
    /// Min/Q1/median/Q3/max of per-function spill cost.
    pub spill_cost_quartiles: Option<[u64; 5]>,
    /// Wall-clock medians, one per recorded thread count.
    pub timings: Vec<RecordedTiming>,
}

/// Records every standard experiment at each of `thread_counts`
/// (`reps` repetitions each, median taken), panicking if any thread
/// count renders a different report than the sequential path — the
/// baseline must never persist non-deterministic numbers.
///
/// # Panics
///
/// Panics unless `thread_counts` starts with `1`: the sequential run
/// is the determinism reference, so it must come first.
pub fn record(seed: u64, thread_counts: &[usize], reps: usize) -> Vec<RecordedExperiment> {
    assert_eq!(
        thread_counts.first(),
        Some(&1),
        "thread_counts must start with 1 (the sequential determinism reference)"
    );
    // The recorded baselines must track *solver* cost: with the
    // process-wide portfolio result cache on, every sample after the
    // first would be mostly cache lookups and a real solver
    // regression would never move the median. The batch CLI keeps the
    // cache (it is the shipped default); record disables it.
    experiments(seed, None, standard_portfolio_config().cache(false))
        .iter()
        .map(|exp| {
            // The first sample doubles as the determinism reference
            // (thread_counts starts at 1, so it is the sequential
            // path) — no extra untimed warm-up sweep.
            let mut reference: Option<(String, lra_core::BatchSummary)> = None;
            let mut timings = Vec::new();
            for &threads in thread_counts {
                let mut samples: Vec<Duration> = (0..reps.max(1))
                    .map(|_| {
                        let report = exp.run(threads);
                        match &reference {
                            Some((render, _)) => assert_eq!(
                                &report.render(),
                                render,
                                "{}: non-deterministic batch output at {threads} threads",
                                exp.name
                            ),
                            None => {
                                reference = Some((report.render(), report.summary.clone()));
                            }
                        }
                        report.elapsed
                    })
                    .collect();
                samples.sort();
                timings.push(RecordedTiming {
                    threads,
                    min_ms: samples[0].as_secs_f64() * 1e3,
                    median_ms: samples[samples.len() / 2].as_secs_f64() * 1e3,
                    samples: samples.len(),
                });
            }
            let (_, m) = reference.expect("at least one thread count and one rep");
            RecordedExperiment {
                name: exp.name.clone(),
                functions: m.functions,
                total_spill_cost: m.total_spill_cost,
                converged: m.converged,
                non_converged: m.non_converged,
                escalated: m.escalated,
                spill_cost_quartiles: m.spill_cost_quartiles,
                timings,
            }
        })
        .collect()
}

/// One worker count's service-throughput measurement in the recorded
/// baseline: the jit-large corpus pushed through a live
/// [`lra_service::AllocationService`] twice — cache-cold, then
/// cache-warm — under backpressure (queue capacity below the corpus
/// size).
#[derive(Clone, Debug)]
pub struct RecordedServiceRun {
    /// Worker-pool size of this run.
    pub workers: usize,
    /// Requests per pass (the corpus size).
    pub requests: usize,
    /// Wall-clock of the cache-cold pass, in milliseconds.
    pub cold_ms: f64,
    /// Wall-clock of the cache-warm pass, in milliseconds.
    pub warm_ms: f64,
    /// Functions served per second, cache-cold.
    pub throughput_cold: f64,
    /// Functions served per second, cache-warm.
    pub throughput_warm: f64,
    /// Median service time over both passes, in microseconds.
    pub p50_us: u64,
    /// 95th-percentile service time over both passes, in microseconds.
    pub p95_us: u64,
    /// Portfolio-cache hit rate of the cold pass alone (near 0 unless
    /// the corpus itself repeats instances).
    pub cache_hit_rate_cold: f64,
    /// Portfolio-cache hit rate of the warm pass alone (should
    /// approach 1.0 — every instance was solved in the cold pass).
    pub cache_hit_rate_warm: f64,
    /// Most requests ever queued at once.
    pub queue_high_water: usize,
    /// Requests served on the degraded (cheap-tier-only) path. The
    /// record runs carry no degrade watermark, so this stays 0 — the
    /// field exists so the baseline schema matches what an
    /// overload-configured server reports.
    pub degraded: u64,
    /// Requests shed at dequeue because their deadline had expired.
    /// Record requests carry no deadline, so this stays 0.
    pub deadline_exceeded: u64,
}

/// Queue capacity the service-throughput experiment runs under —
/// deliberately below the 27-function jit-large corpus so the
/// recorded numbers include real backpressure cycles.
pub const SERVICE_RECORD_QUEUE_CAPACITY: usize = 8;

/// Measures service throughput over the jit-large corpus at each of
/// `worker_counts`: for every count a fresh
/// [`lra_service::AllocationService`]
/// (shared process-wide result cache **cleared first**) serves the
/// corpus twice — cold then warm — and both passes are checked
/// byte-identical to the sequential [`BatchAllocator`] reference.
///
/// # Panics
///
/// Panics if any service pass renders differently from the batch
/// reference — the baseline must never persist numbers from a run
/// that broke the identity contract.
pub fn record_service(seed: u64, worker_counts: &[usize]) -> Vec<RecordedServiceRun> {
    use lra_core::batch::render_rows;
    use lra_core::portfolio::portfolio_cache;
    use lra_service::{AllocationService, ServiceConfig};

    let functions = suites::jit_large_functions(seed);
    let reference = BatchAllocator::new(jit_large_pipeline())
        .threads(1)
        .run(&functions)
        .render();
    worker_counts
        .iter()
        .map(|&workers| {
            portfolio_cache().clear();
            let service = AllocationService::start(
                ServiceConfig::new(jit_large_pipeline())
                    .workers(workers)
                    .queue_capacity(SERVICE_RECORD_QUEUE_CAPACITY),
            );
            let pass = |label: &str| {
                let t0 = std::time::Instant::now();
                let items = service.run_all(&functions);
                let elapsed = t0.elapsed();
                let rows: Vec<_> = items.iter().map(lra_core::batch::BatchItem::row).collect();
                assert_eq!(
                    render_rows(&rows),
                    reference,
                    "{workers}-worker service ({label}) diverged from the batch reference"
                );
                elapsed
            };
            // Snapshot the shared portfolio cache around each pass so
            // the hit rates are attributable per pass instead of one
            // blended number (which would sit near 0.5 by
            // construction and hide a broken warm path).
            let stats_start = portfolio_cache().stats();
            let cold = pass("cold");
            let stats_cold = portfolio_cache().stats();
            let warm = pass("warm");
            let stats_warm = portfolio_cache().stats();
            let metrics = service.shutdown();
            let per_sec = |d: Duration| {
                if d.as_secs_f64() > 0.0 {
                    functions.len() as f64 / d.as_secs_f64()
                } else {
                    0.0
                }
            };
            RecordedServiceRun {
                workers,
                requests: functions.len(),
                cold_ms: cold.as_secs_f64() * 1e3,
                warm_ms: warm.as_secs_f64() * 1e3,
                throughput_cold: per_sec(cold),
                throughput_warm: per_sec(warm),
                p50_us: metrics.p50.as_micros() as u64,
                p95_us: metrics.p95.as_micros() as u64,
                cache_hit_rate_cold: stats_cold.since(&stats_start).hit_rate(),
                cache_hit_rate_warm: stats_warm.since(&stats_cold).hit_rate(),
                queue_high_water: metrics.queue_high_water,
                degraded: metrics.degraded,
                deadline_exceeded: metrics.deadline_exceeded,
            }
        })
        .collect()
}

/// Serialises recorded experiments (plus the service-throughput runs)
/// as the `BENCH_batch.json` document (hand-rolled: the build
/// environment has no serde).
pub fn to_json(
    seed: u64,
    experiments: &[RecordedExperiment],
    service: &[RecordedServiceRun],
) -> String {
    use std::fmt::Write as _;
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"lra-bench/batch-v5\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    s.push_str("  \"experiments\": [\n");
    for (i, e) in experiments.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", escape(&e.name));
        let _ = writeln!(s, "      \"functions\": {},", e.functions);
        let _ = writeln!(s, "      \"total_spill_cost\": {},", e.total_spill_cost);
        let _ = writeln!(s, "      \"converged\": {},", e.converged);
        let _ = writeln!(s, "      \"non_converged\": {},", e.non_converged);
        let _ = writeln!(s, "      \"escalated\": {},", e.escalated);
        match e.spill_cost_quartiles {
            Some([min, q1, med, q3, max]) => {
                let _ = writeln!(
                    s,
                    "      \"spill_cost_quartiles\": [{min}, {q1}, {med}, {q3}, {max}],"
                );
            }
            None => {
                let _ = writeln!(s, "      \"spill_cost_quartiles\": null,");
            }
        }
        s.push_str("      \"timings\": [\n");
        for (j, t) in e.timings.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"threads\": {}, \"min_ms\": {:.3}, \"median_ms\": {:.3}, \"samples\": {}}}",
                t.threads, t.min_ms, t.median_ms, t.samples
            );
            s.push_str(if j + 1 < e.timings.len() { ",\n" } else { "\n" });
        }
        s.push_str("      ]\n");
        s.push_str(if i + 1 < experiments.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"service\": [\n");
    for (i, r) in service.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"workers\": {}, \"requests\": {}, \"queue_capacity\": {}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"throughput_cold_per_s\": {:.1}, \"throughput_warm_per_s\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"cache_hit_rate_cold\": {:.3}, \"cache_hit_rate_warm\": {:.3}, \"queue_high_water\": {}, \"degraded\": {}, \"deadline_exceeded\": {}}}",
            r.workers,
            r.requests,
            SERVICE_RECORD_QUEUE_CAPACITY,
            r.cold_ms,
            r.warm_ms,
            r.throughput_cold,
            r.throughput_warm,
            r.p50_us,
            r.p95_us,
            r.cache_hit_rate_cold,
            r.cache_hit_rate_warm,
            r.queue_high_water,
            r.degraded,
            r.deadline_exceeded
        );
        s.push_str(if i + 1 < service.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_experiments_have_all_four_corpora() {
        let exps = standard_experiments(3);
        assert_eq!(exps.len(), 4);
        assert_eq!(exps[0].name, "lao-kernels/BFPL/R4");
        assert_eq!(exps[1].name, "specjvm98/LH/R6");
        assert_eq!(exps[2].name, "jit-large/Portfolio/R6");
        assert_eq!(exps[3].name, "jit-huge/Portfolio/R6");
        for exp in &exps {
            assert!(!exp.functions.is_empty());
        }
        assert!(
            exps[3].functions.len() >= 500,
            "the scaling corpus must be large enough to amortise pool startup"
        );
    }

    #[test]
    fn policy_override_renames_and_reconfigures_every_corpus() {
        let exps = standard_experiments_with_policy(3, Some("portfolio"));
        assert!(exps.iter().all(|e| e.name.contains("/Portfolio/")));
        let exps = standard_experiments_with_policy(3, Some("GC"));
        assert!(exps.iter().all(|e| e.name.contains("/GC/")));
    }

    #[test]
    fn record_produces_valid_json_with_two_thread_counts() {
        // One rep per thread count keeps this fast enough for debug
        // CI while still driving record()'s sample/median/reference
        // loop end to end on the real corpora.
        let recorded = record(3, &[1, 2], 1);
        assert_eq!(recorded.len(), 4);
        for e in &recorded {
            assert_eq!(e.timings.len(), 2);
            assert_eq!(e.timings[0].threads, 1);
            assert_eq!(e.timings[1].threads, 2);
            assert!(e.timings.iter().all(|t| t.samples == 1));
            assert!(e.timings.iter().all(|t| t.median_ms > 0.0));
            assert!(e.timings.iter().all(|t| t.min_ms <= t.median_ms));
            assert!(e.functions > 0);
        }

        let json = to_json(3, &recorded, &[]);
        assert!(json.contains("\"schema\": \"lra-bench/batch-v5\""));
        assert!(json.contains("\"escalated\""));
        assert!(json.contains("\"min_ms\""));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"threads\": 2"));
        // Balanced braces/brackets — cheap structural sanity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_quotes_and_backslashes_in_names() {
        let rec = RecordedExperiment {
            name: "odd\"name\\here".to_string(),
            functions: 1,
            total_spill_cost: 0,
            converged: 1,
            non_converged: 0,
            escalated: 0,
            spill_cost_quartiles: None,
            timings: vec![RecordedTiming {
                threads: 1,
                min_ms: 1.0,
                median_ms: 1.0,
                samples: 1,
            }],
        };
        let json = to_json(0, &[rec], &[]);
        assert!(json.contains("odd\\\"name\\\\here"));
    }

    #[test]
    fn jit_large_pipeline_matches_the_batch_experiment() {
        // The serve subcommand and the batch corpus must run the
        // exact same pipeline or the loadgen-vs-batch diff is
        // comparing different problems. AllocationPipeline has no
        // PartialEq; the debug rendering covers every knob.
        let exps = standard_experiments(3);
        let jit = exps
            .iter()
            .find(|e| e.name.starts_with("jit-large"))
            .unwrap();
        assert_eq!(
            format!("{:?}", jit.pipeline),
            format!("{:?}", jit_large_pipeline())
        );
    }

    #[test]
    fn record_service_produces_consistent_numbers_and_json() {
        let runs = record_service(3, &[2]);
        assert_eq!(runs.len(), 1);
        let r = &runs[0];
        assert_eq!(r.workers, 2);
        assert_eq!(r.requests, 27);
        assert!(r.cold_ms > 0.0 && r.warm_ms > 0.0);
        assert!(r.throughput_cold > 0.0 && r.throughput_warm > 0.0);
        assert!(r.p95_us >= r.p50_us);
        assert!(
            r.cache_hit_rate_warm > 0.5,
            "the warm pass must hit the shared cache (got {:.3})",
            r.cache_hit_rate_warm
        );
        assert!(
            r.cache_hit_rate_warm > r.cache_hit_rate_cold,
            "warm pass ({:.3}) should out-hit the cold pass ({:.3})",
            r.cache_hit_rate_warm,
            r.cache_hit_rate_cold
        );
        assert!(r.queue_high_water <= SERVICE_RECORD_QUEUE_CAPACITY);
        let json = to_json(3, &[], &runs);
        assert!(json.contains("\"service\": ["));
        assert!(json.contains("\"workers\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "must start with 1")]
    fn record_rejects_thread_counts_without_sequential_reference() {
        let _ = record(3, &[2, 4], 1);
    }
}
