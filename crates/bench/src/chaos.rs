//! Chaos soak harness: loadgen against a fault-injected server.
//!
//! Starts an in-process TCP server whose workers panic, stall, and
//! sever connections on a seeded [`FaultPlan`], then drives the
//! jit-large corpus through it with a resilient proto-level client
//! that reconnects and resubmits until every function has exactly one
//! clean answer. The harness asserts the overload-safety contract the
//! service advertises:
//!
//! * every accepted request is answered **exactly once** per attempt —
//!   no duplicated ids, no lost completions on a surviving connection;
//! * every pass's surviving report is **byte-identical** to the
//!   [`BatchAllocator`] reference on the same corpus — faults perturb
//!   scheduling and transport, never results;
//! * every fault kind enabled in the plan actually **fired** (a chaos
//!   run that injected nothing proves nothing).
//!
//! The CLI front end (`lra-bench chaos`) prints each pass's report to
//! stdout in the exact `loadgen` format so CI can diff it against
//! `loadgen --local`, and the chaos log (reconnects, resubmits,
//! injected-fault counts) to stderr.

use lra_core::batch::{render_rows, BatchAllocator, ReportRow};
use lra_service::fault::{FaultPlan, FaultReport};
use lra_service::{proto, serve, ServiceConfig, ServiceMetrics};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Duration;

/// Requests kept in flight per connection. Deep enough to provoke
/// backpressure against small queues, small enough that one severed
/// connection never orphans most of the corpus.
const WINDOW: usize = 16;

/// Hard cap on reconnect-and-resubmit cycles per pass. A healthy run
/// over the 27-method corpus needs a handful; hitting this means the
/// server stopped making progress and the soak should fail loudly.
const MAX_CONNECTIONS: usize = 10_000;

/// What one chaos soak observed (see [`run`]).
pub struct ChaosOutcome {
    /// Per-pass rendered reports, each in `loadgen` format.
    pub passes: Vec<String>,
    /// Faults the server actually injected.
    pub faults: FaultReport,
    /// Connections the client had to open beyond the first per pass.
    pub reconnects: u64,
    /// Requests resubmitted because the answer was an injected panic
    /// row or was lost to a severed connection.
    pub resubmits: u64,
    /// `queue_full` rejections that were retried.
    pub queue_full: u64,
    /// Final drained server metrics.
    pub metrics: ServiceMetrics,
}

/// Runs `repeat` passes of the jit-large corpus against a
/// fault-injected in-process server and checks the exactly-once and
/// byte-identity contracts.
///
/// # Panics
///
/// Panics when any contract is violated: a duplicated or unknown
/// response id, a surviving report that differs from the batch
/// reference, an enabled fault kind that never fired, or a pass that
/// exhausts its reconnect budget.
pub fn run(
    seed: u64,
    threads: usize,
    queue: usize,
    repeat: usize,
    plan: FaultPlan,
) -> ChaosOutcome {
    let functions = crate::suites::jit_large_functions(seed);
    let reference = BatchAllocator::new(crate::batchrun::jit_large_pipeline())
        .threads(1)
        .run(&functions)
        .render();
    let texts: Vec<String> = functions.iter().map(lra_ir::textio::print).collect();
    let enabled = !plan.is_empty();
    let cfg = ServiceConfig::new(crate::batchrun::jit_large_pipeline())
        .workers(threads)
        .queue_capacity(queue)
        .faults(plan);
    let server = serve("127.0.0.1:0", cfg).expect("bind ephemeral chaos port");
    let addr = server.local_addr();

    let mut outcome = ChaosOutcome {
        passes: Vec::new(),
        faults: FaultReport::default(),
        reconnects: 0,
        resubmits: 0,
        queue_full: 0,
        metrics: server.metrics(),
    };
    for pass in 0..repeat.max(1) {
        let rows = chaos_pass(&addr.to_string(), &texts, &functions, &mut outcome);
        let rendered = render_rows(&rows);
        assert_eq!(
            rendered, reference,
            "pass {pass}: surviving responses must be byte-identical to the batch reference"
        );
        outcome.passes.push(rendered);
    }

    outcome.faults = server
        .fault_report()
        .expect("the chaos server runs with a fault plan installed");
    if enabled {
        assert!(
            outcome.faults.panics > 0 || outcome.faults.latencies > 0 || outcome.faults.drops > 0,
            "an enabled fault plan must inject something: {:?}",
            outcome.faults
        );
    }
    server.request_shutdown();
    outcome.metrics = server.wait();
    outcome
}

/// Drives one full pass: connect, pipeline the unanswered functions,
/// resubmit injected-panic rows and everything orphaned by a severed
/// connection, until every function has exactly one clean row.
fn chaos_pass(
    addr: &str,
    texts: &[String],
    functions: &[lra_ir::Function],
    outcome: &mut ChaosOutcome,
) -> Vec<ReportRow> {
    let mut rows: Vec<Option<ReportRow>> = vec![None; texts.len()];
    let mut next_id: u64 = 1;
    let mut connections = 0usize;
    while rows.iter().any(Option::is_none) {
        connections += 1;
        assert!(
            connections <= MAX_CONNECTIONS,
            "chaos pass stopped converging after {MAX_CONNECTIONS} connections \
             ({} of {} functions answered)",
            rows.iter().filter(|r| r.is_some()).count(),
            rows.len()
        );
        if connections > 1 {
            outcome.reconnects += 1;
        }
        // A fresh connection resubmits exactly the unanswered tail;
        // whatever was in flight on a severed connection is counted as
        // resubmitted the moment we reissue it with a fresh id.
        drive_connection(
            addr,
            texts,
            functions,
            &mut rows,
            &mut next_id,
            connections,
            outcome,
        );
    }
    rows.into_iter().map(|r| r.expect("all answered")).collect()
}

/// Runs one connection until it has answered everything still pending
/// or died (severed, timed out, or torn mid-frame). Fills `rows` in
/// place; the caller decides whether another connection is needed.
fn drive_connection(
    addr: &str,
    texts: &[String],
    functions: &[lra_ir::Function],
    rows: &mut [Option<ReportRow>],
    next_id: &mut u64,
    connection: usize,
    outcome: &mut ChaosOutcome,
) {
    let Ok(stream) = TcpStream::connect(addr) else {
        // The accept loop was momentarily busy; back off and retry.
        std::thread::sleep(Duration::from_millis(2));
        return;
    };
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = &stream;
    let mut pending: VecDeque<usize> = (0..rows.len()).filter(|&k| rows[k].is_none()).collect();
    if connection > 1 {
        outcome.resubmits += pending.len() as u64;
    }
    // id -> corpus index for requests in flight on *this* connection.
    let mut inflight: BTreeMap<u64, usize> = BTreeMap::new();
    loop {
        while inflight.len() < WINDOW {
            let Some(k) = pending.pop_front() else { break };
            let id = *next_id;
            *next_id += 1;
            let mut line = proto::alloc_request(id, &texts[k]);
            line.push('\n');
            if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
                return; // severed while sending; reconnect
            }
            inflight.insert(id, k);
        }
        if inflight.is_empty() {
            return; // nothing left for this connection to do
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // EOF / reset / timeout: reconnect
            Ok(_) => {}
        }
        let resp = match proto::parse_response(line.trim_end()) {
            Ok(resp) => resp,
            Err(_) => return, // torn frame from a mid-response sever
        };
        match resp {
            proto::Response::Row { id, row } => {
                let k = inflight
                    .remove(&id)
                    .unwrap_or_else(|| panic!("response for unknown or already-answered id {id}"));
                let injected = matches!(&row.outcome,
                    Err(e) if e.contains("chaos: injected"));
                if injected {
                    // The fault schedule is positional, so the fresh
                    // attempt lands on a different cycle slot.
                    outcome.resubmits += 1;
                    pending.push_back(k);
                } else {
                    assert_eq!(row.function, functions[k].name, "row/function mismatch");
                    assert!(
                        rows[k].is_none(),
                        "function {} answered twice (id {id})",
                        row.function
                    );
                    rows[k] = Some(row);
                }
            }
            proto::Response::Rejected { id, reason } => {
                let k = inflight
                    .remove(&id)
                    .unwrap_or_else(|| panic!("rejection for unknown id {id}"));
                assert_eq!(
                    reason,
                    proto::RejectReason::QueueFull,
                    "chaos requests carry no deadline, so only backpressure may shed them"
                );
                outcome.queue_full += 1;
                pending.push_back(k);
                std::thread::sleep(Duration::from_micros(500));
            }
            proto::Response::Other { fields, .. } => {
                panic!("unexpected non-row response: {fields:?}")
            }
        }
    }
}
