//! Experiment runners: one per figure of the paper's evaluation.
//!
//! Costs are aggregated per *program* (summing over its functions) and
//! normalised to the optimal allocation's cost for the same program and
//! register count, exactly as in the paper. Programs whose optimal cost
//! is zero at a given `R` (no spilling needed) are excluded from that
//! configuration's normalised statistics.
//!
//! Every runner fans its per-function work across the
//! [`lra_core::batch`] worker pool — pipeline sweeps go through
//! [`BatchAllocator`], instance-level studies through
//! [`batch::parallel_map`] — with the worker count resolved by
//! [`batch::default_threads`] (the CLI's `--threads` flag). The
//! figures are aggregates of per-function results combined in input
//! order, so the numbers are identical at any thread count.

use crate::stats::{self, FiveNum};
use crate::suites::Workload;
use lra_core::batch::{self, BatchAllocator};
use lra_core::driver::AllocationPipeline;
use lra_core::layered::Layered;
use lra_core::pipeline::InstanceKind;
use lra_core::problem::{Allocator, Instance};
use lra_core::registry::{AllocatorRegistry, CHORDAL_FIGURE_SET, JVM_FIGURE_SET};
use lra_core::Optimal;
use std::collections::BTreeMap;

/// The register counts of Figures 8–13.
pub const CHORDAL_REGISTER_COUNTS: [u32; 6] = [1, 2, 4, 8, 16, 32];
/// The register counts of Figure 14.
pub const JVM_REGISTER_COUNTS: [u32; 8] = [2, 4, 6, 8, 10, 12, 14, 16];

/// An algorithm column of a figure, resolved from the
/// [`AllocatorRegistry`] — the single source of truth for which
/// allocators exist and what instance view each one needs.
struct Column {
    name: &'static str,
    needs_intervals: bool,
}

fn columns(names: &[&str]) -> Vec<Column> {
    names
        .iter()
        .map(|n| {
            let spec = AllocatorRegistry::spec(n).expect("figure allocator is registered");
            Column {
                name: spec.name,
                needs_intervals: spec.needs_intervals,
            }
        })
        .collect()
}

fn chordal_columns() -> Vec<Column> {
    columns(&CHORDAL_FIGURE_SET)
}

fn jvm_columns() -> Vec<Column> {
    columns(&JVM_FIGURE_SET)
}

/// The instance view `col` must see for `w`: linear scans need
/// intervals; everyone else uses the suite's native view (interval for
/// the SSA suites, precise for JVM).
fn view_for(w: &Workload, col: &Column) -> InstanceKind {
    if col.needs_intervals {
        InstanceKind::LinearIntervals
    } else {
        w.kind
    }
}

/// Per-program absolute costs for one algorithm at one register count:
/// the paper's metric (first-round spill-everywhere allocation cost),
/// produced by fanning the full [`AllocationPipeline`] (allocate →
/// spill-code rewrite → assign → verify) over the workloads with a
/// [`BatchAllocator`] and summing per program.
///
/// Workloads are batched per `(target, view)` configuration — one
/// batch per suite in practice, since suites are homogeneous.
fn per_program_costs(workloads: &[Workload], col: &Column, r: u32) -> BTreeMap<&'static str, u64> {
    let mut acc: BTreeMap<&'static str, u64> = BTreeMap::new();
    // Group indices by pipeline configuration without requiring
    // Ord/Hash on Target; the group count is tiny.
    let mut groups: Vec<(lra_targets::Target, InstanceKind, Vec<usize>)> = Vec::new();
    for (i, w) in workloads.iter().enumerate() {
        let kind = view_for(w, col);
        match groups
            .iter_mut()
            .find(|(t, k, _)| *t == w.target && *k == kind)
        {
            Some((_, _, idxs)) => idxs.push(i),
            None => groups.push((w.target, kind, vec![i])),
        }
    }
    for (target, kind, idxs) in groups {
        let pipeline = AllocationPipeline::new(target)
            .allocator(col.name)
            .instance_kind(kind)
            .registers(r)
            .max_rounds(1);
        let functions: Vec<&lra_ir::Function> = idxs.iter().map(|&i| &workloads[i].ir).collect();
        let report = BatchAllocator::new(pipeline).run_refs(&functions);
        for (item, &i) in report.items.iter().zip(&idxs) {
            let w = &workloads[i];
            let r = match &item.outcome {
                Ok(r) => r,
                Err(e) => panic!("{} on {}: {e}", col.name, w.function),
            };
            debug_assert!(
                r.verdict.is_feasible(),
                "{} produced an infeasible allocation on {}",
                col.name,
                w.function
            );
            *acc.entry(w.program).or_insert(0) += r.first_round_spill_cost();
        }
    }
    acc
}

/// Per-program costs for a custom instance-level cost function — used
/// by the parameterised studies (ablation, threshold sweeps) whose
/// configured allocators are not registry entries. Fans over the
/// workloads with [`batch::parallel_map`].
fn per_program_costs_with(
    workloads: &[Workload],
    linear_scan_view: bool,
    r: u32,
    run: impl Fn(&Instance, u32) -> u64 + Sync,
) -> BTreeMap<&'static str, u64> {
    let costs = batch::parallel_map(workloads, batch::default_threads(), |_, w| {
        let inst = if linear_scan_view {
            w.linear_scan_instance()
        } else {
            &w.instance
        };
        run(inst, r)
    });
    let mut acc: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (w, c) in workloads.iter().zip(costs) {
        *acc.entry(w.program).or_insert(0) += c;
    }
    acc
}

/// One row of a mean-cost figure: register count plus the mean
/// normalised cost of each algorithm.
#[derive(Clone, Debug)]
pub struct MeanRow {
    /// Register count of this configuration.
    pub registers: u32,
    /// `(algorithm, mean normalised cost)` pairs, in column order.
    pub values: Vec<(&'static str, f64)>,
    /// Number of programs included (optimal cost > 0).
    pub programs: usize,
}

/// Runs a Figure-8/9/10-style experiment: for each `R`, the mean over
/// programs of `cost(alg, program) / cost(Optimal, program)`.
pub fn mean_cost_figure(workloads: &[Workload], rs: &[u32]) -> Vec<MeanRow> {
    figure_with_columns(workloads, rs, chordal_columns())
}

/// Figure 14: the same statistic on the non-chordal JVM suite with the
/// JIT algorithm set.
pub fn jvm_mean_figure(workloads: &[Workload], rs: &[u32]) -> Vec<MeanRow> {
    figure_with_columns(workloads, rs, jvm_columns())
}

fn figure_with_columns(workloads: &[Workload], rs: &[u32], cols: Vec<Column>) -> Vec<MeanRow> {
    let opt_idx = cols
        .iter()
        .position(|c| c.name == "Optimal")
        .expect("column set includes Optimal");
    rs.iter()
        .map(|&r| {
            let per_alg: Vec<BTreeMap<&'static str, u64>> = cols
                .iter()
                .map(|c| per_program_costs(workloads, c, r))
                .collect();
            let opt = &per_alg[opt_idx];
            let included: Vec<&'static str> = opt
                .iter()
                .filter(|&(_, &c)| c > 0)
                .map(|(&p, _)| p)
                .collect();
            let values = cols
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let ratios: Vec<f64> = included
                        .iter()
                        .map(|p| per_alg[i][p] as f64 / opt[p] as f64)
                        .collect();
                    (c.name, stats::mean(&ratios))
                })
                .collect();
            MeanRow {
                registers: r,
                values,
                programs: included.len(),
            }
        })
        .collect()
}

/// One distribution entry: the five-number summary of per-program
/// normalised costs for one algorithm at one register count.
#[derive(Clone, Debug)]
pub struct DistributionRow {
    /// Register count.
    pub registers: u32,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Distribution over programs of the normalised cost.
    pub summary: FiveNum,
}

/// Runs a Figure-11/12/13-style experiment: the distribution over
/// programs of normalised allocation costs, per algorithm and register
/// count (Optimal excluded — it is 1.0 by definition).
pub fn distribution_figure(workloads: &[Workload], rs: &[u32]) -> Vec<DistributionRow> {
    let cols = chordal_columns();
    let opt_idx = cols
        .iter()
        .position(|c| c.name == "Optimal")
        .expect("Optimal present");
    let mut out = Vec::new();
    for &r in rs {
        let per_alg: Vec<BTreeMap<&'static str, u64>> = cols
            .iter()
            .map(|c| per_program_costs(workloads, c, r))
            .collect();
        let opt = &per_alg[opt_idx];
        let included: Vec<&'static str> = opt
            .iter()
            .filter(|&(_, &c)| c > 0)
            .map(|(&p, _)| p)
            .collect();
        if included.is_empty() {
            continue;
        }
        for (i, c) in cols.iter().enumerate() {
            if i == opt_idx {
                continue;
            }
            let ratios: Vec<f64> = included
                .iter()
                .map(|p| per_alg[i][p] as f64 / opt[p] as f64)
                .collect();
            out.push(DistributionRow {
                registers: r,
                algorithm: c.name,
                summary: stats::five_number_summary(&ratios),
            });
        }
    }
    out
}

/// One bar of Figure 15: a benchmark's normalised cost under one
/// algorithm at a fixed register count.
#[derive(Clone, Debug)]
pub struct PerBenchmarkRow {
    /// Benchmark (program) name.
    pub program: &'static str,
    /// `(algorithm, normalised cost)` pairs.
    pub values: Vec<(&'static str, f64)>,
}

/// Figure 15: per-benchmark normalised costs on the JVM suite at `r`
/// registers. Benchmarks with zero optimal cost report 1.0 for every
/// algorithm that also spills nothing.
pub fn jvm_per_benchmark_figure(workloads: &[Workload], r: u32) -> Vec<PerBenchmarkRow> {
    let cols = jvm_columns();
    let opt_idx = cols
        .iter()
        .position(|c| c.name == "Optimal")
        .expect("Optimal present");
    let per_alg: Vec<BTreeMap<&'static str, u64>> = cols
        .iter()
        .map(|c| per_program_costs(workloads, c, r))
        .collect();
    let programs: Vec<&'static str> = per_alg[opt_idx].keys().copied().collect();
    programs
        .iter()
        .map(|&p| {
            let opt_cost = per_alg[opt_idx][p];
            let values = cols
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let cost = per_alg[i][p];
                    let ratio = if opt_cost == 0 {
                        if cost == 0 {
                            1.0
                        } else {
                            f64::INFINITY
                        }
                    } else {
                        cost as f64 / opt_cost as f64
                    };
                    (c.name, ratio)
                })
                .collect();
            PerBenchmarkRow { program: p, values }
        })
        .collect()
}

/// One row of the ablation study: a layered-allocator configuration
/// with its quality and runtime.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Configuration label (`NL/step1`, `BFPL/step2`, …).
    pub config: String,
    /// Mean normalised cost over programs, per register count.
    pub mean_by_r: Vec<(u32, f64)>,
    /// Total wall-clock time over the whole suite sweep.
    pub total_time: std::time::Duration,
}

/// Ablation study over the layered design space (bias × fixed point ×
/// step), quantifying what each §4 improvement buys and what the
/// `step ≥ 2` dynamic program costs.
pub fn ablation_figure(workloads: &[Workload], rs: &[u32]) -> Vec<AblationRow> {
    let opt_costs: Vec<BTreeMap<&'static str, u64>> = rs
        .iter()
        .map(|&r| {
            per_program_costs_with(workloads, false, r, |inst, rr| {
                Optimal::new().allocate(inst, rr).spill_cost
            })
        })
        .collect();

    let mut configs: Vec<(String, Layered)> = Vec::new();
    for step in [1u32, 2] {
        for (bias, fixed_point) in [(false, false), (true, false), (false, true), (true, true)] {
            let alg = Layered {
                bias,
                fixed_point,
                step: 1,
            };
            let label = format!("{}/step{step}", alg.name());
            configs.push((label, alg.with_step(step)));
        }
    }

    configs
        .into_iter()
        .map(|(config, alg)| {
            let start = std::time::Instant::now();
            let mean_by_r = rs
                .iter()
                .enumerate()
                .map(|(ri, &r)| {
                    let costs = per_program_costs_with(workloads, false, r, |inst, rr| {
                        alg.allocate(inst, rr).spill_cost
                    });
                    let ratios: Vec<f64> = opt_costs[ri]
                        .iter()
                        .filter(|&(_, &c)| c > 0)
                        .map(|(p, &c)| costs[p] as f64 / c as f64)
                        .collect();
                    (r, stats::mean(&ratios))
                })
                .collect();
            AblationRow {
                config,
                mean_by_r,
                total_time: start.elapsed(),
            }
        })
        .collect()
}

/// Renders the ablation study.
pub fn render_ablation_table(title: &str, rows: &[AblationRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    if rows.is_empty() {
        s.push_str("(no data)\n");
        return s;
    }
    let _ = write!(s, "{:>12}", "config");
    for (r, _) in &rows[0].mean_by_r {
        let _ = write!(s, " {:>7}", format!("R={r}"));
    }
    let _ = writeln!(s, " {:>10}", "time");
    for row in rows {
        let _ = write!(s, "{:>12}", row.config);
        for (_, v) in &row.mean_by_r {
            let _ = write!(s, " {v:>7.3}");
        }
        let _ = writeln!(s, " {:>8.0}ms", row.total_time.as_secs_f64() * 1e3);
    }
    s
}

/// Result of the §2.3 spill-set inclusion study.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InclusionStats {
    /// Functions whose optimal spill sets were inclusion-monotone over
    /// the whole register sweep.
    pub monotone: usize,
    /// Functions checked.
    pub total: usize,
}

/// Replays the empirical study of §2.3 (Diouf et al.): how often is the
/// optimal spill set at `R` registers a superset of the optimal spill
/// set at `R+1` registers? The paper reports 99.83% over SPEC JVM98
/// methods; Figure 2 proves it cannot be 100%.
///
/// Optimal allocations are rarely unique, so we greedily search for an
/// inclusion-monotone *chain* of optima: at each `R` the exact solver
/// runs with weights scaled by `n+1` plus a unit bonus for variables
/// allocated at the previous register count. The scaled optimum is
/// still an optimum of the original weights, and among the optima it
/// maximises overlap with the previous allocation.
pub fn spill_set_inclusion_study(workloads: &[Workload], rs: &[u32]) -> InclusionStats {
    use lra_core::problem::Instance;
    // Each function's register sweep is independent; fan functions
    // across the pool (the sweep itself is inherently sequential).
    let per_function = batch::parallel_map(workloads, batch::default_threads(), |_, w| {
        let base = w.linear_scan_instance();
        let wg = base.weighted_graph();
        let n = wg.vertex_count() as u64;
        let mut prev_alloc: Option<lra_graph::BitSet> = None;
        let mut ok = true;
        for &r in rs {
            let inst = match (&prev_alloc, base.intervals()) {
                (Some(prev), Some(ivs)) => {
                    let weights: Vec<u64> = (0..wg.vertex_count())
                        .map(|v| wg.weight(v) * (n + 1) + u64::from(prev.contains(v)))
                        .collect();
                    Instance::from_intervals(ivs.to_vec(), weights)
                }
                _ => base.clone(),
            };
            let a = Optimal::new().allocate(&inst, r);
            if let Some(p) = &prev_alloc {
                // More registers -> allocate a superset.
                if !p.is_subset(&a.allocated) {
                    ok = false;
                }
            }
            prev_alloc = Some(a.allocated);
        }
        ok
    });
    InclusionStats {
        monotone: per_function.iter().filter(|&&ok| ok).count(),
        total: per_function.len(),
    }
}

/// Sweeps the `BLS` cost-band threshold and reports the mean normalised
/// cost at each setting (threshold 0 degenerates to pure furthest-first
/// only among exact cost ties; large thresholds approach pure Belady).
pub fn bls_threshold_sweep(workloads: &[Workload], r: u32, thresholds: &[u32]) -> Vec<(u32, f64)> {
    use lra_core::baselines::BeladyLinearScan;
    let opt_costs = per_program_costs_with(workloads, false, r, |inst, rr| {
        Optimal::new().allocate(inst, rr).spill_cost
    });
    thresholds
        .iter()
        .map(|&t| {
            let costs = per_program_costs_with(workloads, true, r, |inst, rr| {
                BeladyLinearScan {
                    threshold_percent: t,
                }
                .allocate(inst, rr)
                .spill_cost
            });
            let ratios: Vec<f64> = opt_costs
                .iter()
                .filter(|&(_, &c)| c > 0)
                .map(|(p, &c)| costs[p] as f64 / c as f64)
                .collect();
            (t, stats::mean(&ratios))
        })
        .collect()
}

/// One row of the live-range-splitting study: spill-everywhere cost on
/// the original program versus on the program split at every use
/// (§2.1's load-store-optimisation view).
#[derive(Clone, Debug)]
pub struct SplitRow {
    /// Register count.
    pub registers: u32,
    /// Total optimal spill cost over the suite, unsplit.
    pub whole_ranges: u64,
    /// Total optimal spill cost over the suite, split at every use.
    pub split_ranges: u64,
}

/// Quantifies §2.1 item 3 / §4.3: spill-everywhere on use-split live
/// ranges is the Appel–George load-store formulation, in which the
/// short per-use sub-ranges (the future reloads) must themselves be
/// allocated. Comparing its optimal cost with the whole-range optimum
/// measures how much the plain spill-everywhere model *underestimates*
/// by ignoring residual reload pressure.
pub fn split_study(
    functions: &[lra_ir::Function],
    target: &lra_targets::Target,
    rs: &[u32],
) -> Vec<SplitRow> {
    use lra_core::pipeline::{build_instance, InstanceKind};
    use lra_ir::split::split_at_uses;
    // §2.1 item 3 holds in the Appel–George regime where stores are
    // free (a value may sit in memory and a register at once), so the
    // study prices both sides with a store-free cost model.
    let target = target.with_memory_costs(target.load_cost(), 0);
    rs.iter()
        .map(|&r| {
            let costs = batch::parallel_map(functions, batch::default_threads(), |_, f| {
                let a = build_instance(f, &target, InstanceKind::LinearIntervals);
                let whole = Optimal::new().allocate(&a, r).spill_cost;
                let s = split_at_uses(f);
                let b = build_instance(&s.function, &target, InstanceKind::LinearIntervals);
                let split = Optimal::new().allocate(&b, r).spill_cost;
                (whole, split)
            });
            let (whole, split) = costs
                .iter()
                .fold((0u64, 0u64), |(w, s), &(cw, cs)| (w + cw, s + cs));
            SplitRow {
                registers: r,
                whole_ranges: whole,
                split_ranges: split,
            }
        })
        .collect()
}

/// Renders the splitting study.
pub fn render_split_table(title: &str, rows: &[SplitRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    let _ = writeln!(
        s,
        "{:>10} {:>14} {:>14} {:>8}",
        "registers", "whole ranges", "split at uses", "ratio"
    );
    for r in rows {
        let ratio = if r.whole_ranges > 0 {
            r.split_ranges as f64 / r.whole_ranges as f64
        } else {
            1.0
        };
        let _ = writeln!(
            s,
            "{:>10} {:>14} {:>14} {:>8.3}",
            r.registers, r.whole_ranges, r.split_ranges, ratio
        );
    }
    s
}

/// One row of the SSA-conversion study: allocation cost on the
/// original non-SSA method versus on its pruned-SSA conversion.
#[derive(Clone, Debug)]
pub struct SsaConversionRow {
    /// Register count.
    pub registers: u32,
    /// Total LH spill cost on the original (non-chordal) graphs.
    pub lh_non_ssa: u64,
    /// Total exact optimum on the original graphs.
    pub opt_non_ssa: u64,
    /// Total BFPL spill cost on the SSA-converted (chordal) graphs.
    pub bfpl_ssa: u64,
    /// Total exact optimum on the SSA-converted graphs.
    pub opt_ssa: u64,
}

/// The "pre-spill phase in any compiler" study (§7): convert each JVM
/// method to pruned SSA (`lra_ir::ssa::into_ssa`) and compare the
/// layered-optimal allocator on the resulting chordal graph with the
/// `LH` approximation on the original non-chordal graph. SSA versioning
/// splits each variable at its merge points, so the SSA optimum is a
/// finer-grained (never worse-modelled) target.
pub fn ssa_conversion_study(
    functions: &[lra_ir::Function],
    target: &lra_targets::Target,
    rs: &[u32],
) -> Vec<SsaConversionRow> {
    use lra_core::pipeline::build_instance;
    use lra_core::LayeredHeuristic;
    use lra_ir::ssa::into_ssa;
    let converted: Vec<lra_ir::Function> =
        batch::parallel_map(functions, batch::default_threads(), |_, f| {
            into_ssa(f).function
        });
    let pairs: Vec<(&lra_ir::Function, &lra_ir::Function)> =
        functions.iter().zip(&converted).collect();
    rs.iter()
        .map(|&r| {
            let cells = batch::parallel_map(&pairs, batch::default_threads(), |_, &(f, s)| {
                let orig = build_instance(f, target, InstanceKind::PreciseGraph);
                // The SSA side uses the linearised-interval view: still
                // chordal (intervals), and the exact optimum stays
                // polynomial (min-cost flow) at SSA-converted sizes.
                let ssa = build_instance(s, target, InstanceKind::LinearIntervals);
                [
                    LayeredHeuristic::new().allocate(&orig, r).spill_cost,
                    Optimal::new().allocate(&orig, r).spill_cost,
                    Layered::bfpl().allocate(&ssa, r).spill_cost,
                    Optimal::new().allocate(&ssa, r).spill_cost,
                ]
            });
            let mut row = SsaConversionRow {
                registers: r,
                lh_non_ssa: 0,
                opt_non_ssa: 0,
                bfpl_ssa: 0,
                opt_ssa: 0,
            };
            for [lh, on, bf, os] in cells {
                row.lh_non_ssa += lh;
                row.opt_non_ssa += on;
                row.bfpl_ssa += bf;
                row.opt_ssa += os;
            }
            row
        })
        .collect()
}

/// Renders the SSA-conversion study.
///
/// Absolute costs are not comparable across the two IRs (SSA versioning
/// changes the value set and the SSA side uses the interval view), so
/// the table also shows each heuristic normalised to *its own* exact
/// optimum — the quantity that tells whether layered quasi-optimality
/// survives the conversion.
pub fn render_ssa_conversion_table(title: &str, rows: &[SsaConversionRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    let _ = writeln!(
        s,
        "{:>10} {:>12} {:>12} {:>9} {:>12} {:>12} {:>10}",
        "registers", "LH(non-SSA)", "Opt(non-SSA)", "LH/Opt", "BFPL(SSA)", "Opt(SSA)", "BFPL/Opt"
    );
    for r in rows {
        let ratio = |a: u64, b: u64| if b > 0 { a as f64 / b as f64 } else { 1.0 };
        let _ = writeln!(
            s,
            "{:>10} {:>12} {:>12} {:>9.4} {:>12} {:>12} {:>10.4}",
            r.registers,
            r.lh_non_ssa,
            r.opt_non_ssa,
            ratio(r.lh_non_ssa, r.opt_non_ssa),
            r.bfpl_ssa,
            r.opt_ssa,
            ratio(r.bfpl_ssa, r.opt_ssa)
        );
    }
    s
}

/// One row of the portfolio study: a program's aggregate spill cost
/// under the cheap tier alone versus under the full budgeted policy,
/// plus the policy's escalation statistics.
#[derive(Clone, Debug)]
pub struct PortfolioRow {
    /// Program (benchmark application) name.
    pub program: &'static str,
    /// Functions of this program in the suite.
    pub functions: usize,
    /// Total spill cost of the cheap tier's allocations.
    pub cheap_cost: u64,
    /// Total spill cost of the policy's final allocations.
    pub portfolio_cost: u64,
    /// Functions on which the policy escalated to the exact solver.
    pub escalated: usize,
    /// Escalations in which the exact solver finished inside the
    /// budget (the result is a certified optimum).
    pub certified: usize,
    /// Escalations in which the exact result strictly beat the cheap
    /// one.
    pub exact_wins: usize,
}

/// Runs the [`lra_core::portfolio::Portfolio`] policy over `workloads`
/// at `r` registers (on each workload's native instance view) and
/// aggregates per program, in first-appearance order.
///
/// Fans across the [`batch`] worker pool; with no wall-clock budget in
/// `cfg` the outcome is deterministic at any thread count.
///
/// # Panics
///
/// Panics if [`PortfolioConfig::cheap`](lra_core::portfolio::PortfolioConfig::cheap)
/// names no registered allocator.
pub fn portfolio_study(
    workloads: &[Workload],
    r: u32,
    cfg: &lra_core::portfolio::PortfolioConfig,
) -> Vec<PortfolioRow> {
    use lra_core::portfolio::{Portfolio, PortfolioSource};
    // Validate the configuration once, loudly, before fanning out.
    Portfolio::new(cfg.clone()).expect("portfolio cheap tier is a registered allocator");
    let outcomes = batch::parallel_map(workloads, batch::default_threads(), |_, w| {
        // Allocator boxes are not Sync; each decision builds its own
        // (construction is a few Box allocations, dwarfed by the solve).
        let policy = Portfolio::new(cfg.clone()).expect("validated above");
        policy.decide(&w.instance, r)
    });
    let mut rows: Vec<PortfolioRow> = Vec::new();
    for (w, out) in workloads.iter().zip(&outcomes) {
        let row = match rows.iter_mut().find(|row| row.program == w.program) {
            Some(row) => row,
            None => {
                rows.push(PortfolioRow {
                    program: w.program,
                    functions: 0,
                    cheap_cost: 0,
                    portfolio_cost: 0,
                    escalated: 0,
                    certified: 0,
                    exact_wins: 0,
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.functions += 1;
        row.cheap_cost += out.cheap_cost;
        row.portfolio_cost += out.allocation.spill_cost;
        row.escalated += usize::from(out.escalated);
        row.certified += usize::from(out.certified);
        row.exact_wins += usize::from(out.source == PortfolioSource::Exact);
    }
    rows
}

/// Renders the portfolio study with a totals line.
pub fn render_portfolio_table(title: &str, rows: &[PortfolioRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    if rows.is_empty() {
        s.push_str("(empty suite)\n");
        return s;
    }
    let _ = writeln!(
        s,
        "{:>12} {:>5} {:>11} {:>11} {:>7} {:>9} {:>9} {:>6}",
        "program", "fns", "cheap", "portfolio", "saved%", "escalated", "certified", "wins"
    );
    let mut total = PortfolioRow {
        program: "TOTAL",
        functions: 0,
        cheap_cost: 0,
        portfolio_cost: 0,
        escalated: 0,
        certified: 0,
        exact_wins: 0,
    };
    let saved = |cheap: u64, portfolio: u64| {
        if cheap > 0 {
            100.0 * (cheap - portfolio) as f64 / cheap as f64
        } else {
            0.0
        }
    };
    for row in rows {
        let _ = writeln!(
            s,
            "{:>12} {:>5} {:>11} {:>11} {:>6.2}% {:>9} {:>9} {:>6}",
            row.program,
            row.functions,
            row.cheap_cost,
            row.portfolio_cost,
            saved(row.cheap_cost, row.portfolio_cost),
            row.escalated,
            row.certified,
            row.exact_wins
        );
        total.functions += row.functions;
        total.cheap_cost += row.cheap_cost;
        total.portfolio_cost += row.portfolio_cost;
        total.escalated += row.escalated;
        total.certified += row.certified;
        total.exact_wins += row.exact_wins;
    }
    let _ = writeln!(
        s,
        "{:>12} {:>5} {:>11} {:>11} {:>6.2}% {:>9} {:>9} {:>6}",
        total.program,
        total.functions,
        total.cheap_cost,
        total.portfolio_cost,
        saved(total.cheap_cost, total.portfolio_cost),
        total.escalated,
        total.certified,
        total.exact_wins
    );
    s
}

/// Suite shape statistics (sizes and register pressure), for the
/// `stats` CLI command and the calibration notes in EXPERIMENTS.md.
/// An empty workload set renders an explicit `(empty suite)` report
/// instead of aborting.
pub fn render_suite_stats(title: &str, workloads: &[Workload]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    if workloads.is_empty() {
        s.push_str("(empty suite)\n");
        return s;
    }
    let n = workloads.len();
    let verts: Vec<f64> = workloads
        .iter()
        .map(|w| w.instance.vertex_count() as f64)
        .collect();
    let edges: Vec<f64> = workloads
        .iter()
        .map(|w| w.instance.graph().edge_count() as f64)
        .collect();
    let pressure: Vec<f64> = workloads
        .iter()
        .map(|w| w.instance.max_live() as f64)
        .collect();
    let chordal = workloads.iter().filter(|w| w.instance.is_chordal()).count();
    let _ = writeln!(s, "functions: {n} ({chordal} chordal)");
    let _ = writeln!(
        s,
        "variables: mean {:.1}, max {:.0}",
        stats::mean(&verts),
        verts.iter().cloned().fold(0.0, f64::max)
    );
    let _ = writeln!(
        s,
        "interferences: mean {:.1}, max {:.0}",
        stats::mean(&edges),
        edges.iter().cloned().fold(0.0, f64::max)
    );
    let _ = writeln!(
        s,
        "MaxLive: mean {:.1}, max {:.0}",
        stats::mean(&pressure),
        pressure.iter().cloned().fold(0.0, f64::max)
    );
    s
}

/// Renders mean rows as an aligned text table (the printed "figure").
pub fn render_mean_table(title: &str, rows: &[MeanRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    if rows.is_empty() {
        s.push_str("(no data)\n");
        return s;
    }
    let _ = write!(s, "{:>10} {:>6}", "registers", "progs");
    for (name, _) in &rows[0].values {
        let _ = write!(s, " {name:>8}");
    }
    s.push('\n');
    for row in rows {
        let _ = write!(s, "{:>10} {:>6}", row.registers, row.programs);
        for (_, v) in &row.values {
            let _ = write!(s, " {v:>8.3}");
        }
        s.push('\n');
    }
    s
}

/// Renders distribution rows as an aligned text table.
pub fn render_distribution_table(title: &str, rows: &[DistributionRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    let _ = writeln!(
        s,
        "{:>10} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "registers", "alg", "min", "q1", "median", "q3", "max"
    );
    for r in rows {
        let f = r.summary;
        let _ = writeln!(
            s,
            "{:>10} {:>6} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            r.registers, r.algorithm, f.min, f.q1, f.median, f.q3, f.max
        );
    }
    s
}

/// Renders Figure-15-style rows.
pub fn render_per_benchmark_table(title: &str, rows: &[PerBenchmarkRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    if rows.is_empty() {
        s.push_str("(no data)\n");
        return s;
    }
    let _ = write!(s, "{:>10}", "benchmark");
    for (name, _) in &rows[0].values {
        let _ = write!(s, " {name:>8}");
    }
    s.push('\n');
    for row in rows {
        let _ = write!(s, "{:>10}", row.program);
        for (_, v) in &row.values {
            let _ = write!(s, " {v:>8.3}");
        }
        s.push('\n');
    }
    s
}

/// Renders mean rows as CSV (one line per `(R, algorithm)`).
pub fn mean_rows_to_csv(rows: &[MeanRow]) -> String {
    let mut s = String::from("registers,algorithm,mean_normalized_cost,programs\n");
    for row in rows {
        for (name, v) in &row.values {
            s.push_str(&format!(
                "{},{},{:.6},{}\n",
                row.registers, name, v, row.programs
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;

    #[test]
    fn mean_figure_smoke_on_tiny_suite() {
        // A couple of lao workloads keep this fast.
        let ws: Vec<Workload> = suites::lao_kernels(3).into_iter().take(4).collect();
        let rows = mean_cost_figure(&ws, &[2, 4]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            // Optimal normalises to exactly 1.
            let opt = row.values.iter().find(|(n, _)| *n == "Optimal").unwrap().1;
            if row.programs > 0 {
                assert!((opt - 1.0).abs() < 1e-12);
                // Every heuristic is >= optimal.
                for (name, v) in &row.values {
                    assert!(*v >= 1.0 - 1e-12, "{name} below optimal: {v}");
                }
            }
        }
    }

    #[test]
    fn distribution_figure_consistent_with_mean() {
        let ws: Vec<Workload> = suites::lao_kernels(3).into_iter().take(4).collect();
        let rows = distribution_figure(&ws, &[2]);
        for r in &rows {
            assert!(r.summary.min <= r.summary.median);
            assert!(r.summary.median <= r.summary.max);
            assert!(r.summary.min >= 1.0 - 1e-12, "nobody beats Optimal");
        }
    }

    #[test]
    fn jvm_figures_smoke() {
        let ws: Vec<Workload> = suites::specjvm98(3).into_iter().take(6).collect();
        let rows = jvm_mean_figure(&ws, &[6]);
        assert_eq!(rows.len(), 1);
        for (name, v) in &rows[0].values {
            assert!(*v >= 1.0 - 1e-12, "{name} beat Optimal: {v}");
        }
        let per = jvm_per_benchmark_figure(&ws, 6);
        assert!(!per.is_empty());
    }

    #[test]
    fn portfolio_study_smoke_on_large_jit_methods() {
        let ws: Vec<Workload> = suites::jit_large(3).into_iter().take(4).collect();
        let cfg = lra_core::portfolio::PortfolioConfig::default().node_budget(20_000);
        let rows = portfolio_study(&ws, 6, &cfg);
        assert!(!rows.is_empty());
        for row in &rows {
            assert!(
                row.portfolio_cost <= row.cheap_cost,
                "{}: the policy may never lose to its own cheap tier",
                row.program
            );
            assert!(row.exact_wins <= row.certified);
            assert!(row.certified <= row.escalated);
            assert!(row.escalated <= row.functions);
        }
        let t = render_portfolio_table("portfolio", &rows);
        assert!(t.contains("TOTAL"));
        assert!(t.contains("escalated"));
    }

    #[test]
    fn empty_suite_stats_render_explicitly_instead_of_panicking() {
        let t = render_suite_stats("empty", &[]);
        assert!(t.contains("(empty suite)"));
        let t = render_portfolio_table("empty", &[]);
        assert!(t.contains("(empty suite)"));
    }

    #[test]
    fn tables_render() {
        let ws: Vec<Workload> = suites::lao_kernels(3).into_iter().take(2).collect();
        let rows = mean_cost_figure(&ws, &[2]);
        let t = render_mean_table("fig", &rows);
        assert!(t.contains("registers"));
        assert!(t.contains("BFPL"));
        let csv = mean_rows_to_csv(&rows);
        assert!(csv.starts_with("registers,algorithm"));
    }
}
