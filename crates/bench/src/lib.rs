//! Benchmark suites and experiment harness.
//!
//! Reproduces every figure of the evaluation section of *A Polynomial
//! Spilling Heuristic: Layered Allocation* (Diouf, Cohen & Rastello):
//!
//! | Figure | Content | Runner |
//! |--------|---------|--------|
//! | 8  | mean normalised cost, SPEC CPU2000int @ ST231 | [`experiments::mean_cost_figure`] |
//! | 9  | mean normalised cost, EEMBC @ ST231 | same runner |
//! | 10 | mean normalised cost, lao-kernels @ ARMv7 | same runner |
//! | 11–13 | per-program cost distributions for the three suites | [`experiments::distribution_figure`] |
//! | 14 | non-chordal SPEC JVM98, R ∈ 2..16 | [`experiments::jvm_mean_figure`] |
//! | 15 | per-benchmark JVM98 costs at R = 6 | [`experiments::jvm_per_benchmark_figure`] |
//!
//! The original benchmarks and compilers (Open64, JikesRVM) are not
//! redistributable, so [`suites`] *simulates* them: seeded synthetic
//! programs with suite-shaped size, loop-depth and pressure profiles,
//! compiled through the `lra-ir` pipeline into interference instances.
//! See `DESIGN.md` §3 for the substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batchrun;
pub mod chaos;
pub mod experiments;
pub mod profile;
pub mod stats;
pub mod suites;
