//! Experiment CLI: regenerates every figure of the paper's evaluation
//! and drives the parallel batch allocator.
//!
//! ```text
//! cargo run --release -p lra-bench -- all              # every figure
//! cargo run --release -p lra-bench -- fig8             # one figure
//! cargo run --release -p lra-bench -- fig14 --seed 7
//! cargo run --release -p lra-bench -- batch --threads 4
//! cargo run --release -p lra-bench -- batch --policy portfolio
//! cargo run --release -p lra-bench -- portfolio --budget-nodes 100000
//! cargo run --release -p lra-bench -- record           # BENCH_batch.json
//! cargo run --release -p lra-bench -- profile          # BENCH_phases.json
//! cargo run --release -p lra-bench -- chaos --seed 7   # fault-injected soak
//! ```
//!
//! Tables are printed to stdout and mirrored as CSV under
//! `target/experiments/`. `batch` prints a **deterministic** report to
//! stdout (identical at any `--threads` setting; timings go to
//! stderr); `record` persists median wall-clock baselines to
//! `BENCH_batch.json` at the repo root. `--threads N` also sets the
//! worker count every figure runner fans out with.

use lra_bench::experiments::{
    self, distribution_figure, jvm_mean_figure, jvm_per_benchmark_figure, mean_cost_figure,
    CHORDAL_REGISTER_COUNTS, JVM_REGISTER_COUNTS,
};
use lra_bench::suites;
use std::io::Write as _;

fn usage() -> ! {
    eprintln!(
        "usage: lra-bench <fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|ablation|inclusion|bls-sweep|split|ssa|stats|pipeline|batch|portfolio|serve|loadgen|chaos|record|profile|all> [--seed N] [--threads N] [--out PATH] [--chrome PATH] [--policy NAME] [--budget-nodes N] [--budget-ms N] [--addr HOST:PORT] [--queue N] [--repeat N] [--local] [--shutdown] [--panic-every N] [--latency-every N] [--latency-ms N] [--drop-every N]"
    );
    std::process::exit(2)
}

/// `serve`: host the jit-large pipeline behind the TCP front end until
/// a client sends the `shutdown` op. Deterministic allocation output
/// is the client's concern; everything this prints goes to stderr.
fn run_serve(addr: &str, workers: usize, queue: usize) {
    use lra_service::ServiceConfig;
    // workers == 0 means "resolve the default" — the service does
    // that itself.
    let cfg = ServiceConfig::new(lra_bench::batchrun::jit_large_pipeline())
        .workers(workers)
        .queue_capacity(queue);
    let server = lra_service::serve(addr, cfg).unwrap_or_else(|e| {
        eprintln!("serve: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "lra-service listening on {} (queue capacity {queue})",
        server.local_addr()
    );
    let metrics = server.wait();
    eprintln!("lra-service drained: {}", metrics.render());
}

/// `loadgen`: push the jit-large corpus through a running server
/// `repeat` times and print each pass's deterministic report to
/// stdout (timings and server stats go to stderr). `--local` skips
/// the network and prints the [`lra_core::batch::BatchAllocator`]
/// reference dump instead — CI diffs the two for byte-identity.
/// `--shutdown` asks the server to drain and exit afterwards.
fn run_loadgen(addr: &str, seed: u64, repeat: usize, local: bool, send_shutdown: bool) {
    let functions = lra_bench::suites::jit_large_functions(seed);
    if local {
        let batch = lra_core::batch::BatchAllocator::new(lra_bench::batchrun::jit_large_pipeline())
            .threads(1);
        for _ in 0..repeat.max(1) {
            print!("{}", batch.run(&functions).render());
            println!();
        }
        return;
    }
    let mut client =
        lra_service::Client::connect_retry(addr, 100, std::time::Duration::from_millis(100))
            .unwrap_or_else(|e| {
                eprintln!("loadgen: cannot connect to {addr}: {e}");
                std::process::exit(1);
            });
    let mut total_retries = 0u64;
    let mut total_deadline_rejections = 0u64;
    for pass in 0..repeat.max(1) {
        let result = client.allocate_all(&functions).unwrap_or_else(|e| {
            eprintln!("loadgen: pass {pass} failed: {e}");
            std::process::exit(1);
        });
        total_retries += result.retries;
        total_deadline_rejections += result.deadline_rejections;
        print!("{}", result.render());
        println!();
        eprintln!(
            "(pass {pass}: {} functions in {:.1} ms, {:.1}/s, {} backpressure retries)",
            result.rows.len(),
            result.elapsed.as_secs_f64() * 1e3,
            result.throughput(),
            result.retries
        );
    }
    // End-of-run overload summary: the client-side counters plus the
    // server's own shed/degrade totals. Stderr only — stdout carries
    // exclusively the deterministic reports CI diffs.
    let server_stat = |stats: &std::collections::BTreeMap<String, lra_service::proto::Json>,
                       key: &str| {
        stats
            .get(key)
            .and_then(lra_service::proto::Json::as_u64)
            .unwrap_or(0)
    };
    match client.stats() {
        Ok(stats) => {
            let fields: Vec<String> = stats.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
            eprintln!("(server stats: {})", fields.join(" "));
            eprintln!(
                "(loadgen summary: {total_retries} backpressure retries, \
                 {total_deadline_rejections} deadline rejections; server degraded {} \
                 / deadline_exceeded {} / rejected {})",
                server_stat(&stats, "degraded"),
                server_stat(&stats, "deadline_exceeded"),
                server_stat(&stats, "rejected"),
            );
        }
        Err(e) => {
            eprintln!(
                "(loadgen summary: {total_retries} backpressure retries, \
                 {total_deadline_rejections} deadline rejections; server stats unavailable: {e})"
            );
        }
    }
    if send_shutdown {
        if let Err(e) = client.shutdown() {
            eprintln!("loadgen: shutdown request failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `chaos`: soak the jit-large corpus against an in-process server
/// with seeded fault injection (worker panics, added latency, severed
/// connections). Each pass's surviving report goes to stdout in the
/// exact `loadgen` format — CI diffs it against `loadgen --local` —
/// and the chaos log (injected-fault and recovery counts) to stderr.
/// The harness itself asserts the exactly-once and byte-identity
/// contracts and panics on any violation.
fn run_chaos(
    seed: u64,
    threads: usize,
    queue: usize,
    repeat: usize,
    plan: lra_service::fault::FaultPlan,
) {
    let outcome = lra_bench::chaos::run(seed, threads, queue, repeat, plan);
    for pass in &outcome.passes {
        print!("{pass}");
        println!();
    }
    eprintln!(
        "(chaos: {} passes, faults injected: {} panics / {} latencies / {} drops; \
         client recovered with {} reconnects, {} resubmits, {} queue-full retries)",
        outcome.passes.len(),
        outcome.faults.panics,
        outcome.faults.latencies,
        outcome.faults.drops,
        outcome.reconnects,
        outcome.resubmits,
        outcome.queue_full
    );
    eprintln!("(server drained: {})", outcome.metrics.render());
}

/// `batch`: fan the standard corpora (lao-kernels + SPEC JVM98 +
/// jit-large) across the worker pool and print the deterministic
/// per-corpus reports. `--policy NAME` overrides every corpus's
/// allocator (`--policy portfolio` selects the budgeted portfolio).
fn run_batch(seed: u64, threads: usize, policy: Option<&str>) {
    for exp in lra_bench::batchrun::standard_experiments_with_policy(seed, policy) {
        let report = exp.run(threads);
        println!(
            "# Batch allocation: {} ({} functions)",
            exp.name,
            exp.functions.len()
        );
        print!("{}", report.render());
        println!();
        eprintln!(
            "({}: {} workers, {:.1} ms wall-clock)",
            exp.name,
            report.threads,
            report.elapsed.as_secs_f64() * 1e3
        );
    }
}

/// `portfolio`: run the budgeted portfolio policy over the large
/// non-SSA JIT corpus and print the per-program cheap-vs-portfolio
/// comparison. The node budget is the deterministic fuel cap; the
/// optional `--budget-ms` wall-clock deadline is a latency guard whose
/// escalation outcomes are machine-dependent (noted on stderr).
fn run_portfolio(seed: u64, budget_nodes: Option<u64>, budget_ms: Option<u64>) {
    use lra_core::portfolio::PortfolioConfig;
    let mut cfg =
        PortfolioConfig::default().time_budget(budget_ms.map(std::time::Duration::from_millis));
    if let Some(nodes) = budget_nodes {
        cfg = cfg.node_budget(nodes);
    }
    let registers = 6;
    let ws = lra_bench::suites::jit_large(seed);
    let rows = lra_bench::experiments::portfolio_study(&ws, registers, &cfg);
    let budget_label = match cfg.time_budget {
        Some(d) => format!(
            "{} nodes + {} ms per function",
            cfg.node_budget,
            d.as_millis()
        ),
        None => format!("{} nodes per function", cfg.node_budget),
    };
    if cfg.time_budget.is_some() {
        eprintln!("(wall-clock budget set: escalation outcomes depend on machine speed)");
    }
    print!(
        "{}",
        lra_bench::experiments::render_portfolio_table(
            &format!(
                "Portfolio policy on jit-large (R = {registers}, cheap = {}, budget = {budget_label})",
                cfg.cheap
            ),
            &rows
        )
    );
}

/// `record`: re-run the standard corpora at several worker counts and
/// persist the min/median wall-clock baselines (plus spill aggregates
/// and the service-throughput runs) as `BENCH_batch.json`.
fn run_record(seed: u64, out: &str) {
    // Threads {1, 2, 4} and workers {1, 2, 4} are recorded
    // unconditionally — the baseline's scaling rows must be comparable
    // across hosts, and oversubscription on a smaller machine is
    // itself a data point (the report stays byte-identical either
    // way; record asserts that).
    let thread_counts = [1usize, 2, 4];
    let recorded = lra_bench::batchrun::record(seed, &thread_counts, 5);
    let service = lra_bench::batchrun::record_service(seed, &[1, 2, 4]);
    for r in &service {
        eprintln!(
            "service jit-large: {} workers -> cold {:.1} ms ({:.1}/s, hit rate {:.2}), warm {:.1} ms ({:.1}/s, hit rate {:.2})",
            r.workers,
            r.cold_ms,
            r.throughput_cold,
            r.cache_hit_rate_cold,
            r.warm_ms,
            r.throughput_warm,
            r.cache_hit_rate_warm
        );
    }
    let json = lra_bench::batchrun::to_json(seed, &recorded, &service);
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    for e in &recorded {
        let base = e.timings.first().map_or(0.0, |t| t.min_ms);
        for t in &e.timings {
            eprintln!(
                "{}: {} threads -> min {:.1} ms, median {:.1} ms (x{:.2})",
                e.name,
                t.threads,
                t.min_ms,
                t.median_ms,
                if t.min_ms > 0.0 { base / t.min_ms } else { 0.0 }
            );
        }
    }
    println!("baselines written to {out}");
}

/// `profile`: run the standard corpora single-worker with phase
/// tracing armed and persist the merged per-phase self-times as
/// `BENCH_phases.json` (schema `lra-bench/phases-v1`). `--chrome PATH`
/// additionally re-runs the heaviest jit-large function in span-event
/// detail and writes a chrome://tracing document to `PATH`.
fn run_profile(seed: u64, out: &str, chrome: Option<&str>) {
    let profiles = lra_bench::profile::run(seed);
    for p in &profiles {
        eprintln!(
            "{}: {} functions, wall {:.1} ms, attributed {:.1} ms ({:.1}% of allocation time)",
            p.name,
            p.functions,
            p.wall.as_secs_f64() * 1e3,
            std::time::Duration::from_nanos(p.trace.total_self_ns()).as_secs_f64() * 1e3,
            p.coverage() * 100.0
        );
        for phase in lra_core::trace::Phase::ALL {
            let st = p.trace.phases[phase as usize];
            if st.count > 0 {
                eprintln!(
                    "  {:>14}: {:>8} spans, self {:>9.3} ms, total {:>9.3} ms",
                    phase.name(),
                    st.count,
                    st.self_ns as f64 / 1e6,
                    st.total_ns as f64 / 1e6
                );
            }
        }
    }
    let json = lra_bench::profile::to_json(seed, &profiles);
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("phase profile written to {out}");
    if let Some(path) = chrome {
        let trace = lra_bench::profile::chrome_trace(seed);
        std::fs::write(path, &trace).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("chrome trace written to {path}");
    }
}

/// `pipeline`: run every registered allocator end to end (allocate →
/// spill-code rewrite → reanalyse → assign → verify) on one sample
/// function and print the report columns.
fn run_pipeline_demo(seed: u64) {
    use lra_core::driver::AllocationPipeline;
    use lra_core::registry::AllocatorRegistry;
    use lra_ir::genprog::{random_ssa_function, SsaConfig};
    use lra_targets::{Target, TargetKind};
    use rand::SeedableRng as _;

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let cfg = SsaConfig {
        target_instrs: 120,
        liveness_window: 16,
        ..SsaConfig::default()
    };
    let f = random_ssa_function(&mut rng, &cfg, "demo::kernel");
    let target = Target::new(TargetKind::St231);
    let registers = 6;
    println!(
        "# AllocationPipeline on {} ({} values), {target}, R = {registers}",
        f.name, f.value_count
    );
    println!(
        "{:>8} {:>7} {:>11} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "alloc", "rounds", "spill cost", "stores", "loads", "live", "converged", "verified"
    );
    for spec in AllocatorRegistry::specs() {
        match AllocationPipeline::new(target)
            .allocator(spec.name)
            .instance_kind(spec.default_kind())
            .registers(registers)
            .run(&f)
        {
            Ok(report) => println!(
                "{:>8} {:>7} {:>11} {:>7} {:>7} {:>7} {:>9} {:>9}",
                report.allocator,
                report.rounds,
                report.spill_cost,
                report.stores,
                report.loads,
                format!("{}->{}", report.max_live_before, report.max_live_after),
                report.converged,
                report.verdict.is_feasible(),
            ),
            Err(e) => println!("{:>8} failed: {e}", spec.name),
        }
    }
}

fn save_csv(name: &str, contents: &str) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(contents.as_bytes());
            eprintln!("(csv written to {})", path.display());
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut seed = 2013u64; // CGO 2013
    let mut threads = 0usize; // 0 = auto (available_parallelism)
    let mut out: Option<String> = None;
    let mut chrome: Option<String> = None;
    let mut policy: Option<String> = None;
    let mut budget_nodes: Option<u64> = None;
    let mut budget_ms: Option<u64> = None;
    let mut addr = "127.0.0.1:7411".to_string();
    let mut queue = lra_service::DEFAULT_QUEUE_CAPACITY;
    let mut repeat = 1usize;
    let mut local = false;
    let mut send_shutdown = false;
    let mut panic_every = 7u64;
    let mut latency_every = 5u64;
    let mut latency_ms = 2u64;
    let mut drop_every = 9u64;
    let mut which = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                out = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--chrome" => {
                chrome = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--policy" => {
                policy = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--budget-nodes" => {
                budget_nodes = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--budget-ms" => {
                budget_ms = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--addr" => {
                addr = it.next().cloned().unwrap_or_else(|| usage());
            }
            "--queue" => {
                queue = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--repeat" => {
                repeat = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--panic-every" => {
                panic_every = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n != 1)
                    .unwrap_or_else(|| usage());
            }
            "--latency-every" => {
                latency_every = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--latency-ms" => {
                latency_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--drop-every" => {
                drop_every = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n != 1)
                    .unwrap_or_else(|| usage());
            }
            "--local" => local = true,
            "--shutdown" => send_shutdown = true,
            "all" => which.extend([
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "fig12",
                "fig13",
                "fig14",
                "fig15",
                "ablation",
                "inclusion",
                "bls-sweep",
                "split",
                "ssa",
                "stats",
                "pipeline",
                "batch",
                "portfolio",
            ]),
            "fig8" => which.push("fig8"),
            "fig9" => which.push("fig9"),
            "fig10" => which.push("fig10"),
            "fig11" => which.push("fig11"),
            "fig12" => which.push("fig12"),
            "fig13" => which.push("fig13"),
            "fig14" => which.push("fig14"),
            "fig15" => which.push("fig15"),
            "ablation" => which.push("ablation"),
            "inclusion" => which.push("inclusion"),
            "bls-sweep" => which.push("bls-sweep"),
            "split" => which.push("split"),
            "ssa" => which.push("ssa"),
            "stats" => which.push("stats"),
            "pipeline" => which.push("pipeline"),
            "batch" => which.push("batch"),
            "portfolio" => which.push("portfolio"),
            "serve" => which.push("serve"),
            "loadgen" => which.push("loadgen"),
            "chaos" => which.push("chaos"),
            "record" => which.push("record"),
            "profile" => which.push("profile"),
            _ => usage(),
        }
    }

    // Every figure runner and suite sweep fans out through the batch
    // pool; --threads pins its worker count process-wide.
    lra_core::batch::set_default_threads(threads);

    // Generate only the suites the requested figures need.
    let needs = |names: &[&str]| which.iter().any(|f| names.contains(f));
    let spec: Option<Vec<suites::Workload>> =
        needs(&["fig8", "fig11", "stats"]).then(|| suites::spec2000int(seed));
    let eembc: Option<Vec<suites::Workload>> =
        needs(&["fig9", "fig12", "stats"]).then(|| suites::eembc(seed));
    let lao: Option<Vec<suites::Workload>> =
        needs(&["fig10", "fig13", "ablation", "inclusion", "stats"])
            .then(|| suites::lao_kernels(seed));
    let jvm: Option<Vec<suites::Workload>> =
        needs(&["fig14", "fig15", "bls-sweep", "inclusion", "stats"])
            .then(|| suites::specjvm98(seed));
    let get = |name: &str| -> &[suites::Workload] {
        match name {
            "spec" => spec.as_deref().expect("suite generated"),
            "eembc" => eembc.as_deref().expect("suite generated"),
            "lao" => lao.as_deref().expect("suite generated"),
            "jvm" => jvm.as_deref().expect("suite generated"),
            _ => unreachable!(),
        }
    };

    for f in which {
        match f {
            "fig8" => {
                let rows = mean_cost_figure(get("spec"), &CHORDAL_REGISTER_COUNTS);
                print!(
                    "{}",
                    experiments::render_mean_table(
                        "Figure 8: allocation cost, SPEC CPU2000int on ST231 (normalised to Optimal)",
                        &rows
                    )
                );
                save_csv("fig8", &experiments::mean_rows_to_csv(&rows));
            }
            "fig9" => {
                let rows = mean_cost_figure(get("eembc"), &CHORDAL_REGISTER_COUNTS);
                print!(
                    "{}",
                    experiments::render_mean_table(
                        "Figure 9: allocation cost, EEMBC on ST231 (normalised to Optimal)",
                        &rows
                    )
                );
                save_csv("fig9", &experiments::mean_rows_to_csv(&rows));
            }
            "fig10" => {
                let rows = mean_cost_figure(get("lao"), &CHORDAL_REGISTER_COUNTS);
                print!(
                    "{}",
                    experiments::render_mean_table(
                        "Figure 10: allocation cost, lao-kernels on ARMv7 (normalised to Optimal)",
                        &rows
                    )
                );
                save_csv("fig10", &experiments::mean_rows_to_csv(&rows));
            }
            "fig11" | "fig12" | "fig13" => {
                let (suite, title) = match f {
                    "fig11" => (
                        "spec",
                        "Figure 11: distribution over SPEC CPU2000int programs (ST231)",
                    ),
                    "fig12" => (
                        "eembc",
                        "Figure 12: distribution over EEMBC programs (ST231)",
                    ),
                    _ => (
                        "lao",
                        "Figure 13: distribution over lao-kernels programs (ARMv7)",
                    ),
                };
                let rows = distribution_figure(get(suite), &CHORDAL_REGISTER_COUNTS);
                print!("{}", experiments::render_distribution_table(title, &rows));
            }
            "fig14" => {
                let rows = jvm_mean_figure(get("jvm"), &JVM_REGISTER_COUNTS);
                print!(
                    "{}",
                    experiments::render_mean_table(
                        "Figure 14: layered-heuristic vs other allocators, SPEC JVM98 (normalised to Optimal)",
                        &rows
                    )
                );
                save_csv("fig14", &experiments::mean_rows_to_csv(&rows));
            }
            "fig15" => {
                let rows = jvm_per_benchmark_figure(get("jvm"), 6);
                print!(
                    "{}",
                    experiments::render_per_benchmark_table(
                        "Figure 15: per-benchmark normalised cost, SPEC JVM98 at R = 6",
                        &rows
                    )
                );
            }
            "ablation" => {
                // lao-kernels: small enough that the step-2 clique-tree
                // DP actually runs instead of falling back to Frank.
                let rows = experiments::ablation_figure(get("lao"), &[2, 4, 8, 16]);
                print!(
                    "{}",
                    experiments::render_ablation_table(
                        "Ablation: bias x fixed-point x step on lao-kernels (mean normalised cost + total time)",
                        &rows
                    )
                );
            }
            "inclusion" => {
                println!("# Spill-set inclusion study (§2.3): existence of inclusion-monotone optimal chains");
                for (label, suite, rs) in [
                    ("lao-kernels, R = 1..8", "lao", vec![1u32, 2, 3, 4, 6, 8]),
                    (
                        "specjvm98 (interval view), R = 2..16",
                        "jvm",
                        vec![2, 4, 6, 8, 10, 12, 14, 16],
                    ),
                ] {
                    let s = experiments::spill_set_inclusion_study(get(suite), &rs);
                    println!(
                        "{label}: {}/{} functions inclusion-monotone ({:.1}%)",
                        s.monotone,
                        s.total,
                        100.0 * s.monotone as f64 / s.total.max(1) as f64
                    );
                }
            }
            "bls-sweep" => {
                let ws = get("jvm");
                println!("# BLS threshold sweep, SPEC JVM98 at R = 6 (mean normalised cost)");
                println!("{:>10} {:>8}", "threshold", "cost");
                for (t, v) in experiments::bls_threshold_sweep(ws, 6, &[0, 5, 10, 25, 50, 100, 400])
                {
                    println!("{t:>9}% {v:>8.3}");
                }
            }
            "split" => {
                let functions = suites::lao_kernel_functions(seed);
                let target = lra_targets::Target::new(lra_targets::TargetKind::ArmCortexA8);
                let rows = experiments::split_study(&functions, &target, &[2, 4, 8, 16]);
                print!(
                    "{}",
                    experiments::render_split_table(
                        "Live-range splitting (\u{a7}2.1/\u{a7}4.3): optimal cost, whole ranges vs use-split ranges with reload pressure (lao-kernels)",
                        &rows
                    )
                );
            }
            "ssa" => {
                let functions = suites::specjvm98_functions(seed);
                let target = lra_targets::Target::new(lra_targets::TargetKind::ArmCortexA8);
                let rows = experiments::ssa_conversion_study(&functions, &target, &[4, 6, 8]);
                print!(
                    "{}",
                    experiments::render_ssa_conversion_table(
                        "SSA conversion as a pre-spill phase (\u{a7}7): JVM98 methods, total spill cost",
                        &rows
                    )
                );
            }
            "pipeline" => run_pipeline_demo(seed),
            "batch" => run_batch(seed, threads, policy.as_deref()),
            "portfolio" => run_portfolio(seed, budget_nodes, budget_ms),
            "serve" => run_serve(&addr, threads, queue),
            "loadgen" => run_loadgen(&addr, seed, repeat, local, send_shutdown),
            "chaos" => run_chaos(
                seed,
                threads,
                queue,
                repeat,
                lra_service::fault::FaultPlan::new()
                    .seed(seed)
                    .panic_every(panic_every)
                    .latency_every(latency_every, std::time::Duration::from_millis(latency_ms))
                    .drop_every(drop_every),
            ),
            "record" => run_record(seed, out.as_deref().unwrap_or("BENCH_batch.json")),
            "profile" => run_profile(
                seed,
                out.as_deref().unwrap_or("BENCH_phases.json"),
                chrome.as_deref(),
            ),
            "stats" => {
                for (title, suite) in [
                    ("SPEC CPU2000int workload shape", "spec"),
                    ("EEMBC workload shape", "eembc"),
                    ("lao-kernels workload shape", "lao"),
                    ("SPEC JVM98 workload shape", "jvm"),
                ] {
                    print!("{}", experiments::render_suite_stats(title, get(suite)));
                    println!();
                }
                print!(
                    "{}",
                    experiments::render_suite_stats(
                        "jit-large workload shape",
                        &suites::jit_large(seed)
                    )
                );
                println!();
            }
            _ => unreachable!(),
        }
        println!();
    }
}
