//! The `lra-bench profile` subcommand: per-phase self-time over the
//! standard corpora (`BENCH_phases.json`) and an optional
//! chrome://tracing export for a single function.
//!
//! Each corpus runs on one worker under an armed
//! [`lra_core::trace`] recorder; every item's [`TraceReport`] is
//! merged, so the persisted numbers are *attributed* wall time — the
//! self time of all phases tiles each item's pipeline span exactly,
//! and summing it across a corpus reproduces the corpus's end-to-end
//! allocation time to within the fixed per-item bracketing overhead
//! (CI asserts ≥ 90% coverage).

use crate::batchrun::standard_experiments;
use lra_core::trace::{self, Phase, TraceReport};
use std::time::{Duration, Instant};

/// One corpus's merged phase profile.
pub struct CorpusProfile {
    /// Experiment name (`suite/allocator/R`).
    pub name: String,
    /// Functions in the corpus.
    pub functions: usize,
    /// Wall-clock of the whole batch run (pool spin-up included).
    pub wall: Duration,
    /// Sum of per-item allocation times — the end-to-end time the
    /// phase self-times are measured against (excludes pool spin-up
    /// and queue idle time, which no phase could ever account for).
    pub alloc: Duration,
    /// Phase counters merged over every item.
    pub trace: TraceReport,
}

impl CorpusProfile {
    /// Fraction of [`CorpusProfile::alloc`] attributed to phases
    /// (`Σ self_ns / alloc`); 1.0 when `alloc` is zero.
    pub fn coverage(&self) -> f64 {
        let alloc_ns = self.alloc.as_nanos() as f64;
        if alloc_ns > 0.0 {
            self.trace.total_self_ns() as f64 / alloc_ns
        } else {
            1.0
        }
    }
}

/// Profiles the four standard corpora on one worker with tracing
/// armed, merging every item's trace. Output bytes are not inspected
/// here — the trace-on/trace-off byte-identity is pinned by tests and
/// the CI diff; this run is about where the time went.
pub fn run(seed: u64) -> Vec<CorpusProfile> {
    let _on = trace::arm();
    standard_experiments(seed)
        .iter()
        .map(|exp| {
            let t0 = Instant::now();
            let report = exp.run(1);
            let wall = t0.elapsed();
            let mut merged = TraceReport::default();
            let mut alloc = Duration::ZERO;
            for item in &report.items {
                alloc += item.elapsed;
                if let Some(t) = &item.trace {
                    merged.merge(t);
                }
            }
            CorpusProfile {
                name: exp.name.clone(),
                functions: exp.functions.len(),
                wall,
                alloc,
                trace: merged,
            }
        })
        .collect()
}

/// Serialises corpus profiles as the `BENCH_phases.json` document
/// (schema `lra-bench/phases-v1`; hand-rolled, no serde in the build
/// environment). See `docs/benchmarks.md` for the field reference.
pub fn to_json(seed: u64, profiles: &[CorpusProfile]) -> String {
    use std::fmt::Write as _;
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"lra-bench/phases-v1\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    s.push_str("  \"corpora\": [\n");
    for (i, p) in profiles.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", escape(&p.name));
        let _ = writeln!(s, "      \"functions\": {},", p.functions);
        let _ = writeln!(s, "      \"wall_ms\": {:.3},", p.wall.as_secs_f64() * 1e3);
        let _ = writeln!(s, "      \"alloc_ms\": {:.3},", p.alloc.as_secs_f64() * 1e3);
        let _ = writeln!(s, "      \"coverage\": {:.4},", p.coverage());
        let _ = writeln!(s, "      \"rounds\": {},", p.trace.rounds);
        let _ = writeln!(s, "      \"spill_delta\": {},", p.trace.spill_delta);
        let _ = writeln!(s, "      \"fuel\": {},", p.trace.fuel);
        let _ = writeln!(s, "      \"cache_hits\": {},", p.trace.cache_hits());
        let _ = writeln!(s, "      \"cache_misses\": {},", p.trace.cache_misses());
        s.push_str("      \"phases\": [\n");
        for (j, phase) in Phase::ALL.iter().enumerate() {
            let st = p.trace.phases[*phase as usize];
            let _ = write!(
                s,
                "        {{\"name\": \"{}\", \"count\": {}, \"total_us\": {}, \"self_us\": {}}}",
                phase.name(),
                st.count,
                st.total_ns / 1_000,
                st.self_ns / 1_000
            );
            s.push_str(if j + 1 < Phase::ALL.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("      ]\n");
        s.push_str(if i + 1 < profiles.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs the heaviest jit-large function with span-event detail on and
/// returns a chrome://tracing JSON document (`traceEvents` with
/// complete `"X"` events, timestamps in microseconds) — load it at
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(seed: u64) -> String {
    use std::fmt::Write as _;
    let functions = crate::suites::jit_large_functions(seed);
    let f = functions
        .iter()
        .max_by_key(|f| f.value_count)
        .expect("jit-large corpus is non-empty");
    let _on = trace::arm();
    trace::begin(true);
    let _ = crate::batchrun::jit_large_pipeline().run(f);
    let report = trace::take().expect("tracing was armed");
    let mut s = String::new();
    let _ = writeln!(s, "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    for (i, e) in report.events.iter().enumerate() {
        let _ = write!(
            s,
            "  {{\"name\": \"{}\", \"cat\": \"lra\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \
             \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"depth\": {}}}}}",
            e.phase.name(),
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
            e.depth
        );
        s.push_str(if i + 1 < report.events.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_covers_the_standard_corpora_with_tiled_self_time() {
        let profiles = run(3);
        assert_eq!(profiles.len(), 4);
        for p in &profiles {
            assert!(p.functions > 0);
            assert!(p.trace.rounds > 0, "{}: no rounds recorded", p.name);
            let pipeline = p.trace.phases[Phase::Pipeline as usize];
            assert_eq!(
                pipeline.count, p.functions as u64,
                "{}: one pipeline span per function",
                p.name
            );
            // Self time tiles each pipeline span exactly, so the sum
            // over phases equals the sum of pipeline totals.
            assert_eq!(
                p.trace.total_self_ns(),
                pipeline.total_ns,
                "{}: self times must tile the pipeline spans",
                p.name
            );
            assert!(
                p.trace.phases[Phase::Allocate as usize].count >= p.functions as u64,
                "{}: at least one allocate span per function",
                p.name
            );
        }
        // The portfolio corpora must have charged fuel somewhere
        // (jit-large escalates under the standard node budget).
        assert!(
            profiles.iter().any(|p| p.trace.fuel > 0),
            "no corpus recorded exact-solve fuel"
        );
    }

    #[test]
    fn phases_json_is_balanced_and_carries_the_schema() {
        let profiles = run(3);
        let json = to_json(3, &profiles);
        assert!(json.contains("\"schema\": \"lra-bench/phases-v1\""));
        for name in [
            "lao-kernels/BFPL/R4",
            "specjvm98/LH/R6",
            "jit-large/Portfolio/R6",
            "jit-huge/Portfolio/R6",
        ] {
            assert!(json.contains(name), "missing corpus {name}");
        }
        for phase in Phase::ALL {
            assert!(json.contains(&format!("\"name\": \"{}\"", phase.name())));
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_is_balanced_and_nonempty() {
        let json = chrome_trace(3);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"pipeline\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
