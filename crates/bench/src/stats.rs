//! Small statistics helpers for the experiment tables.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean; 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geomean requires positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Five-number summary (min, first quartile, median, third quartile,
/// max) — the whisker/box statistics of the distribution figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FiveNum {
    /// Smallest observation.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
}

/// Computes the five-number summary of `xs` (linear interpolation
/// between order statistics).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn five_number_summary(xs: &[f64]) -> FiveNum {
    assert!(!xs.is_empty(), "five-number summary of an empty sample");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    FiveNum {
        min: v[0],
        q1: percentile(&v, 0.25),
        median: percentile(&v, 0.5),
        q3: percentile(&v, 0.75),
        max: v[v.len() - 1],
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let idx = p * (n - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (idx - lo as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_geomean_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn five_number_summary_of_known_sample() {
        let s = five_number_summary(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn five_number_summary_singleton() {
        let s = five_number_summary(&[7.0]);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let s = five_number_summary(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn five_number_summary_empty_panics() {
        let _ = five_number_summary(&[]);
    }
}
