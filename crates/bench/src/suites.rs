//! Simulated benchmark suites.
//!
//! Each suite mirrors the benchmark set the paper evaluates on, with
//! per-program seeded generators shaped to the suite's character:
//!
//! * [`spec2000int`] — 12 general-purpose integer applications
//!   (moderate loops, larger functions, calls) on ST231,
//! * [`eembc`] — 16 embedded kernels (small, loop-dominated) on ST231,
//! * [`lao_kernels`] — 12 very small STMicroelectronics kernels on
//!   ARMv7 (the paper notes these are "small benchmarks" that amplify
//!   bad allocation choices),
//! * [`specjvm98`] — 9 Java benchmarks compiled non-SSA (JikesRVM),
//!   giving non-chordal interference graphs; each workload carries
//!   *both* the precise graph instance (for `GC`/`LH`/`Optimal`) and
//!   the linearised interval instance (for the linear scans),
//! * [`jit_large`] — a server-class JIT corpus *beyond* the paper's
//!   evaluation: non-SSA methods up to ~200 temporaries with dense
//!   branching and irreducible-ish control flow (back edges to
//!   non-dominators). At this size the exact branch-and-bound baseline
//!   is no longer reliably tractable, which is exactly the workload
//!   the budgeted `Portfolio` policy exists for.
//!
//! The SSA suites use linearised-interval instances, so the interference
//! graphs are interval graphs (a subclass of the chordal graphs SSA
//! guarantees) and the exact optimum is available at any scale via
//! min-cost flow — this is the substitution for the paper's ILP.

use lra_core::batch;
use lra_core::pipeline::{build_instance, InstanceKind};
use lra_core::problem::Instance;
use lra_ir::genprog::{random_jit_function, random_ssa_function, JitConfig, SsaConfig};
use lra_targets::{Target, TargetKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One function-level allocation problem, tagged with its suite and
/// program (benchmark application) names.
///
/// A workload carries both the raw IR function (so the experiment
/// runners can drive the full [`lra_core::AllocationPipeline`] on it)
/// and the prebuilt instances (for the studies that operate on the
/// instance level, such as the inclusion study and the suite-shape
/// stats).
#[derive(Clone, Debug)]
pub struct Workload {
    /// Suite identifier (`spec2000int`, `eembc`, …).
    pub suite: &'static str,
    /// Program (application/benchmark) this function belongs to.
    pub program: &'static str,
    /// Function name.
    pub function: String,
    /// The generated IR function the instances were built from.
    pub ir: lra_ir::Function,
    /// Cost-model target of this suite.
    pub target: Target,
    /// How [`Workload::instance`] was built from [`Workload::ir`].
    pub kind: InstanceKind,
    /// The allocation instance the graph-based allocators solve.
    pub instance: Instance,
    /// Interval view for the linear-scan baselines (JVM suite only; the
    /// SSA suites already use interval instances).
    pub interval_instance: Option<Instance>,
}

impl Workload {
    /// The instance the linear scans should run on.
    pub fn linear_scan_instance(&self) -> &Instance {
        self.interval_instance.as_ref().unwrap_or(&self.instance)
    }
}

/// Names of the 12 SPEC CPU2000int applications.
pub const SPEC2000INT_PROGRAMS: [&str; 12] = [
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex", "bzip2",
    "twolf",
];

/// Names of the 16 EEMBC kernels used.
pub const EEMBC_PROGRAMS: [&str; 16] = [
    "a2time", "aifftr", "aifirf", "aiifft", "basefp", "bitmnp", "cacheb", "canrdr", "idctrn",
    "iirflt", "matrix", "pntrch", "puwmod", "rspeed", "tblook", "ttsprk",
];

/// Names of the 12 lao-kernels.
pub const LAO_KERNELS_PROGRAMS: [&str; 12] = [
    "autcor", "bitonic", "dbuffer", "divider", "fir", "floydall", "huffman", "latanal", "lmsfir",
    "maxindex", "polysyn", "sads",
];

/// The 9 SPEC JVM98 benchmarks of Figure 15, in the paper's order.
pub const SPECJVM98_PROGRAMS: [&str; 9] = [
    "check",
    "compress",
    "jess",
    "raytrace",
    "db",
    "javac",
    "mpegaudio",
    "mtrt",
    "jack",
];

/// The 9 simulated server-class applications of the [`jit_large`]
/// corpus (SPECjvm2008-flavoured names, since the paper's JVM98 set is
/// taken by the small-method suite).
pub const JIT_LARGE_PROGRAMS: [&str; 9] = [
    "compiler",
    "crypto",
    "derby",
    "scimark",
    "serial",
    "sunflow",
    "xml",
    "montecarlo",
    "batik",
];

fn mix(seed: u64, salt: &str, k: u64) -> ChaCha8Rng {
    // Cheap, stable string hash for per-program sub-seeds.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in salt.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(h.wrapping_add(k.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Generates the `programs × per_program` entries of one suite
/// (workloads, or bare functions for the corpus-only callers) on the
/// [`lra_core::batch`] worker pool. Every entry is produced from its
/// own [`mix`]-seeded RNG (seeding stays per-function), so the
/// parallel sweep is byte-identical to the old sequential loop —
/// `parallel_map` returns results in key order.
fn generate_suite<T: Send>(
    programs: &'static [&'static str],
    per_program: u64,
    gen: impl Fn(&'static str, u64) -> T + Sync,
) -> Vec<T> {
    let keys: Vec<(&'static str, u64)> = programs
        .iter()
        .flat_map(|&p| (0..per_program).map(move |k| (p, k)))
        .collect();
    batch::parallel_map(&keys, batch::default_threads(), |_, &(p, k)| gen(p, k))
}

/// SPEC CPU2000int on ST231: larger mixed functions with calls and
/// moderate loop nesting.
pub fn spec2000int(seed: u64) -> Vec<Workload> {
    let target = Target::new(TargetKind::St231);
    generate_suite(&SPEC2000INT_PROGRAMS, 5, |program, k| {
        let mut rng = mix(seed, program, k);
        let cfg = SsaConfig {
            target_instrs: rng.gen_range(140..=360),
            max_loop_depth: 3,
            branch_percent: 22,
            loop_percent: 10,
            call_percent: 7,
            copy_percent: 0,
            params: rng.gen_range(2..=6),
            liveness_window: rng.gen_range(16..=40),
        };
        let f = random_ssa_function(&mut rng, &cfg, format!("{program}::f{k}"));
        let instance = build_instance(&f, &target, InstanceKind::LinearIntervals);
        Workload {
            suite: "spec2000int",
            program,
            function: f.name.clone(),
            ir: f,
            target,
            kind: InstanceKind::LinearIntervals,
            instance,
            interval_instance: None,
        }
    })
}

/// EEMBC on ST231: small, loop-dominated embedded kernels.
pub fn eembc(seed: u64) -> Vec<Workload> {
    let target = Target::new(TargetKind::St231);
    generate_suite(&EEMBC_PROGRAMS, 3, |program, k| {
        let mut rng = mix(seed, program, k);
        let cfg = SsaConfig {
            target_instrs: rng.gen_range(60..=160),
            max_loop_depth: 3,
            branch_percent: 12,
            loop_percent: 20,
            call_percent: 2,
            copy_percent: 0,
            params: rng.gen_range(2..=4),
            liveness_window: rng.gen_range(10..=26),
        };
        let f = random_ssa_function(&mut rng, &cfg, format!("{program}::k{k}"));
        let instance = build_instance(&f, &target, InstanceKind::LinearIntervals);
        Workload {
            suite: "eembc",
            program,
            function: f.name.clone(),
            ir: f,
            target,
            kind: InstanceKind::LinearIntervals,
            instance,
            interval_instance: None,
        }
    })
}

/// The IR generator behind [`lao_kernels`] and
/// [`lao_kernel_functions`] — one function per `(program, k)` key.
fn lao_kernel_ir(seed: u64, program: &'static str, k: u64) -> lra_ir::Function {
    let mut rng = mix(seed, program, k);
    let cfg = SsaConfig {
        target_instrs: rng.gen_range(35..=90),
        max_loop_depth: 2,
        branch_percent: 10,
        loop_percent: 24,
        call_percent: 1,
        copy_percent: 0,
        params: rng.gen_range(2..=4),
        liveness_window: rng.gen_range(8..=20),
    };
    random_ssa_function(&mut rng, &cfg, format!("{program}::k{k}"))
}

/// lao-kernels on ARMv7: very small kernels where a single bad
/// allocation choice dominates the program cost.
pub fn lao_kernels(seed: u64) -> Vec<Workload> {
    let target = Target::new(TargetKind::ArmCortexA8);
    generate_suite(&LAO_KERNELS_PROGRAMS, 2, |program, k| {
        let f = lao_kernel_ir(seed, program, k);
        let instance = build_instance(&f, &target, InstanceKind::LinearIntervals);
        Workload {
            suite: "lao-kernels",
            program,
            function: f.name.clone(),
            ir: f,
            target,
            kind: InstanceKind::LinearIntervals,
            instance,
            interval_instance: None,
        }
    })
}

/// The raw lao-kernels functions for corpus-level callers (the batch
/// CLI, the splitting study). Skips [`build_instance`] entirely — the
/// pipeline rebuilds instances per round anyway.
pub fn lao_kernel_functions(seed: u64) -> Vec<lra_ir::Function> {
    generate_suite(&LAO_KERNELS_PROGRAMS, 2, |program, k| {
        lao_kernel_ir(seed, program, k)
    })
}

/// The raw SPEC JVM98 methods for corpus-level callers (the batch
/// CLI, the SSA-conversion study). Skips both [`build_instance`]
/// views the full [`specjvm98`] workloads carry.
pub fn specjvm98_functions(seed: u64) -> Vec<lra_ir::Function> {
    generate_suite(&SPECJVM98_PROGRAMS, 6, |program, k| {
        specjvm98_ir(seed, program, k)
    })
}

/// The IR generator behind [`specjvm98`] and [`specjvm98_functions`]
/// — one non-SSA method per `(program, k)` key.
fn specjvm98_ir(seed: u64, program: &'static str, k: u64) -> lra_ir::Function {
    let mut rng = mix(seed, program, k);
    let cfg = JitConfig {
        vars: rng.gen_range(16..=30),
        blocks: rng.gen_range(7..=14),
        instrs_per_block: rng.gen_range(4..=8),
        cross_percent: 35,
        back_percent: 25,
        call_percent: 8,
    };
    random_jit_function(&mut rng, &cfg, format!("{program}::m{k}"))
}

/// SPEC JVM98 through a JikesRVM-style non-SSA JIT: non-chordal precise
/// graphs plus interval views for the linear scans.
///
/// Method sizes are kept JVM-typical (≲ 35 temporaries) so the exact
/// branch-and-bound baseline terminates quickly.
pub fn specjvm98(seed: u64) -> Vec<Workload> {
    let target = Target::new(TargetKind::ArmCortexA8); // JITs target small register files
    generate_suite(&SPECJVM98_PROGRAMS, 6, |program, k| {
        let f = specjvm98_ir(seed, program, k);
        let instance = build_instance(&f, &target, InstanceKind::PreciseGraph);
        let interval_instance = build_instance(&f, &target, InstanceKind::LinearIntervals);
        Workload {
            suite: "specjvm98",
            program,
            function: f.name.clone(),
            ir: f,
            target,
            kind: InstanceKind::PreciseGraph,
            instance,
            interval_instance: Some(interval_instance),
        }
    })
}

/// The IR generator behind [`jit_large`] and [`jit_large_functions`]
/// — one non-SSA method per `(program, k)` key. Method sizes follow a
/// JIT-realistic skew — mostly small methods, a fat tail reaching ~200
/// temporaries (far past the ~35-temporary cap the JVM98 suite keeps
/// for exact-baseline tractability). The mix is what exercises every
/// portfolio outcome: small methods certify inside the budget, the
/// tail exhausts it. Block counts scale with the variable count so the
/// temporaries actually get defined, and the forward- and back-edge
/// densities are well above the JVM98 suite's, which yields dense,
/// frequently irreducible flow graphs.
fn jit_large_ir(seed: u64, program: &'static str, k: u64) -> lra_ir::Function {
    // `100 + k` keeps this sub-seed stream disjoint from the JVM98
    // generator for programs both suites might one day share.
    let mut rng = mix(seed, program, 100 + k);
    let size_class = rng.gen_range(0..100);
    let vars = if size_class < 50 {
        rng.gen_range(24..=60) // typical bytecode method
    } else if size_class < 80 {
        rng.gen_range(60..=120) // hot inlined region
    } else {
        rng.gen_range(120..=200) // interpreter-loop-sized monster
    };
    let cfg = JitConfig {
        vars,
        blocks: (vars / 6).max(10),
        instrs_per_block: rng.gen_range(6..=9),
        cross_percent: 55,
        back_percent: 40,
        call_percent: 6,
    };
    random_jit_function(&mut rng, &cfg, format!("{program}::m{k}"))
}

/// The large non-SSA JIT corpus: server-class methods up to ~200
/// temporaries with non-chordal precise graphs plus interval views,
/// on the ARM JIT target. The workload class the `Portfolio` policy
/// (cheap allocator first, exact solver only under a work budget) is
/// designed for — unlike [`specjvm98`], an *unbudgeted* exact sweep
/// over this suite is not guaranteed to terminate in reasonable time.
pub fn jit_large(seed: u64) -> Vec<Workload> {
    let target = Target::new(TargetKind::ArmCortexA8);
    generate_suite(&JIT_LARGE_PROGRAMS, 3, |program, k| {
        let f = jit_large_ir(seed, program, k);
        let instance = build_instance(&f, &target, InstanceKind::PreciseGraph);
        let interval_instance = build_instance(&f, &target, InstanceKind::LinearIntervals);
        Workload {
            suite: "jit-large",
            program,
            function: f.name.clone(),
            ir: f,
            target,
            kind: InstanceKind::PreciseGraph,
            instance,
            interval_instance: Some(interval_instance),
        }
    })
}

/// The raw [`jit_large`] methods for corpus-level callers (the batch
/// CLI). Skips [`build_instance`] — the pipeline rebuilds instances
/// per round anyway.
pub fn jit_large_functions(seed: u64) -> Vec<lra_ir::Function> {
    generate_suite(&JIT_LARGE_PROGRAMS, 3, |program, k| {
        jit_large_ir(seed, program, k)
    })
}

/// Methods per program in the [`jit_huge_functions`] corpus
/// (9 programs × 56 = 504 functions).
pub const JIT_HUGE_PER_PROGRAM: u64 = 56;

/// The IR generator behind [`jit_huge_functions`] — one non-SSA
/// method per `(program, k)` key. Same JIT-realistic size skew as
/// [`jit_large`] (mostly small methods, a fat tail) but with the
/// classes shifted down so a 500-method sweep stays cheap enough to
/// repeat at several thread counts: the corpus is built to measure
/// *scheduling* (per-item cost variance, queue churn, scratch reuse),
/// not per-method solver depth.
fn jit_huge_ir(seed: u64, program: &'static str, k: u64) -> lra_ir::Function {
    // `1000 + k` keeps this sub-seed stream disjoint from both the
    // JVM98 (`k`) and jit-large (`100 + k`) generators, which share
    // program names.
    let mut rng = mix(seed, program, 1000 + k);
    let size_class = rng.gen_range(0..100);
    let vars = if size_class < 70 {
        rng.gen_range(10..=28) // typical bytecode method
    } else if size_class < 95 {
        rng.gen_range(28..=60) // hot inlined region
    } else {
        rng.gen_range(60..=110) // occasional monster
    };
    let cfg = JitConfig {
        vars,
        blocks: (vars / 6).max(6),
        instrs_per_block: rng.gen_range(4..=7),
        cross_percent: 50,
        back_percent: 35,
        call_percent: 5,
    };
    random_jit_function(&mut rng, &cfg, format!("{program}::h{k}"))
}

/// The scaling corpus: 504 seeded non-SSA JIT methods
/// ([`JIT_HUGE_PER_PROGRAM`] per [`JIT_LARGE_PROGRAMS`] entry) with
/// the `jit_huge_ir` size skew. Large enough that worker-pool
/// overheads (queue contention, per-function buffer churn) dominate
/// any fixed setup cost — the corpus the thread-scaling rows of
/// `BENCH_batch.json` are recorded on.
pub fn jit_huge_functions(seed: u64) -> Vec<lra_ir::Function> {
    generate_suite(&JIT_LARGE_PROGRAMS, JIT_HUGE_PER_PROGRAM, |program, k| {
        jit_huge_ir(seed, program, k)
    })
}

/// Shape summary of a workload set, for calibration checks and the
/// `stats` CLI command.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuiteShape {
    /// Workloads in the set.
    pub functions: usize,
    /// Workloads whose precise interference graph is chordal.
    pub chordal: usize,
    /// Largest variable count over the set.
    pub max_vars: usize,
    /// Largest MaxLive over the set.
    pub max_pressure: usize,
    /// Mean MaxLive over the set.
    pub mean_pressure: f64,
}

/// Computes the [`SuiteShape`] of `ws`, or `None` for an empty
/// workload set — the explicit empty-suite result callers must handle
/// instead of the `max().unwrap()` panic this replaces.
pub fn suite_shape(ws: &[Workload]) -> Option<SuiteShape> {
    if ws.is_empty() {
        return None;
    }
    let pressures: Vec<usize> = ws.iter().map(|w| w.instance.max_live()).collect();
    Some(SuiteShape {
        functions: ws.len(),
        chordal: ws.iter().filter(|w| w.instance.is_chordal()).count(),
        max_vars: ws
            .iter()
            .map(|w| w.instance.vertex_count())
            .max()
            .unwrap_or(0),
        max_pressure: pressures.iter().copied().max().unwrap_or(0),
        mean_pressure: pressures.iter().sum::<usize>() as f64 / pressures.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssa_suites_are_chordal_with_intervals() {
        for w in spec2000int(1).iter().take(6) {
            assert!(w.instance.is_chordal());
            assert!(w.instance.intervals().is_some());
        }
        for w in eembc(1).iter().take(6) {
            assert!(w.instance.is_chordal());
        }
        for w in lao_kernels(1).iter().take(6) {
            assert!(w.instance.is_chordal());
        }
    }

    #[test]
    fn suites_are_deterministic() {
        let a = lao_kernels(7);
        let b = lao_kernels(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.function, y.function);
            assert_eq!(
                x.instance.weighted_graph().weights(),
                y.instance.weighted_graph().weights()
            );
            assert_eq!(
                x.instance.graph().edge_count(),
                y.instance.graph().edge_count()
            );
        }
    }

    #[test]
    fn suite_sizes_match_program_lists() {
        assert_eq!(spec2000int(1).len(), 12 * 5);
        assert_eq!(eembc(1).len(), 16 * 3);
        assert_eq!(lao_kernels(1).len(), 12 * 2);
        assert_eq!(specjvm98(1).len(), 9 * 6);
    }

    #[test]
    fn spec_pressure_is_high_enough_to_spill() {
        // The R-sweep only makes sense if functions actually overflow
        // mid-range register counts.
        let ws = spec2000int(1);
        let shape = suite_shape(&ws).expect("generated suite is non-empty");
        assert!(
            shape.max_pressure > 16,
            "peak MaxLive {} too low",
            shape.max_pressure
        );
        assert!(
            shape.mean_pressure > 6.0,
            "mean MaxLive {:.1} too low",
            shape.mean_pressure
        );
    }

    #[test]
    fn suite_shape_of_an_empty_set_is_none_not_a_panic() {
        assert_eq!(suite_shape(&[]), None);
    }

    #[test]
    fn jit_large_methods_are_big_dense_and_mostly_non_chordal() {
        let ws = jit_large(1);
        assert_eq!(ws.len(), 9 * 3);
        let shape = suite_shape(&ws).expect("non-empty");
        assert!(
            shape.max_vars >= 150,
            "corpus should reach ~200 temporaries (max {})",
            shape.max_vars
        );
        assert!(
            shape.max_vars > 35,
            "must exceed the JVM98 tractability cap"
        );
        assert!(
            shape.chordal * 4 < shape.functions,
            "large JIT graphs should be overwhelmingly non-chordal ({}/{})",
            shape.chordal,
            shape.functions
        );
        for w in &ws {
            assert!(w.interval_instance.is_some());
            assert!(w.linear_scan_instance().intervals().is_some());
        }
    }

    #[test]
    fn jit_large_is_deterministic_and_seed_sensitive() {
        let a = jit_large_functions(7);
        let b = jit_large_functions(7);
        assert_eq!(a, b);
        let c = jit_large_functions(8);
        assert!(a != c, "different seeds should produce different corpora");
    }

    #[test]
    fn jit_huge_is_big_skewed_and_deterministic() {
        let fs = jit_huge_functions(5);
        assert!(fs.len() >= 500, "scaling corpus too small ({})", fs.len());
        assert_eq!(fs.len() as u64, 9 * JIT_HUGE_PER_PROGRAM);
        let mut sizes: Vec<u32> = fs.iter().map(|f| f.value_count).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let max = *sizes.last().unwrap();
        assert!(
            median <= 60,
            "bulk of the corpus should be small methods (median {median})"
        );
        assert!(
            max >= 60,
            "the skew needs a fat tail of big methods (max {max})"
        );
        assert_eq!(fs, jit_huge_functions(5), "must be seed-deterministic");
        assert!(fs != jit_huge_functions(6));
    }

    #[test]
    fn jvm_workloads_have_both_views() {
        let ws = specjvm98(1);
        let mut non_chordal = 0;
        for w in &ws {
            assert!(w.interval_instance.is_some());
            assert!(w.linear_scan_instance().intervals().is_some());
            if !w.instance.is_chordal() {
                non_chordal += 1;
            }
        }
        assert!(
            non_chordal * 2 > ws.len(),
            "most JVM graphs should be non-chordal ({non_chordal}/{})",
            ws.len()
        );
    }
}
