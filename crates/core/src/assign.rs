//! Register assignment (the decoupled second phase).
//!
//! Once the allocation has chosen *which* variables live in registers,
//! the assignment picks *which register* each one gets. On chordal
//! graphs a greedy sweep along the reverse perfect elimination order —
//! the *tree-scan* of SSA-based allocation — is optimal; on general
//! graphs the cluster structure of `LH` guarantees one register per
//! cluster, and we fall back to greedy/exact colouring.

use crate::problem::{Allocation, Instance};
use crate::verify::{self, Feasibility};

/// A register assignment: `Some(register)` for allocated variables,
/// `None` for spilled ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    regs: Vec<Option<u32>>,
}

impl Assignment {
    /// Wraps a per-variable register vector (`None` = spilled). Used by
    /// the pipeline driver to expand witness colourings; callers should
    /// normally obtain assignments from [`assign`].
    pub fn from_registers(regs: Vec<Option<u32>>) -> Self {
        Assignment { regs }
    }

    /// Extends the assignment with `None` entries up to `n` variables
    /// (no-op if it already covers `n`).
    pub fn pad_to(mut self, n: usize) -> Self {
        if self.regs.len() < n {
            self.regs.resize(n, None);
        }
        self
    }

    /// The register of variable `v`, or `None` if spilled.
    pub fn register_of(&self, v: usize) -> Option<u32> {
        self.regs.get(v).copied().flatten()
    }

    /// The number of distinct registers used.
    pub fn registers_used(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for r in self.regs.iter().flatten() {
            seen.insert(*r);
        }
        seen.len()
    }

    /// Iterates over `(variable, register)` pairs for allocated
    /// variables.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.regs
            .iter()
            .enumerate()
            .filter_map(|(v, r)| r.map(|r| (v, r)))
    }
}

/// Assigns concrete registers to an allocation.
///
/// Returns `None` if the allocation is infeasible for `r` registers
/// (which indicates an allocator bug — every allocator in this crate
/// produces feasible allocations).
pub fn assign(instance: &Instance, allocation: &Allocation, r: u32) -> Option<Assignment> {
    match verify::check(instance, allocation, r) {
        Feasibility::Feasible(colors) => {
            let regs = (0..instance.vertex_count())
                .map(|v| allocation.allocated.contains(v).then(|| colors[v]))
                .collect();
            Some(Assignment { regs })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layered::Layered;
    use crate::problem::Allocator;
    use lra_graph::{generate, Graph, WeightedGraph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn assignment_is_a_proper_coloring() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = generate::random_chordal(&mut rng, 30, 40, 5);
        let w = generate::random_weights(&mut rng, 30, 2);
        let inst = Instance::from_weighted_graph(WeightedGraph::new(g, w));
        let r = 3;
        let alloc = Layered::bfpl().allocate(&inst, r);
        let asg = assign(&inst, &alloc, r).expect("feasible allocation");
        assert!(asg.registers_used() <= r as usize);
        for (u, v) in inst.graph().edges() {
            if let (Some(a), Some(b)) = (asg.register_of(u.index()), asg.register_of(v.index())) {
                assert_ne!(a, b, "neighbours {u} and {v} share register {a}");
            }
        }
        // Spilled variables carry no register.
        for v in alloc.spilled_set(&inst).iter() {
            assert_eq!(asg.register_of(v), None);
        }
    }

    #[test]
    fn assignment_uses_at_most_r_registers() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let inst = Instance::from_weighted_graph(WeightedGraph::new(g, vec![5, 6, 7, 8]));
        let alloc = Layered::nl().allocate(&inst, 2);
        let asg = assign(&inst, &alloc, 2).unwrap();
        assert!(asg.registers_used() <= 2);
        assert_eq!(asg.iter().count(), alloc.allocated.len());
    }

    #[test]
    fn infeasible_allocation_returns_none() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let inst = Instance::from_weighted_graph(WeightedGraph::unit(g));
        // Force an infeasible "allocation": all three of a triangle
        // with 2 registers.
        let bogus = inst.allocation_from_set(lra_graph::BitSet::full(3));
        assert!(assign(&inst, &bogus, 2).is_none());
    }
}
