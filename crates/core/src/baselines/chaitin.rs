//! Chaitin–Briggs optimistic graph colouring (`GC`).
//!
//! The classic static-compilation allocator the paper uses as its main
//! baseline. Simplify: repeatedly remove (push) vertices with degree
//! `< R`; when stuck, pick the vertex minimising `cost(v)/degree(v)`
//! (Chaitin's spill metric) and push it *optimistically* (Briggs).
//! Select: pop the stack, giving each vertex the lowest colour unused by
//! its coloured neighbours; vertices that find no colour become actual
//! spills. In the spill-everywhere model, spilled variables leave the
//! graph entirely and the process repeats until a colouring succeeds.
//!
//! This is exactly the behaviour the paper's introduction criticises:
//! the `cost/degree` metric may spill a variable with many neighbours
//! even when it covers no high-pressure program point.

use crate::problem::{Allocation, Allocator, Instance};
use lra_graph::BitSet;

/// The `GC` baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaitinBriggs;

impl ChaitinBriggs {
    /// Creates the allocator.
    pub fn new() -> Self {
        ChaitinBriggs
    }
}

impl Allocator for ChaitinBriggs {
    fn name(&self) -> &'static str {
        "GC"
    }

    fn allocate(&self, instance: &Instance, r: u32) -> Allocation {
        let g = instance.graph();
        let wg = instance.weighted_graph();
        let n = g.vertex_count();
        let r_us = r as usize;

        let mut spilled = BitSet::new(n);
        if r == 0 {
            return instance.allocation_from_set(BitSet::new(n));
        }

        loop {
            // Working degrees over the remaining (unspilled) vertices.
            let mut present = BitSet::full(n);
            present.difference_with(&spilled);
            let mut degree: Vec<usize> = (0..n)
                .map(|v| {
                    if present.contains(v) {
                        g.adjacent_count_in(v, &present)
                    } else {
                        0
                    }
                })
                .collect();

            let mut stack: Vec<usize> = Vec::with_capacity(present.len());
            let mut removed = BitSet::new(n);
            let mut remaining = present.len();

            while remaining > 0 {
                // Simplify: any vertex with degree < R.
                let simplifiable = present
                    .iter()
                    .find(|&v| !removed.contains(v) && degree[v] < r_us);
                let v = match simplifiable {
                    Some(v) => v,
                    None => {
                        // Spill candidate: minimise cost/degree
                        // (compare by cross-multiplication to stay in
                        // integers).
                        present
                            .iter()
                            .filter(|&v| !removed.contains(v))
                            .min_by(|&a, &b| {
                                let lhs = wg.weight(a) as u128 * degree[b].max(1) as u128;
                                let rhs = wg.weight(b) as u128 * degree[a].max(1) as u128;
                                lhs.cmp(&rhs).then(a.cmp(&b))
                            })
                            .expect("graph nonempty while remaining > 0")
                    }
                };
                removed.insert(v);
                remaining -= 1;
                stack.push(v);
                for &u in g.neighbor_indices(v) {
                    let u = u as usize;
                    if present.contains(u) && !removed.contains(u) {
                        degree[u] = degree[u].saturating_sub(1);
                    }
                }
            }

            // Select phase: optimistic colouring.
            let mut color: Vec<Option<u32>> = vec![None; n];
            let mut new_spills = Vec::new();
            while let Some(v) = stack.pop() {
                let mut used = vec![false; r_us];
                for &u in g.neighbor_indices(v) {
                    if let Some(c) = color[u as usize] {
                        if (c as usize) < r_us {
                            used[c as usize] = true;
                        }
                    }
                }
                match used.iter().position(|&b| !b) {
                    Some(c) => color[v] = Some(c as u32),
                    None => new_spills.push(v),
                }
            }

            if new_spills.is_empty() {
                let mut allocated = present;
                debug_assert!(allocated.iter().all(|v| color[v].is_some()));
                allocated.difference_with(&spilled);
                return instance.allocation_from_set(allocated);
            }
            for v in new_spills {
                spilled.insert(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use lra_graph::{Graph, GraphBuilder, WeightedGraph};

    fn instance(g: Graph, w: Vec<u64>) -> Instance {
        Instance::from_weighted_graph(WeightedGraph::new(g, w))
    }

    #[test]
    fn colors_without_spilling_when_possible() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let inst = instance(g, vec![1, 1, 1, 1]);
        let a = ChaitinBriggs::new().allocate(&inst, 2);
        assert_eq!(a.spill_cost, 0);
        assert!(verify::check(&inst, &a, 2).is_feasible());
    }

    #[test]
    fn spills_cheapest_per_degree_on_clique() {
        let mut b = GraphBuilder::new(4);
        b.add_clique(&[0, 1, 2, 3]);
        let inst = instance(b.build(), vec![10, 20, 30, 5]);
        let a = ChaitinBriggs::new().allocate(&inst, 3);
        // One vertex must go; the cheapest (3, cost 5) is the right pick.
        assert_eq!(a.spill_cost, 5);
        assert!(!a.allocated.contains(3));
        assert!(verify::check(&inst, &a, 3).is_feasible());
    }

    #[test]
    fn optimistic_coloring_beats_pessimistic() {
        // Diamond (C4 + chord is not needed): C4 is 2-colourable even
        // though every vertex has degree 2 = R; Briggs' optimism colours
        // it with zero spills where pure Chaitin would spill.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let inst = instance(g, vec![1, 1, 1, 1]);
        let a = ChaitinBriggs::new().allocate(&inst, 2);
        assert_eq!(a.spill_cost, 0);
    }

    #[test]
    fn zero_registers_spills_everything() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let inst = instance(g, vec![3, 4]);
        let a = ChaitinBriggs::new().allocate(&inst, 0);
        assert_eq!(a.spill_cost, 7);
        assert!(a.allocated.is_empty());
    }

    #[test]
    fn always_feasible_on_random_like_graph() {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (1, 4),
            ],
        );
        let inst = instance(g, vec![4, 7, 2, 9, 1, 3]);
        for r in 1..=4 {
            let a = ChaitinBriggs::new().allocate(&inst, r);
            assert!(verify::check(&inst, &a, r).is_feasible(), "R={r}");
        }
    }

    #[test]
    fn high_degree_cheap_vertex_spilled_despite_low_pressure() {
        // The paper's motivating pathology: a star centre interferes
        // with many cheap leaves but pressure is only 2. GC with R=2
        // still colours a star (centre + leaves = 2 colours), so use
        // R=1: GC spills the centre (cost/degree minimal) even though
        // spilling leaves would be cheaper per unit.
        let mut b = GraphBuilder::new(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf);
        }
        let inst = instance(b.build(), vec![12, 4, 4, 4, 4]);
        let a = ChaitinBriggs::new().allocate(&inst, 1);
        // cost/degree: centre = 12/4 = 3, leaves = 4/1 = 4 -> centre goes.
        assert!(!a.allocated.contains(0));
        assert_eq!(a.spill_cost, 12);
        assert!(verify::check(&inst, &a, 1).is_feasible());
    }
}
