//! Linear-scan allocators over live intervals (`LS`/`DLS` and `BLS`).
//!
//! The JIT baselines of §6.2. Both scan intervals by increasing start
//! point, keeping at most `R` intervals active:
//!
//! * **LS** (the paper's `DLS`, JikesRVM's default): on overflow, spill
//!   the candidate with the lowest spill cost.
//! * **BLS**: among candidates whose cost is within a threshold of the
//!   cheapest, spill the one whose interval extends *furthest* —
//!   Belady's furthest-first rule, which is optimal for unweighted
//!   straight-line code.

use crate::problem::{Allocation, Allocator, Instance};
use lra_graph::{BitSet, Cost};

/// The default linear scan (`DLS` in the paper's figures).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinearScan;

impl LinearScan {
    /// Creates the allocator.
    pub fn new() -> Self {
        LinearScan
    }
}

/// Linear scan with Belady's furthest-first tie-breaking (`BLS`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BeladyLinearScan {
    /// Candidates within `threshold_percent` of the minimum cost are
    /// considered cost-equivalent; the furthest-ending one is spilled.
    pub threshold_percent: u32,
}

impl BeladyLinearScan {
    /// The configuration used in the reproduction (25% band).
    pub fn new() -> Self {
        BeladyLinearScan {
            threshold_percent: 25,
        }
    }
}

impl Default for BeladyLinearScan {
    fn default() -> Self {
        BeladyLinearScan::new()
    }
}

/// Spill-choice rule on register overflow.
enum Victim {
    CheapestCost,
    FurthestWithinThreshold(u32),
}

fn scan(instance: &Instance, r: u32, rule: Victim) -> Allocation {
    let intervals = instance
        .intervals()
        .expect("linear scan requires an instance with live intervals");
    let wg = instance.weighted_graph();
    let n = intervals.len();

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (intervals[i].start, intervals[i].end));

    let mut allocated = BitSet::new(n);
    // Active list: (end, vertex), kept small (≤ R).
    let mut active: Vec<(u32, usize)> = Vec::new();

    for &i in &order {
        let iv = intervals[i];
        if iv.is_empty() {
            // Dead value: costs nothing, conflicts with nothing.
            allocated.insert(i);
            continue;
        }
        active.retain(|&(end, _)| end > iv.start);
        if active.len() < r as usize {
            active.push((iv.end, i));
            allocated.insert(i);
            continue;
        }
        if r == 0 {
            continue; // spill i
        }
        // Overflow: pick a victim among active + the new interval.
        let mut candidates: Vec<usize> = active.iter().map(|&(_, v)| v).collect();
        candidates.push(i);
        let victim = match rule {
            Victim::CheapestCost => *candidates
                .iter()
                .min_by_key(|&&v| (wg.weight(v), v))
                .expect("candidates nonempty"),
            Victim::FurthestWithinThreshold(pct) => {
                let min_cost = candidates
                    .iter()
                    .map(|&v| wg.weight(v))
                    .min()
                    .expect("candidates nonempty");
                let band: Cost = min_cost + min_cost * pct as Cost / 100;
                *candidates
                    .iter()
                    .filter(|&&v| wg.weight(v) <= band)
                    .max_by_key(|&&v| (intervals[v].end, v))
                    .expect("the cheapest candidate is within its own band")
            }
        };
        if victim == i {
            continue; // spill the incoming interval
        }
        active.retain(|&(_, v)| v != victim);
        allocated.remove(victim);
        active.push((iv.end, i));
        allocated.insert(i);
    }

    instance.allocation_from_set(allocated)
}

impl Allocator for LinearScan {
    fn name(&self) -> &'static str {
        "DLS"
    }

    /// # Panics
    ///
    /// Panics if the instance carries no live intervals.
    fn allocate(&self, instance: &Instance, r: u32) -> Allocation {
        scan(instance, r, Victim::CheapestCost)
    }
}

impl Allocator for BeladyLinearScan {
    fn name(&self) -> &'static str {
        "BLS"
    }

    /// # Panics
    ///
    /// Panics if the instance carries no live intervals.
    fn allocate(&self, instance: &Instance, r: u32) -> Allocation {
        scan(
            instance,
            r,
            Victim::FurthestWithinThreshold(self.threshold_percent),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use lra_graph::Interval;

    fn instance(ivs: Vec<Interval>, w: Vec<Cost>) -> Instance {
        Instance::from_intervals(ivs, w)
    }

    #[test]
    fn no_overflow_allocates_everything() {
        let inst = instance(
            vec![
                Interval::new(0, 4),
                Interval::new(5, 9),
                Interval::new(10, 12),
            ],
            vec![1, 2, 3],
        );
        let a = LinearScan::new().allocate(&inst, 1);
        assert_eq!(a.spill_cost, 0);
        assert!(verify::check(&inst, &a, 1).is_feasible());
    }

    #[test]
    fn ls_spills_cheapest() {
        // Three overlapping intervals, one register.
        let inst = instance(
            vec![
                Interval::new(0, 10),
                Interval::new(1, 9),
                Interval::new(2, 8),
            ],
            vec![5, 1, 7],
        );
        let a = LinearScan::new().allocate(&inst, 1);
        // Scanning: 0 active; 1 arrives -> cheapest of {0(5),1(1)} is 1,
        // spilled; 2 arrives -> cheapest of {0(5),2(7)} is 0, spilled.
        assert!(!a.allocated.contains(1));
        assert!(!a.allocated.contains(0));
        assert!(a.allocated.contains(2));
        assert!(verify::check(&inst, &a, 1).is_feasible());
    }

    #[test]
    fn bls_prefers_furthest_among_equal_costs() {
        // Equal costs: Belady spills the interval reaching furthest.
        let inst = instance(
            vec![
                Interval::new(0, 20),
                Interval::new(1, 5),
                Interval::new(2, 6),
            ],
            vec![4, 4, 4],
        );
        let bls = BeladyLinearScan::new().allocate(&inst, 1);
        // First overflow {0, 1}: furthest is 0 (end 20) -> spill 0.
        // Second overflow {1, 2}: furthest is 2 (end 6) -> spill 2.
        assert!(!bls.allocated.contains(0));
        assert!(bls.allocated.contains(1));
        assert!(!bls.allocated.contains(2));
        assert!(verify::check(&inst, &bls, 1).is_feasible());
    }

    #[test]
    fn bls_respects_cost_threshold() {
        // Interval 0 reaches furthest but is far more expensive than
        // the threshold band, so BLS must not choose it.
        let inst = instance(
            vec![
                Interval::new(0, 20),
                Interval::new(1, 5),
                Interval::new(2, 6),
            ],
            vec![100, 4, 4],
        );
        let a = BeladyLinearScan::new().allocate(&inst, 1);
        // First overflow {0(100), 1(4)}: band = 4+1 = 5 -> only 1
        // qualifies; spill 1. Second overflow {0, 2}: spill 2.
        assert!(a.allocated.contains(0));
        assert!(!a.allocated.contains(1));
        assert!(!a.allocated.contains(2));
    }

    #[test]
    fn active_set_never_exceeds_r() {
        let ivs: Vec<Interval> = (0..10).map(|i| Interval::new(i, i + 5)).collect();
        let inst = instance(ivs, (1..=10).collect());
        for r in 1..=4 {
            let a = LinearScan::new().allocate(&inst, r);
            assert!(verify::check(&inst, &a, r).is_feasible(), "R={r}");
        }
    }

    #[test]
    fn zero_registers_spills_all_live_intervals() {
        let inst = instance(vec![Interval::new(0, 3), Interval::new(1, 2)], vec![2, 3]);
        let a = LinearScan::new().allocate(&inst, 0);
        assert_eq!(a.spill_cost, 5);
    }

    #[test]
    fn dead_intervals_are_free() {
        let inst = instance(vec![Interval::new(0, 0), Interval::new(0, 5)], vec![9, 1]);
        let a = LinearScan::new().allocate(&inst, 1);
        assert!(a.allocated.contains(0));
        assert!(a.allocated.contains(1));
        assert_eq!(a.spill_cost, 0);
    }

    #[test]
    #[should_panic(expected = "live intervals")]
    fn graph_only_instance_panics() {
        let g = lra_graph::Graph::from_edges(2, &[(0, 1)]);
        let inst = Instance::from_weighted_graph(lra_graph::WeightedGraph::unit(g));
        let _ = LinearScan::new().allocate(&inst, 1);
    }
}
