//! Baseline allocators the paper compares against: Chaitin–Briggs
//! optimistic graph colouring (`GC`), the JIT-style linear scan (`LS` /
//! `DLS`) and its Belady variant (`BLS`).

pub mod chaitin;
pub mod linear_scan;

pub use chaitin::ChaitinBriggs;
pub use linear_scan::{BeladyLinearScan, LinearScan};
