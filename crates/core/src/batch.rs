//! Parallel batch allocation: many functions in, one ordered report out.
//!
//! The decoupled allocate-then-assign design makes the pipeline
//! embarrassingly parallel per function — no allocation round ever
//! looks at another function. [`BatchAllocator`] exploits that: it
//! takes a slice of [`Function`]s plus one [`AllocationPipeline`]
//! configuration and fans the allocate → spill → assign → verify runs
//! across a fixed-size [`std::thread::scope`] worker pool with chunked
//! work distribution, returning a [`BatchReport`] whose items are in
//! input order regardless of which worker finished first.
//!
//! Determinism is a contract, not an accident: every per-function run
//! is self-contained (the pipeline carries no shared mutable state and
//! any RNG seeding happens per function, upstream), and the report is
//! reassembled by input index, so a batch run renders **byte-identical**
//! to the sequential path ([`BatchReport::render`] deliberately excludes
//! wall-clock timings; those live in [`BatchReport::elapsed`] and
//! [`BatchItem::elapsed`]).
//!
//! The same worker pool is exposed as [`parallel_map`] so the figure
//! runners and suite generators in `lra-bench` ride one engine instead
//! of growing private thread code.
//!
//! # Example
//!
//! ```
//! use lra_core::batch::BatchAllocator;
//! use lra_core::driver::AllocationPipeline;
//! use lra_ir::builder::FunctionBuilder;
//! use lra_targets::{Target, TargetKind};
//!
//! let functions: Vec<_> = (0..4)
//!     .map(|i| {
//!         let mut b = FunctionBuilder::new(format!("f{i}"));
//!         let e = b.entry_block();
//!         let x = b.op(e, &[]);
//!         let y = b.op(e, &[x]);
//!         b.op(e, &[x, y]);
//!         b.finish()
//!     })
//!     .collect();
//!
//! let pipeline = AllocationPipeline::new(Target::new(TargetKind::St231)).registers(2);
//! let report = BatchAllocator::new(pipeline).threads(2).run(&functions);
//! assert_eq!(report.summary.functions, 4);
//! assert_eq!(report.summary.failed, 0);
//! ```

use crate::driver::{AllocatedFunction, AllocationPipeline, PipelineError};
use lra_ir::{AnalysisScratch, Function};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-worker reusable buffers for the allocation pipeline.
///
/// Each batch worker (and each service worker) owns one
/// `WorkerScratch` for its whole lifetime and threads it through every
/// [`allocate_item_with`] call, so the liveness worklists, local
/// def/use tables and interval endpoint arrays inside
/// [`AnalysisScratch`] are allocated once per worker instead of once
/// per function per round. Every consumer resets the buffers to the
/// function at hand before reading them, so reuse never changes output
/// bits — reports stay byte-identical to fresh-scratch runs (a
/// property test pins this).
#[derive(Default)]
pub struct WorkerScratch {
    /// Recycled liveness/interference buffers (see [`AnalysisScratch`]).
    pub analysis: AnalysisScratch,
}

impl WorkerScratch {
    /// Empty scratch; buffers grow to fit the first functions they see.
    pub fn new() -> Self {
        WorkerScratch::default()
    }
}

/// Process-wide default worker count override (0 = resolve
/// automatically). Set by CLI `--threads` flags so deep callers
/// (figure runners, suite generators) need no plumbing.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the process-wide default worker count used by
/// [`default_threads`]. `0` restores automatic resolution.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// The worker count used when a caller does not pick one explicitly:
/// the [`set_default_threads`] override if set, else the `LRA_THREADS`
/// environment variable, else [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    let n = DEFAULT_THREADS.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    if let Some(n) = std::env::var("LRA_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` on a pool of `threads` scoped
/// workers and returns the results **in input order**.
///
/// Work is distributed in chunks claimed from a shared atomic cursor
/// (cheap dynamic load balancing without per-item contention); each
/// worker buffers its `(index, result)` pairs locally and the final
/// vector is reassembled by index, so the output is independent of
/// scheduling. With `threads <= 1` (or one item) the map runs inline
/// on the caller's thread — the sequential path and the parallel path
/// produce identical results by construction.
///
/// A panic inside `f` propagates to the caller once the scope joins.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    parallel_map_with(items, threads, || (), |(), i, t| f(i, t))
}

/// [`parallel_map`] with per-worker state: `init` runs once on each
/// worker thread (and once inline for the sequential path) and the
/// resulting value is passed by `&mut` to every `f` call that worker
/// executes. This is how batch workers keep one [`WorkerScratch`]
/// alive across all the functions they process — state reuse without
/// sharing, so determinism is untouched (output order is still
/// reassembled by input index and `f` still sees every item exactly
/// once).
pub fn parallel_map_with<T, U, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }

    // Chunks small enough to balance uneven per-item costs, large
    // enough that the cursor is not a hot spot.
    let chunk = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        local.push((i, f(&mut state, i, item)));
                    }
                }
                collected
                    .lock()
                    .expect("worker poisoned batch")
                    .extend(local);
            });
        }
    });

    let mut pairs = collected.into_inner().expect("worker poisoned batch");
    pairs.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, u)| u).collect()
}

/// Fans one [`AllocationPipeline`] configuration over many functions.
/// See the [module docs](self).
#[derive(Clone, Debug)]
pub struct BatchAllocator {
    pipeline: AllocationPipeline,
    threads: Option<usize>,
}

impl BatchAllocator {
    /// A batch driver running `pipeline` on every submitted function,
    /// with the worker count resolved by [`default_threads`].
    pub fn new(pipeline: AllocationPipeline) -> Self {
        BatchAllocator {
            pipeline,
            threads: None,
        }
    }

    /// Fixes the worker-pool size. `0` restores the default
    /// ([`default_threads`]).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = (n > 0).then_some(n);
        self
    }

    /// The pipeline configuration each function runs through.
    pub fn pipeline(&self) -> &AllocationPipeline {
        &self.pipeline
    }

    /// The worker count a run over `items` functions would use (never
    /// more workers than items).
    pub fn effective_threads(&self, items: usize) -> usize {
        self.threads
            .unwrap_or_else(default_threads)
            .max(1)
            .min(items.max(1))
    }

    /// Runs the full pipeline on every function and returns the
    /// ordered report. Per-function failures (unknown allocator, view
    /// mismatch, non-chordal input, and even a panicking pipeline run)
    /// surface as per-item errors — one bad function never aborts the
    /// batch.
    pub fn run(&self, functions: &[Function]) -> BatchReport {
        self.run_refs(&functions.iter().collect::<Vec<_>>())
    }

    /// [`BatchAllocator::run`] over borrowed functions, for callers
    /// (suite sweeps) whose corpus lives inside a larger structure.
    ///
    /// A panic inside one function's pipeline run is caught and
    /// recorded as that item's [`PipelineError::Panic`] instead of
    /// unwinding through the worker — an unwinding worker would poison
    /// the result mutex and abort the whole batch, violating the
    /// per-item failure contract. (The panic message still goes to
    /// stderr via the process panic hook; the report stays
    /// deterministic because the hook writes to a different stream.)
    pub fn run_refs(&self, functions: &[&Function]) -> BatchReport {
        let threads = self.effective_threads(functions.len());
        let start = Instant::now();
        let items = parallel_map_with(functions, threads, WorkerScratch::new, |scratch, _, f| {
            allocate_item_with(&self.pipeline, f, scratch)
        });
        let elapsed = start.elapsed();
        let summary = BatchSummary::from_items(&items);
        BatchReport {
            items,
            threads,
            elapsed,
            summary,
        }
    }
}

/// Runs `pipeline` on one function exactly the way a batch worker
/// does: wall-clock timed, with a panicking run caught and recorded as
/// the item's [`PipelineError::Panic`]. This is the per-item engine
/// behind [`BatchAllocator::run_refs`], exported so long-lived drivers
/// (the `lra-service` worker pool) produce items byte-compatible with
/// a batch run.
pub fn allocate_item(pipeline: &AllocationPipeline, f: &Function) -> BatchItem {
    allocate_item_with(pipeline, f, &mut WorkerScratch::new())
}

/// [`allocate_item`] with a caller-owned [`WorkerScratch`] — the
/// variant long-lived workers call so analysis buffers are reused
/// across functions. Identical output to a fresh scratch.
///
/// The scratch crossing the `catch_unwind` boundary is sound: every
/// analysis entry point resets its buffers to the function at hand
/// before reading them, so a panic that leaves the scratch mid-write
/// cannot leak state into the next item's result.
pub fn allocate_item_with(
    pipeline: &AllocationPipeline,
    f: &Function,
    scratch: &mut WorkerScratch,
) -> BatchItem {
    // With tracing armed (LRA_TRACE, a service trace request, or the
    // profiler), bracket the run with a per-item collection. The trace
    // rides along as a side channel on the item — rows and rendering
    // never read it, so output bytes are identical either way.
    let traced = crate::trace::enabled();
    if traced {
        crate::trace::begin(false);
    }
    let t0 = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pipeline.run_with(f, &mut scratch.analysis)
    }))
    .unwrap_or_else(|payload| Err(PipelineError::Panic(panic_message(&payload))));
    let elapsed = t0.elapsed();
    let trace = if traced { crate::trace::take() } else { None };
    BatchItem {
        function: f.name.clone(),
        outcome,
        elapsed,
        trace,
    }
}

/// [`allocate_item_with`] under a remaining wall-clock budget: with
/// `remaining` set the pipeline runs with
/// [`AllocationPipeline::time_budget`] applied (a `Portfolio` caps its
/// exact tier at the deadline and degrades to the cheap tier's answer
/// past it), with `None` it is exactly [`allocate_item_with`]. This is
/// the per-item engine the `lra-service` worker pool calls for
/// deadline-carrying requests; budget-free requests stay on the
/// byte-identical batch path.
pub fn allocate_item_deadline(
    pipeline: &AllocationPipeline,
    f: &Function,
    scratch: &mut WorkerScratch,
    remaining: Option<Duration>,
) -> BatchItem {
    match remaining {
        Some(budget) => allocate_item_with(&pipeline.clone().time_budget(Some(budget)), f, scratch),
        None => allocate_item_with(pipeline, f, scratch),
    }
}

/// Renders a caught panic payload as the human-readable message
/// `panic!` was invoked with (the payload is a `&str` or `String` for
/// every formatted panic; anything else is reported opaquely).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One function's slot in a [`BatchReport`]. Its position in
/// [`BatchReport::items`] is its position in the submitted batch.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// The function's name.
    pub function: String,
    /// The pipeline result: a full [`AllocatedFunction`] report, or the
    /// per-item error that kept this function from being allocated.
    pub outcome: Result<AllocatedFunction, PipelineError>,
    /// Wall-clock time this item spent in the pipeline (excluded from
    /// [`BatchReport::render`] to keep batch output deterministic).
    pub elapsed: Duration,
    /// Per-phase trace collected while this item ran, when tracing was
    /// armed ([`crate::trace`]); `None` otherwise. Like `elapsed`, a
    /// side channel: [`BatchItem::row`] and every renderer ignore it,
    /// so traced and untraced runs stay byte-identical.
    pub trace: Option<crate::trace::TraceReport>,
}

impl BatchItem {
    /// The successful report, if any.
    pub fn report(&self) -> Option<&AllocatedFunction> {
        self.outcome.as_ref().ok()
    }

    /// Collapses this item to the report row it renders as. Rows carry
    /// only the rendered columns (no IR, no assignment), so they are
    /// what crosses the wire in the `lra-service` protocol — and
    /// [`render_rows`] over them is byte-identical to
    /// [`BatchReport::render`] over the originals.
    pub fn row(&self) -> ReportRow {
        ReportRow {
            function: self.function.clone(),
            outcome: match &self.outcome {
                Ok(r) => Ok(RowStats {
                    spill_cost: r.spill_cost,
                    rounds: r.rounds,
                    stores: r.stores,
                    loads: r.loads,
                    converged: r.converged,
                    verified: r.verdict.is_feasible(),
                    escalated: r.escalated,
                }),
                Err(e) => Err(e.to_string()),
            },
        }
    }
}

/// The rendered columns of one successful report row — everything
/// [`render_rows`] prints for an allocated function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowStats {
    /// Total spill cost over all rounds.
    pub spill_cost: u64,
    /// Allocation rounds executed.
    pub rounds: u32,
    /// Spill stores inserted.
    pub stores: usize,
    /// Spill reloads inserted.
    pub loads: usize,
    /// Whether the final round spilled nothing.
    pub converged: bool,
    /// Whether the final allocation verified feasible.
    pub verified: bool,
    /// Whether the accepted result came from the split + remat
    /// escalation tier ([`AllocatedFunction::escalated`]).
    pub escalated: bool,
}

/// One report row: a function name plus its stats or error message.
/// The wire-transportable projection of a [`BatchItem`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportRow {
    /// The function's name.
    pub function: String,
    /// Rendered stats, or the per-item error message.
    pub outcome: Result<RowStats, String>,
}

/// Renders report rows exactly as [`BatchReport::render`] renders the
/// corresponding items: the aligned per-row table followed by the
/// [`BatchSummary`] lines recomputed from the rows. Shared by the
/// batch driver and the service load generator so "byte-identical to a
/// batch run" is a property of the code path, not a convention.
pub fn render_rows(rows: &[ReportRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>5} {:<28} {:>11} {:>7} {:>7} {:>7} {:>10} {:>9}",
        "#", "function", "spill cost", "rounds", "stores", "loads", "converged", "verified"
    );
    for (index, row) in rows.iter().enumerate() {
        match &row.outcome {
            Ok(r) => {
                let _ = writeln!(
                    s,
                    "{:>5} {:<28} {:>11} {:>7} {:>7} {:>7} {:>10} {:>9}",
                    index,
                    row.function,
                    r.spill_cost,
                    r.rounds,
                    r.stores,
                    r.loads,
                    r.converged,
                    r.verified
                );
            }
            Err(e) => {
                let _ = writeln!(s, "{:>5} {:<28} error: {e}", index, row.function);
            }
        }
    }
    let m = BatchSummary::from_rows(rows);
    let _ = writeln!(
        s,
        "functions {} | ok {} | failed {} | converged {} | non-converged {} | escalated {}",
        m.functions, m.succeeded, m.failed, m.converged, m.non_converged, m.escalated
    );
    let _ = writeln!(
        s,
        "total spill cost {} (stores {}, loads {})",
        m.total_spill_cost, m.total_stores, m.total_loads
    );
    if let Some([min, q1, med, q3, max]) = m.spill_cost_quartiles {
        let _ = writeln!(
            s,
            "spill cost per function: min {min} | q1 {q1} | median {med} | q3 {q3} | max {max}"
        );
    }
    s
}

/// Aggregate statistics over a batch, computed once at the end of
/// [`BatchAllocator::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchSummary {
    /// Functions submitted.
    pub functions: usize,
    /// Functions whose pipeline run returned a report.
    pub succeeded: usize,
    /// Functions whose pipeline run returned a [`PipelineError`].
    pub failed: usize,
    /// Successful runs that converged (last round spilled nothing).
    pub converged: usize,
    /// Successful runs that hit the round budget or the §4.3
    /// residual-pressure cutoff with values still unallocated. Before
    /// this summary existed the flag was only visible per-report; the
    /// batch view is where a stuck corpus actually shows up.
    pub non_converged: usize,
    /// Successful runs whose accepted result came from the split +
    /// remat escalation tier — a subset of `converged` by the
    /// acceptance rule, so `escalated` is exactly how many functions
    /// the tier rescued from the residual-pressure tail.
    pub escalated: usize,
    /// Total spill cost over all successful runs.
    pub total_spill_cost: u64,
    /// Spill stores inserted over all successful runs.
    pub total_stores: usize,
    /// Spill reloads inserted over all successful runs.
    pub total_loads: usize,
    /// Min/Q1/median/Q3/max of per-function spill cost (successful
    /// runs; `None` for an all-failed or empty batch). Quartiles are
    /// nearest-rank order statistics, so they stay integral and
    /// render identically everywhere.
    pub spill_cost_quartiles: Option<[u64; 5]>,
}

impl BatchSummary {
    fn from_items(items: &[BatchItem]) -> Self {
        Self::from_rows(&items.iter().map(BatchItem::row).collect::<Vec<_>>())
    }

    /// Aggregates report rows — the same statistics [`BatchReport`]
    /// carries, recomputable from the wire-transported rows on the
    /// client side of the service protocol.
    pub fn from_rows(rows: &[ReportRow]) -> Self {
        let mut s = BatchSummary {
            functions: rows.len(),
            succeeded: 0,
            failed: 0,
            converged: 0,
            non_converged: 0,
            escalated: 0,
            total_spill_cost: 0,
            total_stores: 0,
            total_loads: 0,
            spill_cost_quartiles: None,
        };
        let mut costs: Vec<u64> = Vec::with_capacity(rows.len());
        for row in rows {
            match &row.outcome {
                Ok(r) => {
                    s.succeeded += 1;
                    if r.converged {
                        s.converged += 1;
                    } else {
                        s.non_converged += 1;
                    }
                    if r.escalated {
                        s.escalated += 1;
                    }
                    s.total_spill_cost += r.spill_cost;
                    s.total_stores += r.stores;
                    s.total_loads += r.loads;
                    costs.push(r.spill_cost);
                }
                Err(_) => s.failed += 1,
            }
        }
        if !costs.is_empty() {
            costs.sort_unstable();
            let n = costs.len();
            let at = |k: usize| costs[(n - 1) * k / 4];
            s.spill_cost_quartiles = Some([at(0), at(1), at(2), at(3), at(4)]);
        }
        s
    }
}

/// The ordered result of a batch run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-function results, in submission order.
    pub items: Vec<BatchItem>,
    /// Worker-pool size the run actually used.
    pub threads: usize,
    /// Wall-clock time of the whole batch (pool spin-up to join).
    pub elapsed: Duration,
    /// Aggregate statistics.
    pub summary: BatchSummary,
}

impl BatchReport {
    /// Renders the report as an aligned text table (via
    /// [`render_rows`], which service clients reuse on wire-received
    /// rows).
    ///
    /// The output is **deterministic**: it contains per-item results
    /// and aggregate statistics but neither timings nor the thread
    /// count, so runs at any `--threads` setting are byte-identical —
    /// the property the CI determinism check diffs for.
    pub fn render(&self) -> String {
        render_rows(&self.items.iter().map(BatchItem::row).collect::<Vec<_>>())
    }

    /// The wire-transportable projection of every item, in order.
    pub fn rows(&self) -> Vec<ReportRow> {
        self.items.iter().map(BatchItem::row).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_ir::builder::FunctionBuilder;
    use lra_ir::genprog::{random_ssa_function, SsaConfig};
    use lra_targets::{Target, TargetKind};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn corpus(n: u64) -> Vec<Function> {
        (0..n)
            .map(|seed| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let cfg = SsaConfig {
                    target_instrs: 50,
                    liveness_window: 9,
                    ..SsaConfig::default()
                };
                random_ssa_function(&mut rng, &cfg, format!("f{seed}"))
            })
            .collect()
    }

    fn pipeline() -> AllocationPipeline {
        AllocationPipeline::new(Target::new(TargetKind::St231)).registers(3)
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 5, 16] {
            let out = parallel_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_more_threads_than_items() {
        let items = [7usize, 8];
        let out = parallel_map(&items, 64, |_, &x| x + 1);
        assert_eq!(out, vec![8, 9]);
    }

    #[test]
    fn parallel_map_on_empty_slice() {
        let items: [u32; 0] = [];
        let out = parallel_map(&items, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_with_runs_init_once_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        let inits = AtomicUsize::new(0);
        let out = parallel_map_with(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |count, _, &x| {
                *count += 1;
                (x, *count)
            },
        );
        // Every item was mapped exactly once, in order, and state was
        // created per worker (not per item): the running count each
        // item observed is at least 1 and never exceeds the item total.
        assert_eq!(out.len(), 64);
        assert!(out.iter().enumerate().all(|(i, &(x, _))| x == i));
        assert!(out.iter().all(|&(_, c)| (1..=64).contains(&c)));
        let inits = inits.load(Ordering::Relaxed);
        assert!(inits <= 4, "init ran {inits} times for 4 workers");
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch_byte_for_byte() {
        // One WorkerScratch threaded through functions of very
        // different sizes must produce exactly what fresh scratch does.
        let mut fs = corpus(6);
        fs.insert(2, {
            let mut b = FunctionBuilder::new("tiny");
            let e = b.entry_block();
            let x = b.op(e, &[]);
            b.op(e, &[x]);
            b.finish()
        });
        let p = pipeline();
        let mut scratch = WorkerScratch::new();
        for f in &fs {
            let reused = allocate_item_with(&p, f, &mut scratch);
            let fresh = allocate_item(&p, f);
            assert_eq!(reused.row(), fresh.row());
        }
    }

    #[test]
    fn scratch_survives_a_caught_panic_without_contaminating_results() {
        use lra_ir::cfg::{Block, BlockId};
        let mut blocks = vec![Block::default()];
        blocks[0].succs = vec![BlockId(7)];
        let broken = Function {
            name: "broken".into(),
            blocks,
            entry: BlockId(0),
            value_count: 1,
            params: vec![],
        };
        let p = pipeline();
        let fs = corpus(2);
        let mut scratch = WorkerScratch::new();
        let before = allocate_item_with(&p, &fs[0], &mut scratch);
        let bad = allocate_item_with(&p, &broken, &mut scratch);
        assert!(matches!(bad.outcome, Err(PipelineError::Panic(_))));
        let after = allocate_item_with(&p, &fs[1], &mut scratch);
        assert_eq!(before.row(), allocate_item(&p, &fs[0]).row());
        assert_eq!(after.row(), allocate_item(&p, &fs[1]).row());
    }

    #[test]
    fn batch_matches_sequential_byte_for_byte() {
        let fs = corpus(8);
        let seq = BatchAllocator::new(pipeline()).threads(1).run(&fs);
        let par = BatchAllocator::new(pipeline()).threads(4).run(&fs);
        assert_eq!(seq.render(), par.render());
        assert_eq!(seq.summary, par.summary);
        for (a, b) in seq.items.iter().zip(&par.items) {
            assert_eq!(a.function, b.function);
        }
    }

    #[test]
    fn empty_batch_reports_cleanly() {
        let report = BatchAllocator::new(pipeline()).run(&[]);
        assert_eq!(report.summary.functions, 0);
        assert_eq!(report.summary.spill_cost_quartiles, None);
        assert!(report.items.is_empty());
        assert!(report.render().contains("functions 0"));
    }

    #[test]
    fn effective_threads_never_exceeds_items() {
        let b = BatchAllocator::new(pipeline()).threads(16);
        assert_eq!(b.effective_threads(3), 3);
        assert_eq!(b.effective_threads(0), 1);
        assert_eq!(b.effective_threads(100), 16);
    }

    #[test]
    fn non_converged_runs_are_counted() {
        // Seven values consumed by one instruction: with R = 2 the
        // reloads exceed R at the use point, so the run cannot
        // converge (same construction as the driver's test).
        let mut b = FunctionBuilder::new("wide");
        let e = b.entry_block();
        let vs: Vec<_> = (0..7).map(|_| b.op(e, &[])).collect();
        b.op(e, &vs);
        let wide = b.finish();
        let mut fs: Vec<Function> = (0..2)
            .map(|i| {
                let mut b = FunctionBuilder::new(format!("tiny{i}"));
                let e = b.entry_block();
                let x = b.op(e, &[]);
                b.op(e, &[x]);
                b.finish()
            })
            .collect();
        fs.push(wide);
        let report = BatchAllocator::new(
            AllocationPipeline::new(Target::new(TargetKind::St231)).registers(2),
        )
        .run(&fs);
        assert_eq!(report.summary.succeeded, 3);
        assert_eq!(report.summary.non_converged, 1);
        assert_eq!(report.summary.converged, 2);
        assert!(report.render().contains("non-converged 1"));
    }

    #[test]
    fn panicking_pipeline_run_is_a_per_item_error_not_an_abort() {
        use lra_ir::cfg::{Block, BlockId};
        // A structurally broken function (dangling successor) makes
        // the analysis phase panic; the batch must capture that as
        // this item's error while the rest of the corpus completes.
        let mut blocks = vec![Block::default()];
        blocks[0].succs = vec![BlockId(7)];
        let broken = Function {
            name: "broken".into(),
            blocks,
            entry: BlockId(0),
            value_count: 1,
            params: vec![],
        };
        let mut fs = corpus(3);
        fs.insert(1, broken);
        let report = BatchAllocator::new(pipeline()).threads(2).run(&fs);
        assert_eq!(report.summary.functions, 4);
        assert_eq!(report.summary.failed, 1);
        assert_eq!(report.summary.succeeded, 3);
        assert!(matches!(
            report.items[1].outcome,
            Err(PipelineError::Panic(_))
        ));
        assert!(report.render().contains("error: pipeline panicked"));
    }

    #[test]
    fn rows_render_byte_identical_to_the_report() {
        let fs = corpus(5);
        let report = BatchAllocator::new(pipeline()).run(&fs);
        assert_eq!(render_rows(&report.rows()), report.render());
        assert_eq!(BatchSummary::from_rows(&report.rows()), report.summary);
    }

    #[test]
    fn allocate_item_deadline_without_a_budget_is_the_batch_path() {
        let fs = corpus(3);
        let p = pipeline();
        let mut scratch = WorkerScratch::new();
        for f in &fs {
            let plain = allocate_item(&p, f);
            let budgetless = allocate_item_deadline(&p, f, &mut scratch, None);
            assert_eq!(plain.row(), budgetless.row());
        }
    }

    #[test]
    fn allocate_item_deadline_with_an_expired_budget_still_answers() {
        use crate::portfolio::PortfolioConfig;
        // An already-expired budget must not error or hang: the
        // portfolio degrades to its cheap tier and the item carries a
        // normal report (identical to a cheap-tier-only run).
        let fs = corpus(2);
        let p = AllocationPipeline::new(Target::new(TargetKind::St231))
            .portfolio(PortfolioConfig::default())
            .registers(3);
        let cheap = AllocationPipeline::new(Target::new(TargetKind::St231))
            .portfolio(PortfolioConfig::default().node_budget(0))
            .registers(3);
        let mut scratch = WorkerScratch::new();
        for f in &fs {
            let item = allocate_item_deadline(&p, f, &mut scratch, Some(Duration::ZERO));
            assert!(item.outcome.is_ok(), "{}", f.name);
            let reference = allocate_item_with(&cheap, f, &mut scratch);
            assert_eq!(item.row(), reference.row(), "{}", f.name);
        }
    }

    #[test]
    fn allocate_item_matches_a_single_item_batch() {
        let fs = corpus(1);
        let p = pipeline();
        let item = allocate_item(&p, &fs[0]);
        let batch = BatchAllocator::new(p).run(&fs);
        assert_eq!(item.row(), batch.items[0].row());
    }

    #[test]
    fn default_threads_override_round_trips() {
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn quartiles_are_order_statistics() {
        let items: Vec<BatchItem> = [5u64, 1, 9, 3, 7]
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let f = {
                    let mut b = FunctionBuilder::new(format!("f{i}"));
                    let e = b.entry_block();
                    b.op(e, &[]);
                    b.finish()
                };
                let mut r = pipeline().run(&f).unwrap();
                r.spill_cost = c;
                BatchItem {
                    function: f.name.clone(),
                    outcome: Ok(r),
                    elapsed: Duration::ZERO,
                    trace: None,
                }
            })
            .collect();
        let s = BatchSummary::from_items(&items);
        assert_eq!(s.spill_cost_quartiles, Some([1, 3, 5, 7, 9]));
        assert_eq!(s.total_spill_cost, 25);
    }
}
