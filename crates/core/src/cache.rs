//! Exact-keyed memoization of allocation results.
//!
//! JIT batches re-submit the same methods over and over (re-entrant
//! compilation, tiering, identical trampolines), and the
//! spill-then-reanalyse loop itself re-solves structurally identical
//! instances whenever two rounds produce the same graph. A
//! [`ResultCache`] lets a policy skip the whole solve in those cases.
//!
//! Keys are **exact**, not hashes-of-hashes: an [`InstanceKey`]
//! embeds the full adjacency bit matrix and weight vector (plus the
//! register count and any budget knobs), so a hit is guaranteed to be
//! the same problem and the memoized result is byte-identical to a
//! fresh solve. That makes the cache invisible to the batch driver's
//! determinism contract — hit/miss patterns (and any eviction policy)
//! can differ across thread counts and runs without changing a single
//! output byte.
//!
//! The table is **sharded and lossy**: the key hash selects one of
//! [`ResultCache::shard_count`] independently locked shards, and
//! within a shard a fixed slot. Inserting into an occupied slot
//! overwrites it (one eviction), so there is no global lock, no
//! eviction bookkeeping and no rehashing on the hot path — concurrent
//! workers only contend when their keys land in the same shard.
//! Correctness never depends on what stays cached, only future hit
//! rates do, which is exactly the trade a lossy cache makes.

use std::hash::{Hash, Hasher};
use std::sync::Mutex;
use std::time::Duration;

use crate::problem::Instance;
use lra_graph::{Cost, Interval};

/// An exact, self-contained description of one allocation query:
/// the instance's adjacency bit matrix, weights and (for interval
/// instances) the live intervals themselves, plus the query
/// parameters (register count, solver budgets, cheap-tier name).
///
/// Two keys compare equal **iff** a solver would see the identical
/// problem, so memoized results are always safe to reuse. The
/// intervals must be part of the key because both tiers can consume
/// them directly (linear-scan cheap tiers, the min-cost-flow exact
/// solver): two interval instances with the same intersection graph
/// but different endpoints are different problems.
///
/// Construction rolls every field — one mix step per adjacency word,
/// weight and interval, O(words) total — into a 64-bit `fingerprint`
/// stored alongside the data. The fingerprint is the key's hash
/// (consistent with `Eq`: equal keys roll to equal fingerprints) and
/// the equality fast path: comparisons bail on the first fingerprint
/// mismatch and only walk the adjacency/weight vectors when the
/// fingerprints agree. The mixer is constant-keyed, so fingerprints —
/// and therefore cache slot placement — are reproducible run to run.
#[derive(Clone, Debug)]
pub struct InstanceKey {
    /// Rolling hash of every other field, computed once in
    /// [`InstanceKey::new`].
    fingerprint: u64,
    vertices: usize,
    registers: u32,
    cheap: String,
    node_budget: u64,
    time_budget: Option<Duration>,
    split_remat: bool,
    weights: Vec<Cost>,
    /// Concatenated per-vertex adjacency rows (64 vertices per word).
    adjacency: Vec<u64>,
    /// The live intervals, when the instance carries them.
    intervals: Option<Vec<Interval>>,
}

/// One step of the constant-keyed rolling hash: absorb `v` into `h`
/// with a full splitmix64 finalizer, so single-bit input differences
/// avalanche across the state before the next word lands.
fn roll(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl InstanceKey {
    /// Fingerprints `instance` under the given query parameters.
    pub fn new(
        instance: &Instance,
        registers: u32,
        cheap: &str,
        node_budget: u64,
        time_budget: Option<Duration>,
        split_remat: bool,
    ) -> Self {
        let g = instance.graph();
        let n = g.vertex_count();
        // One contiguous copy of the packed adjacency matrix — same
        // layout as the old per-vertex row concatenation, so keys stay
        // byte-identical across cache versions.
        let adjacency = g.adjacency_words().to_vec();
        let weights = instance.weighted_graph().weights().to_vec();
        let intervals = instance.intervals().map(<[Interval]>::to_vec);

        let mut fp = roll(n as u64, registers as u64);
        fp = roll(fp, cheap.len() as u64);
        for b in cheap.bytes() {
            fp = roll(fp, b as u64);
        }
        fp = roll(fp, node_budget);
        fp = roll(
            fp,
            time_budget.map_or(u64::MAX, |d| d.as_nanos() as u64 | 1),
        );
        fp = roll(fp, split_remat as u64);
        for &w in &weights {
            fp = roll(fp, w);
        }
        for &word in &adjacency {
            fp = roll(fp, word);
        }
        match &intervals {
            None => fp = roll(fp, 0),
            Some(ivs) => {
                fp = roll(fp, ivs.len() as u64 | (1 << 63));
                for iv in ivs {
                    fp = roll(fp, (u64::from(iv.start) << 32) | u64::from(iv.end));
                }
            }
        }

        InstanceKey {
            fingerprint: fp,
            vertices: n,
            registers,
            cheap: cheap.to_string(),
            node_budget,
            time_budget,
            split_remat,
            weights,
            adjacency,
            intervals,
        }
    }
}

impl PartialEq for InstanceKey {
    fn eq(&self, other: &Self) -> bool {
        // Fingerprint-first: a mismatch (the overwhelmingly common
        // case for distinct keys sharing a slot) is one u64 compare.
        // The exact field walk only runs on fingerprint agreement, so
        // a hit is still guaranteed to be the identical problem.
        self.fingerprint == other.fingerprint
            && self.vertices == other.vertices
            && self.registers == other.registers
            && self.node_budget == other.node_budget
            && self.time_budget == other.time_budget
            && self.split_remat == other.split_remat
            && self.cheap == other.cheap
            && self.weights == other.weights
            && self.adjacency == other.adjacency
            && self.intervals == other.intervals
    }
}

impl Eq for InstanceKey {}

impl Hash for InstanceKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Equal keys roll to equal fingerprints, so hashing the
        // fingerprint alone stays consistent with `Eq` and makes
        // every downstream hash O(1) instead of O(words).
        self.fingerprint.hash(state);
    }
}

/// Shards a [`ResultCache`] spreads its slots over. Independent locks,
/// so up to this many workers insert/look up without contending. Public
/// so the tracing layer ([`crate::trace`]) can size its per-shard
/// hit/miss attribution arrays to match.
pub const CACHE_SHARDS: usize = 16;

/// A bounded, thread-safe, sharded memo table from [`InstanceKey`]s to
/// clonable results. See the [module docs](self).
pub struct ResultCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    slots_per_shard: usize,
}

struct Shard<V> {
    slots: Vec<Option<(InstanceKey, V)>>,
    stats: CacheStats,
}

/// Cumulative [`ResultCache`] counters. Hits and misses survive
/// evictions (the counters describe the cache's whole life, not the
/// current generation of entries); `evictions` counts every entry
/// overwritten by a slot collision or dropped by an explicit
/// [`ResultCache::clear`], so a long-running service can tell "cold
/// cache" from "thrashing cache" in its metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a memoized result.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries overwritten by slot collisions (and dropped by explicit
    /// [`ResultCache::clear`]) since construction.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas since an earlier snapshot (saturating, so a
    /// stale baseline never underflows).
    pub fn since(&self, baseline: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(baseline.hits),
            misses: self.misses.saturating_sub(baseline.misses),
            evictions: self.evictions.saturating_sub(baseline.evictions),
        }
    }

    /// Component-wise sum — how per-shard counters fold into the
    /// aggregate [`ResultCache::stats`].
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

/// One deterministic hash per key, reused for both the shard pick and
/// the slot pick (disjoint bit regions so they don't correlate). This
/// is the fingerprint [`InstanceKey::new`] rolled once at
/// construction — no re-hash of the adjacency words per lookup — and
/// the mixer is constant-keyed, so slot placement is reproducible run
/// to run.
fn key_hash(key: &InstanceKey) -> u64 {
    key.fingerprint
}

impl<V: Clone> ResultCache<V> {
    /// An empty cache holding at most `capacity` entries, spread over
    /// up to `CACHE_SHARDS` (16) shards of fixed-size slot arrays.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity cache cannot hold anything");
        let shard_count = CACHE_SHARDS.min(capacity);
        let slots_per_shard = capacity.div_ceil(shard_count);
        let shards = (0..shard_count)
            .map(|_| {
                Mutex::new(Shard {
                    slots: vec![None; slots_per_shard],
                    stats: CacheStats::default(),
                })
            })
            .collect();
        ResultCache {
            shards,
            slots_per_shard,
        }
    }

    /// Shards this cache spreads its slots over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total slots across all shards (≥ the requested capacity).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.slots_per_shard
    }

    /// The shard and in-shard slot a key lives in. The upper hash bits
    /// pick the shard, the lower bits the slot, so two keys sharing a
    /// slot index still usually land in different shards.
    fn place(&self, key: &InstanceKey) -> (usize, usize) {
        let h = key_hash(key);
        let shard = ((h >> 48) as usize) % self.shards.len();
        let slot = (h as usize) % self.slots_per_shard;
        (shard, slot)
    }

    /// Looks `key` up, counting a hit or miss on the key's shard (and,
    /// when tracing is armed, attributing the lookup to that shard in
    /// the calling thread's trace).
    pub fn get(&self, key: &InstanceKey) -> Option<V> {
        let (si, slot) = self.place(key);
        let mut shard = self.shards[si].lock().expect("cache shard lock");
        let found = match &shard.slots[slot] {
            Some((k, v)) if k == key => {
                let v = v.clone();
                shard.stats.hits += 1;
                Some(v)
            }
            _ => {
                shard.stats.misses += 1;
                None
            }
        };
        drop(shard);
        crate::trace::cache_access(si, found.is_some());
        found
    }

    /// Memoizes `value` under `key`. The key's slot is overwritten
    /// unconditionally; displacing a *different* resident key counts
    /// one eviction (results are exact-keyed, so eviction never
    /// affects output bytes — only future hit rates).
    pub fn insert(&self, key: InstanceKey, value: V) {
        let (si, slot) = self.place(&key);
        let mut shard = self.shards[si].lock().expect("cache shard lock");
        if matches!(&shard.slots[slot], Some((k, _)) if k != &key) {
            shard.stats.evictions += 1;
        }
        shard.slots[slot] = Some((key, value));
    }

    /// Drops every memoized entry (counted as evictions), keeping the
    /// hit/miss history. Benchmarks use this to measure a cache-cold
    /// pass without restarting the process.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard lock");
            let occupied = shard.slots.iter().filter(|s| s.is_some()).count();
            shard.stats.evictions += occupied as u64;
            shard.slots.iter_mut().for_each(|s| *s = None);
        }
    }

    /// Entries currently memoized.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("cache shard lock");
                shard.slots.iter().filter(|s| s.is_some()).count()
            })
            .sum()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cumulative counters since construction (or the last
    /// [`ResultCache::reset_stats`]): the per-shard counters summed.
    pub fn stats(&self) -> CacheStats {
        self.shard_stats()
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merge(s))
    }

    /// One [`CacheStats`] per shard, in shard order. The aggregate
    /// [`ResultCache::stats`] is exactly their sum.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").stats)
            .collect()
    }

    /// Zeroes every counter (tests and benchmark resets).
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard lock").stats = CacheStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_graph::{Graph, WeightedGraph};

    fn inst(edges: &[(usize, usize)], weights: Vec<Cost>) -> Instance {
        let g = Graph::from_edges(weights.len(), edges);
        Instance::from_weighted_graph(WeightedGraph::new(g, weights))
    }

    fn key_for(weight: Cost) -> InstanceKey {
        InstanceKey::new(&inst(&[], vec![weight]), 1, "LH", 0, None, true)
    }

    #[test]
    fn identical_instances_share_a_key() {
        let a = inst(&[(0, 1), (1, 2)], vec![1, 2, 3]);
        let b = inst(&[(1, 2), (0, 1)], vec![1, 2, 3]);
        let ka = InstanceKey::new(&a, 4, "LH", 100, None, true);
        let kb = InstanceKey::new(&b, 4, "LH", 100, None, true);
        assert_eq!(ka, kb);
    }

    #[test]
    fn any_parameter_difference_changes_the_key() {
        let a = inst(&[(0, 1), (1, 2)], vec![1, 2, 3]);
        let base = InstanceKey::new(&a, 4, "LH", 100, None, true);
        let diffs = [
            InstanceKey::new(&inst(&[(0, 1)], vec![1, 2, 3]), 4, "LH", 100, None, true),
            InstanceKey::new(
                &inst(&[(0, 1), (1, 2)], vec![1, 2, 4]),
                4,
                "LH",
                100,
                None,
                true,
            ),
            InstanceKey::new(&a, 5, "LH", 100, None, true),
            InstanceKey::new(&a, 4, "GC", 100, None, true),
            InstanceKey::new(&a, 4, "LH", 101, None, true),
            InstanceKey::new(&a, 4, "LH", 100, Some(Duration::from_millis(1)), true),
            InstanceKey::new(&a, 4, "LH", 100, None, false),
        ];
        for (i, k) in diffs.iter().enumerate() {
            assert_ne!(&base, k, "variant {i} must not collide");
        }
    }

    #[test]
    fn interval_endpoints_are_part_of_the_key() {
        // Same intersection graph and weights, different endpoints:
        // linear-scan tiers and the flow solver read the endpoints, so
        // these must be distinct problems.
        let a =
            Instance::from_intervals(vec![Interval::new(0, 2), Interval::new(1, 3)], vec![1, 1]);
        let b =
            Instance::from_intervals(vec![Interval::new(0, 10), Interval::new(1, 3)], vec![1, 1]);
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        let ka = InstanceKey::new(&a, 1, "BLS", 100, None, true);
        let kb = InstanceKey::new(&b, 1, "BLS", 100, None, true);
        assert_ne!(ka, kb);
        // An interval instance never collides with the bare-graph
        // instance of the same intersection graph.
        let bare = inst(&[(0, 1)], vec![1, 1]);
        assert_ne!(ka, InstanceKey::new(&bare, 1, "BLS", 100, None, true));
    }

    #[test]
    fn get_insert_and_stats() {
        let cache: ResultCache<u64> = ResultCache::new(8);
        let a = inst(&[(0, 1)], vec![1, 2]);
        let k = InstanceKey::new(&a, 2, "LH", 10, None, true);
        assert_eq!(cache.get(&k), None);
        cache.insert(k.clone(), 42);
        assert_eq!(cache.get(&k), Some(42));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
        cache.reset_stats();
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn colliding_insert_overwrites_its_slot_and_counts_one_eviction() {
        // One shard, one slot: every key collides, so each distinct
        // insert displaces the resident entry in place.
        let cache: ResultCache<usize> = ResultCache::new(1);
        assert_eq!(cache.shard_count(), 1);
        assert_eq!(cache.capacity(), 1);
        let (a, b) = (key_for(1), key_for(2));
        cache.insert(a.clone(), 10);
        assert_eq!(cache.get(&a), Some(10));
        cache.insert(b.clone(), 20);
        assert_eq!(cache.len(), 1, "a full slot is overwritten, not grown");
        assert_eq!(cache.get(&b), Some(20));
        assert_eq!(cache.get(&a), None, "displaced key is gone");
        // Re-inserting the resident key is an update, not an eviction.
        cache.insert(b.clone(), 21);
        assert_eq!(cache.get(&b), Some(21));
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn stats_survive_evictions_and_explicit_clear() {
        let cache: ResultCache<usize> = ResultCache::new(1);
        let (a, b) = (key_for(50), key_for(51));
        cache.insert(a.clone(), 0);
        assert_eq!(cache.get(&a), Some(0)); // 1 hit
        assert_eq!(cache.get(&b), None); // 1 miss
        cache.insert(b.clone(), 1); // displaces `a`: 1 eviction
        let s = cache.stats();
        assert_eq!(
            s,
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 1
            },
            "hit/miss history must survive the eviction"
        );
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
        // An explicit clear evicts the remaining entry too.
        cache.clear();
        assert_eq!(cache.stats().evictions, 2);
        assert!(cache.is_empty());
        let delta = cache.stats().since(&s);
        assert_eq!(delta.evictions, 1);
        assert_eq!(delta.hits + delta.misses, 0);
    }

    #[test]
    fn per_shard_stats_sum_to_the_aggregate() {
        let cache: ResultCache<usize> = ResultCache::new(64);
        assert_eq!(cache.shard_count(), 16);
        let keys: Vec<InstanceKey> = (0..40).map(|w| key_for(w as Cost)).collect();
        for (i, k) in keys.iter().enumerate() {
            let _ = cache.get(k); // miss
            cache.insert(k.clone(), i);
        }
        for k in &keys {
            let _ = cache.get(k); // hit unless a collision displaced it
        }
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), cache.shard_count());
        let summed = per_shard
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merge(s));
        assert_eq!(summed, cache.stats());
        assert_eq!(summed.hits + summed.misses, 80, "every lookup was counted");
        assert!(
            per_shard.iter().filter(|s| s.hits + s.misses > 0).count() > 1,
            "40 distinct keys must spread over more than one shard"
        );
    }

    #[test]
    fn concurrent_hammering_preserves_get_insert_coherence() {
        use std::sync::Arc;
        // N threads racing gets and inserts over an overlapping key
        // space: every hit must return the value inserted under that
        // exact key (the slot holds the key alongside the value, so a
        // racing overwrite can only yield a miss, never a wrong value).
        let cache: Arc<ResultCache<u64>> = Arc::new(ResultCache::new(32));
        let keys: Arc<Vec<InstanceKey>> = Arc::new((0..48).map(|w| key_for(w as Cost)).collect());
        let threads = 4;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let keys = Arc::clone(&keys);
                std::thread::spawn(move || {
                    for round in 0..200u64 {
                        for (i, k) in keys.iter().enumerate() {
                            if (i + t + round as usize).is_multiple_of(3) {
                                cache.insert(k.clone(), i as u64 * 1000);
                            } else if let Some(v) = cache.get(k) {
                                assert_eq!(
                                    v,
                                    i as u64 * 1000,
                                    "hit on key {i} returned another key's value"
                                );
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("hammer thread panicked");
        }
        let s = cache.stats();
        assert!(s.hits > 0 && s.misses > 0);
        assert_eq!(
            s,
            cache
                .shard_stats()
                .iter()
                .fold(CacheStats::default(), |acc, x| acc.merge(x))
        );
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        let _ = ResultCache::<u8>::new(0);
    }
}
