//! Exact-keyed memoization of allocation results.
//!
//! JIT batches re-submit the same methods over and over (re-entrant
//! compilation, tiering, identical trampolines), and the
//! spill-then-reanalyse loop itself re-solves structurally identical
//! instances whenever two rounds produce the same graph. A
//! [`ResultCache`] lets a policy skip the whole solve in those cases.
//!
//! Keys are **exact**, not hashes-of-hashes: an [`InstanceKey`]
//! embeds the full adjacency bit matrix and weight vector (plus the
//! register count and any budget knobs), so a hit is guaranteed to be
//! the same problem and the memoized result is byte-identical to a
//! fresh solve. That makes the cache invisible to the batch driver's
//! determinism contract — hit/miss patterns (and any eviction policy)
//! can differ across thread counts and runs without changing a single
//! output byte.
//!
//! The table is bounded: when `capacity` entries are reached, the next
//! insert clears it wholesale (no LRU bookkeeping on the hot path;
//! correctness does not depend on what stays cached).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Mutex;
use std::time::Duration;

use crate::problem::Instance;
use lra_graph::{Cost, Interval};

/// An exact, self-contained description of one allocation query:
/// the instance's adjacency bit matrix, weights and (for interval
/// instances) the live intervals themselves, plus the query
/// parameters (register count, solver budgets, cheap-tier name).
///
/// Two keys compare equal **iff** a solver would see the identical
/// problem, so memoized results are always safe to reuse. The
/// intervals must be part of the key because both tiers can consume
/// them directly (linear-scan cheap tiers, the min-cost-flow exact
/// solver): two interval instances with the same intersection graph
/// but different endpoints are different problems.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct InstanceKey {
    vertices: usize,
    registers: u32,
    cheap: String,
    node_budget: u64,
    time_budget: Option<Duration>,
    weights: Vec<Cost>,
    /// Concatenated per-vertex adjacency rows (64 vertices per word).
    adjacency: Vec<u64>,
    /// The live intervals, when the instance carries them.
    intervals: Option<Vec<Interval>>,
}

impl InstanceKey {
    /// Fingerprints `instance` under the given query parameters.
    pub fn new(
        instance: &Instance,
        registers: u32,
        cheap: &str,
        node_budget: u64,
        time_budget: Option<Duration>,
    ) -> Self {
        let g = instance.graph();
        let n = g.vertex_count();
        let mut adjacency = Vec::with_capacity(n * n.div_ceil(64));
        for v in 0..n {
            adjacency.extend_from_slice(g.neighbor_row(v).words());
        }
        InstanceKey {
            vertices: n,
            registers,
            cheap: cheap.to_string(),
            node_budget,
            time_budget,
            weights: instance.weighted_graph().weights().to_vec(),
            adjacency,
            intervals: instance.intervals().map(<[Interval]>::to_vec),
        }
    }
}

/// A bounded, thread-safe memo table from [`InstanceKey`]s to
/// clonable results. See the [module docs](self).
pub struct ResultCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
}

struct Inner<V> {
    map: HashMap<InstanceKey, V>,
    stats: CacheStats,
}

/// Cumulative [`ResultCache`] counters. Hits and misses survive
/// clear-on-full evictions (the counters describe the cache's whole
/// life, not the current generation of entries); `evictions` counts
/// every entry dropped by a wholesale clear, so a long-running service
/// can tell "cold cache" from "thrashing cache" in its metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a memoized result.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by clear-on-full (and explicit
    /// [`ResultCache::clear`]) since construction.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas since an earlier snapshot (saturating, so a
    /// stale baseline never underflows).
    pub fn since(&self, baseline: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(baseline.hits),
            misses: self.misses.saturating_sub(baseline.misses),
            evictions: self.evictions.saturating_sub(baseline.evictions),
        }
    }
}

impl<V: Clone> ResultCache<V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity cache cannot hold anything");
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                stats: CacheStats::default(),
            }),
            capacity,
        }
    }

    /// Looks `key` up, counting a hit or miss.
    pub fn get(&self, key: &InstanceKey) -> Option<V> {
        let mut inner = self.inner.lock().expect("cache lock");
        match inner.map.get(key).cloned() {
            Some(v) => {
                inner.stats.hits += 1;
                Some(v)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Memoizes `value` under `key`. A full table is cleared wholesale
    /// first (results are exact-keyed, so eviction never affects
    /// output bytes — only future hit rates); the dropped entries are
    /// added to [`CacheStats::evictions`] while the hit/miss counters
    /// keep accumulating across the clear.
    pub fn insert(&self, key: InstanceKey, value: V) {
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            inner.stats.evictions += inner.map.len() as u64;
            inner.map.clear();
        }
        inner.map.insert(key, value);
    }

    /// Drops every memoized entry (counted as evictions), keeping the
    /// hit/miss history. Benchmarks use this to measure a cache-cold
    /// pass without restarting the process.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.stats.evictions += inner.map.len() as u64;
        inner.map.clear();
    }

    /// Entries currently memoized.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cumulative counters since construction (or the last
    /// [`ResultCache::reset_stats`]).
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock").stats
    }

    /// Zeroes every counter (tests and benchmark resets).
    pub fn reset_stats(&self) {
        self.inner.lock().expect("cache lock").stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_graph::{Graph, WeightedGraph};

    fn inst(edges: &[(usize, usize)], weights: Vec<Cost>) -> Instance {
        let g = Graph::from_edges(weights.len(), edges);
        Instance::from_weighted_graph(WeightedGraph::new(g, weights))
    }

    #[test]
    fn identical_instances_share_a_key() {
        let a = inst(&[(0, 1), (1, 2)], vec![1, 2, 3]);
        let b = inst(&[(1, 2), (0, 1)], vec![1, 2, 3]);
        let ka = InstanceKey::new(&a, 4, "LH", 100, None);
        let kb = InstanceKey::new(&b, 4, "LH", 100, None);
        assert_eq!(ka, kb);
    }

    #[test]
    fn any_parameter_difference_changes_the_key() {
        let a = inst(&[(0, 1), (1, 2)], vec![1, 2, 3]);
        let base = InstanceKey::new(&a, 4, "LH", 100, None);
        let diffs = [
            InstanceKey::new(&inst(&[(0, 1)], vec![1, 2, 3]), 4, "LH", 100, None),
            InstanceKey::new(&inst(&[(0, 1), (1, 2)], vec![1, 2, 4]), 4, "LH", 100, None),
            InstanceKey::new(&a, 5, "LH", 100, None),
            InstanceKey::new(&a, 4, "GC", 100, None),
            InstanceKey::new(&a, 4, "LH", 101, None),
            InstanceKey::new(&a, 4, "LH", 100, Some(Duration::from_millis(1))),
        ];
        for (i, k) in diffs.iter().enumerate() {
            assert_ne!(&base, k, "variant {i} must not collide");
        }
    }

    #[test]
    fn interval_endpoints_are_part_of_the_key() {
        // Same intersection graph and weights, different endpoints:
        // linear-scan tiers and the flow solver read the endpoints, so
        // these must be distinct problems.
        let a =
            Instance::from_intervals(vec![Interval::new(0, 2), Interval::new(1, 3)], vec![1, 1]);
        let b =
            Instance::from_intervals(vec![Interval::new(0, 10), Interval::new(1, 3)], vec![1, 1]);
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        let ka = InstanceKey::new(&a, 1, "BLS", 100, None);
        let kb = InstanceKey::new(&b, 1, "BLS", 100, None);
        assert_ne!(ka, kb);
        // An interval instance never collides with the bare-graph
        // instance of the same intersection graph.
        let bare = inst(&[(0, 1)], vec![1, 1]);
        assert_ne!(ka, InstanceKey::new(&bare, 1, "BLS", 100, None));
    }

    #[test]
    fn get_insert_and_stats() {
        let cache: ResultCache<u64> = ResultCache::new(8);
        let a = inst(&[(0, 1)], vec![1, 2]);
        let k = InstanceKey::new(&a, 2, "LH", 10, None);
        assert_eq!(cache.get(&k), None);
        cache.insert(k.clone(), 42);
        assert_eq!(cache.get(&k), Some(42));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
        cache.reset_stats();
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn full_cache_clears_wholesale_and_keeps_working() {
        let cache: ResultCache<usize> = ResultCache::new(2);
        let keys: Vec<InstanceKey> = (0..3)
            .map(|w| InstanceKey::new(&inst(&[], vec![w as Cost]), 1, "LH", 0, None))
            .collect();
        cache.insert(keys[0].clone(), 0);
        cache.insert(keys[1].clone(), 1);
        assert_eq!(cache.len(), 2);
        cache.insert(keys[2].clone(), 2);
        assert_eq!(cache.len(), 1, "full table cleared before insert");
        assert_eq!(cache.get(&keys[2]), Some(2));
        // Re-inserting an existing key never triggers the clear.
        cache.insert(keys[2].clone(), 3);
        assert_eq!(cache.get(&keys[2]), Some(3));
    }

    #[test]
    fn stats_survive_clear_on_full_and_count_evictions() {
        let cache: ResultCache<usize> = ResultCache::new(2);
        let keys: Vec<InstanceKey> = (0..3)
            .map(|w| InstanceKey::new(&inst(&[], vec![w as Cost + 50]), 1, "LH", 0, None))
            .collect();
        cache.insert(keys[0].clone(), 0);
        assert_eq!(cache.get(&keys[0]), Some(0)); // 1 hit
        assert_eq!(cache.get(&keys[1]), None); // 1 miss
        cache.insert(keys[1].clone(), 1);
        cache.insert(keys[2].clone(), 2); // clear-on-full: 2 entries evicted
        let s = cache.stats();
        assert_eq!(
            s,
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 2
            },
            "hit/miss history must survive the wholesale clear"
        );
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
        // An explicit clear evicts the remaining entry too.
        cache.clear();
        assert_eq!(cache.stats().evictions, 3);
        assert!(cache.is_empty());
        let delta = cache.stats().since(&s);
        assert_eq!(delta.evictions, 1);
        assert_eq!(delta.hits + delta.misses, 0);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        let _ = ResultCache::<u8>::new(0);
    }
}
