//! The layered-heuristic allocator (`LH`) for general graphs.
//!
//! Section 5 of the paper: on non-chordal interference graphs (non-SSA
//! programs) the maximum weighted stable set is NP-hard, so each layer
//! is *approximated* by a greedy cluster: walk the candidates in
//! decreasing weight order, adding every vertex that does not interfere
//! with the cluster so far (Algorithm 5). Once all variables are
//! clustered, the `R` heaviest clusters are allocated (Algorithm 6).
//!
//! Because every cluster is a stable set, assigning one register per
//! allocated cluster is a proper colouring — the allocation is feasible
//! by construction on *any* graph.
//!
//! Complexity: `O(R(|V| + |E|))` as each clustering pass visits every
//! candidate and its neighbours once.

use crate::problem::{Allocation, Allocator, Instance};
use lra_graph::{BitSet, Cost};

/// The `LH` allocator of §5.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayeredHeuristic {
    /// Apply the §4.1 weight bias to the ordering (off in the paper's
    /// evaluation; exposed for the ablation benchmarks).
    pub bias: bool,
}

impl LayeredHeuristic {
    /// The allocator as evaluated in the paper (no bias).
    pub fn new() -> Self {
        LayeredHeuristic { bias: false }
    }
}

/// A greedy stable-set clustering of the graph (Algorithm 5).
///
/// `order` must list the candidate vertices; clusters are built greedily
/// in that order. Returns the clusters, each a vector of vertex indices.
pub fn cluster_vertices(instance: &Instance, order: &[usize]) -> Vec<Vec<usize>> {
    let g = instance.graph();
    let n = g.vertex_count();
    let mut in_candidates = BitSet::from_iter_with_capacity(n, order.iter().copied());
    let mut clusters = Vec::new();

    while !in_candidates.is_empty() {
        let mut cluster = Vec::new();
        let mut potentials = in_candidates.clone();
        for &v in order {
            if !potentials.contains(v) {
                continue;
            }
            cluster.push(v);
            potentials.remove(v);
            potentials.difference_with_row(g.neighbor_row(v));
        }
        for &v in &cluster {
            in_candidates.remove(v);
        }
        clusters.push(cluster);
    }
    clusters
}

impl Allocator for LayeredHeuristic {
    fn name(&self) -> &'static str {
        "LH"
    }

    /// Clusters the variables into stable sets and allocates the `r`
    /// heaviest clusters (Algorithms 5–6). Works on any graph.
    fn allocate(&self, instance: &Instance, r: u32) -> Allocation {
        let wg = instance.weighted_graph();
        let n = wg.vertex_count();

        // Candidates ordered by decreasing (possibly biased) weight.
        let keys: Vec<Cost> = if self.bias {
            crate::layered::biased_weights(wg)
        } else {
            wg.weights().to_vec()
        };
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(keys[v]));

        let mut clusters = cluster_vertices(instance, &order);
        // Allocate the R clusters of greatest *raw* total weight.
        clusters.sort_by_key(|c| std::cmp::Reverse(wg.weight_of_slice(c)));
        clusters.truncate(r as usize);

        let mut allocated = BitSet::new(n);
        for c in &clusters {
            for &v in c {
                allocated.insert(v);
            }
        }
        instance.allocation_from_set(allocated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use lra_graph::{Graph, WeightedGraph};

    fn c5_instance() -> Instance {
        // C5 (non-chordal) with one heavy vertex.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        Instance::from_weighted_graph(WeightedGraph::new(g, vec![10, 1, 8, 1, 8]))
    }

    #[test]
    fn clusters_are_stable_sets_and_cover() {
        let inst = c5_instance();
        let order: Vec<usize> = (0..5).collect();
        let clusters = cluster_vertices(&inst, &order);
        let mut seen = [false; 5];
        for c in &clusters {
            assert!(inst.graph().is_stable_set(c), "cluster {c:?} not stable");
            for &v in c {
                assert!(!seen[v], "vertex {v} in two clusters");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all vertices clustered");
    }

    #[test]
    fn greedy_cluster_takes_heaviest_first() {
        let inst = c5_instance();
        let mut order: Vec<usize> = (0..5).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(inst.weighted_graph().weight(v)));
        let clusters = cluster_vertices(&inst, &order);
        // First cluster starts with vertex 0 (weight 10) and adds the
        // non-adjacent heavy vertices 2 or 3 (2 is heavier).
        assert!(clusters[0].contains(&0));
        assert!(clusters[0].contains(&2));
    }

    #[test]
    fn allocation_is_feasible_on_non_chordal_graphs() {
        let inst = c5_instance();
        for r in 0..=3 {
            let a = LayeredHeuristic::new().allocate(&inst, r);
            assert!(
                verify::check(&inst, &a, r.max(1)).is_feasible() || r == 0,
                "infeasible at R={r}"
            );
            if r == 0 {
                assert!(a.allocated.is_empty());
            }
        }
    }

    #[test]
    fn r_clusters_mean_r_colors_suffice() {
        let inst = c5_instance();
        let a = LayeredHeuristic::new().allocate(&inst, 2);
        assert!(verify::check(&inst, &a, 2).is_feasible());
        // With 2 registers on C5 at most 4 vertices are allocatable.
        assert!(a.allocated.len() <= 4);
    }

    #[test]
    fn enough_clusters_allocate_everything() {
        let inst = c5_instance();
        // C5 needs 3 stable sets; R=5 certainly covers all clusters.
        let a = LayeredHeuristic::new().allocate(&inst, 5);
        assert_eq!(a.spill_cost, 0);
    }

    #[test]
    fn works_on_chordal_instances_too() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let inst = Instance::from_weighted_graph(WeightedGraph::new(g, vec![3, 2, 1]));
        let a = LayeredHeuristic::new().allocate(&inst, 2);
        // Triangle: each cluster is a single vertex; keep the 2 heaviest.
        assert_eq!(a.allocated_weight, 5);
        assert!(verify::check(&inst, &a, 2).is_feasible());
    }

    #[test]
    fn name_is_lh() {
        assert_eq!(LayeredHeuristic::new().name(), "LH");
    }
}
