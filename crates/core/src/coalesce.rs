//! Register coalescing on weighted interference graphs.
//!
//! Coalescing merges copy-related variables that do not interfere, so
//! the copy disappears. The paper treats spilling and coalescing as the
//! two residual problems of decoupled allocation and leaves their
//! interaction to future work (§8); this module provides the standard
//! machinery so the layered allocators can be studied on coalesced
//! graphs:
//!
//! * [`Affinities`] — copy/φ-relatedness with move-cost weights,
//! * [`aggressive_coalesce`] — merge every affine non-interfering pair
//!   (maximises removed moves, may increase spilling: merged live
//!   ranges are longer, and the merged graph may lose chordality),
//! * [`conservative_coalesce`] — Briggs' rule: merge only when the
//!   merged vertex has fewer than `R` neighbours of significant degree
//!   (≥ R), which never turns a colourable graph uncolourable.

use crate::problem::Instance;
use lra_graph::{Cost, GraphBuilder, WeightedGraph};

/// Copy-affinities between variables: `(u, v, move_cost)` means a
/// register-to-register move of cost `move_cost` disappears if `u` and
/// `v` get the same register (are merged).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Affinities {
    pairs: Vec<(usize, usize, Cost)>,
}

impl Affinities {
    /// Creates an empty affinity set.
    pub fn new() -> Self {
        Affinities::default()
    }

    /// Records an affinity between `u` and `v` of weight `move_cost`.
    /// Self-affinities are ignored.
    pub fn add(&mut self, u: usize, v: usize, move_cost: Cost) {
        if u != v {
            self.pairs.push((u.min(v), u.max(v), move_cost));
        }
    }

    /// The recorded pairs.
    pub fn pairs(&self) -> &[(usize, usize, Cost)] {
        &self.pairs
    }

    /// Number of affinities.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` if no affinity was recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// The outcome of a coalescing pass.
#[derive(Clone, Debug)]
pub struct Coalesced {
    /// The coalesced instance (classes as vertices; weights summed).
    pub instance: Instance,
    /// Map from original vertex to its class (new vertex index).
    pub class_of: Vec<usize>,
    /// Total move cost eliminated by the merges.
    pub saved_moves: Cost,
}

struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.parent[ra] = rb;
    }
}

/// Shared merge loop: `may_merge` decides whether two interference-free
/// classes may be united.
fn coalesce_with(
    instance: &Instance,
    affinities: &Affinities,
    mut may_merge: impl FnMut(&WeightedGraph, &[Vec<usize>], usize, usize) -> bool,
) -> Coalesced {
    let wg = instance.weighted_graph();
    let g = wg.graph();
    let n = g.vertex_count();
    let mut dsu = Dsu::new(n);
    let mut members: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut saved: Cost = 0;

    // Heaviest moves first, as in classical coalescing.
    let mut pairs = affinities.pairs.clone();
    pairs.sort_by_key(|&(_, _, w)| std::cmp::Reverse(w));

    for (u, v, move_cost) in pairs {
        let (ru, rv) = (dsu.find(u), dsu.find(v));
        if ru == rv {
            saved += move_cost; // already merged by an earlier affinity
            continue;
        }
        // Classes interfere if any cross-member edge exists.
        let interfere = members[ru]
            .iter()
            .any(|&a| members[rv].iter().any(|&b| g.has_edge(a, b)));
        if interfere || !may_merge(wg, &members, ru, rv) {
            continue;
        }
        dsu.union(ru, rv);
        let root = dsu.find(ru);
        let (absorbed, into) = if root == rv { (ru, rv) } else { (rv, ru) };
        let moved = std::mem::take(&mut members[absorbed]);
        members[into].extend(moved);
        saved += move_cost;
    }

    // Compact classes into a new instance.
    let mut class_of = vec![usize::MAX; n];
    let mut new_index = Vec::new(); // root -> new id
    let mut roots = Vec::new();
    for v in 0..n {
        let r = dsu.find(v);
        if class_of[r] == usize::MAX {
            class_of[r] = new_index.len();
            new_index.push(r);
            roots.push(r);
        }
    }
    for v in 0..n {
        let r = dsu.find(v);
        class_of[v] = class_of[r];
    }

    let m = roots.len();
    let mut b = GraphBuilder::new(m);
    for (u, v) in g.edges() {
        let (cu, cv) = (class_of[u.index()], class_of[v.index()]);
        if cu != cv {
            b.add_edge(cu, cv);
        }
    }
    let mut weights = vec![0; m];
    for v in 0..n {
        weights[class_of[v]] += wg.weight(v);
    }
    Coalesced {
        instance: Instance::from_weighted_graph(WeightedGraph::new(b.build(), weights)),
        class_of,
        saved_moves: saved,
    }
}

/// Merges every affine pair whose classes do not interfere, heaviest
/// moves first.
///
/// Aggressive coalescing maximises removed moves but can hurt the
/// allocator: merged classes have the union of the neighbourhoods, and
/// the quotient graph of a chordal graph need not be chordal (the
/// returned [`Instance`] re-detects chordality; non-chordal results are
/// still handled by `LH`/`GC`/branch-and-bound).
pub fn aggressive_coalesce(instance: &Instance, affinities: &Affinities) -> Coalesced {
    coalesce_with(instance, affinities, |_, _, _, _| true)
}

/// Briggs-conservative coalescing: merge only if the merged class has
/// fewer than `r` neighbours of degree ≥ `r` in the current quotient
/// graph (approximated on the original graph). Such merges can never
/// make an `r`-colourable graph uncolourable.
pub fn conservative_coalesce(instance: &Instance, affinities: &Affinities, r: u32) -> Coalesced {
    coalesce_with(instance, affinities, |wg, members, ru, rv| {
        let g = wg.graph();
        // Neighbour classes of the union, by original vertices.
        let mut neighbors: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for &a in members[ru].iter().chain(members[rv].iter()) {
            for u in g.neighbor_indices(a) {
                neighbors.insert(*u as usize);
            }
        }
        let significant = neighbors
            .iter()
            .filter(|&&x| {
                !members[ru].contains(&x) && !members[rv].contains(&x) && g.degree(x) >= r as usize
            })
            .count();
        significant < r as usize
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_graph::Graph;

    fn instance(n: usize, edges: &[(usize, usize)], w: Vec<Cost>) -> Instance {
        Instance::from_weighted_graph(WeightedGraph::new(Graph::from_edges(n, edges), w))
    }

    #[test]
    fn merges_non_interfering_affine_pair() {
        // 0-1 interfere; 1-2 affine and non-interfering.
        let inst = instance(3, &[(0, 1)], vec![1, 2, 4]);
        let mut aff = Affinities::new();
        aff.add(1, 2, 10);
        let c = aggressive_coalesce(&inst, &aff);
        assert_eq!(c.instance.vertex_count(), 2);
        assert_eq!(c.saved_moves, 10);
        assert_eq!(c.class_of[1], c.class_of[2]);
        assert_ne!(c.class_of[0], c.class_of[1]);
        // Merged weight is the sum.
        let merged = c.class_of[1];
        assert_eq!(c.instance.weighted_graph().weight(merged), 6);
    }

    #[test]
    fn interfering_pair_is_not_merged() {
        let inst = instance(2, &[(0, 1)], vec![1, 1]);
        let mut aff = Affinities::new();
        aff.add(0, 1, 100);
        let c = aggressive_coalesce(&inst, &aff);
        assert_eq!(c.instance.vertex_count(), 2);
        assert_eq!(c.saved_moves, 0);
    }

    #[test]
    fn transitive_interference_blocks_merge() {
        // 0 and 2 are affine; merging them is fine. Then 2' (=0+2) and 1
        // interfere through 0, so a second affinity 1-2 must be refused.
        let inst = instance(3, &[(0, 1)], vec![1, 1, 1]);
        let mut aff = Affinities::new();
        aff.add(0, 2, 10);
        aff.add(1, 2, 5);
        let c = aggressive_coalesce(&inst, &aff);
        assert_eq!(c.instance.vertex_count(), 2);
        assert_eq!(c.saved_moves, 10);
    }

    #[test]
    fn heaviest_move_wins_conflicts() {
        // A chain where merging (0,1) [cost 3] and merging (1,2) [cost 9]
        // are both individually legal, but 0 and 2 interfere, so only
        // one can happen: the heavier one.
        let inst = instance(3, &[(0, 2)], vec![1, 1, 1]);
        let mut aff = Affinities::new();
        aff.add(0, 1, 3);
        aff.add(1, 2, 9);
        let c = aggressive_coalesce(&inst, &aff);
        assert_eq!(c.saved_moves, 9);
        assert_eq!(c.class_of[1], c.class_of[2]);
    }

    #[test]
    fn already_merged_pair_counts_its_move() {
        let inst = instance(3, &[], vec![1, 1, 1]);
        let mut aff = Affinities::new();
        aff.add(0, 1, 5);
        aff.add(0, 1, 2); // duplicate affinity: its move also disappears
        let c = aggressive_coalesce(&inst, &aff);
        assert_eq!(c.saved_moves, 7);
        assert_eq!(c.instance.vertex_count(), 2);
    }

    #[test]
    fn conservative_refuses_high_pressure_merge() {
        // Star of high-degree neighbours: merging the two centres would
        // create a node with 4 significant neighbours at R=2.
        let mut edges = vec![];
        // centres 0, 1; neighbours 2..6 each adjacent to a centre and to
        // each other enough to have degree >= 2.
        for x in 2..6 {
            edges.push((0, x));
        }
        for x in 2..6 {
            for y in (x + 1)..6 {
                edges.push((x, y));
            }
        }
        let n = 7;
        let inst = instance(n, &edges, vec![1; 7]);
        let mut aff = Affinities::new();
        aff.add(0, 6, 10); // vertex 6 isolated -> fine even conservatively? no:
                           // merged class neighbours = 2..6, all deg >= 2.
        let conservative = conservative_coalesce(&inst, &aff, 2);
        assert_eq!(conservative.saved_moves, 0, "Briggs must refuse");
        let aggressive = aggressive_coalesce(&inst, &aff);
        assert_eq!(aggressive.saved_moves, 10, "aggressive merges anyway");
    }

    #[test]
    fn conservative_allows_safe_merge() {
        let inst = instance(4, &[(0, 1)], vec![1; 4]);
        let mut aff = Affinities::new();
        aff.add(2, 3, 4);
        let c = conservative_coalesce(&inst, &aff, 2);
        assert_eq!(c.saved_moves, 4);
        assert_eq!(c.instance.vertex_count(), 3);
    }

    #[test]
    fn conservative_preserves_colourability() {
        use crate::verify;
        use lra_graph::generate;
        use rand::Rng as _;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        for _ in 0..10 {
            let g = generate::random_chordal(&mut rng, 24, 30, 4);
            let w = generate::random_weights(&mut rng, 24, 2);
            let inst = Instance::from_weighted_graph(WeightedGraph::new(g, w));
            let r = inst.max_live() as u32; // everything colourable
            let mut aff = Affinities::new();
            for _ in 0..12 {
                aff.add(
                    rng.gen_range(0..24),
                    rng.gen_range(0..24),
                    rng.gen_range(1..10),
                );
            }
            let c = conservative_coalesce(&inst, &aff, r);
            let all = lra_graph::BitSet::full(c.instance.vertex_count());
            assert!(
                verify::check_set(&c.instance, &all, r).is_feasible(),
                "Briggs merge broke {r}-colourability"
            );
        }
    }

    #[test]
    fn empty_affinities_is_identity() {
        let inst = instance(3, &[(0, 1)], vec![1, 2, 3]);
        let c = aggressive_coalesce(&inst, &Affinities::new());
        assert_eq!(c.instance.vertex_count(), 3);
        assert_eq!(c.saved_moves, 0);
        assert_eq!(c.class_of, vec![0, 1, 2]);
        assert!(Affinities::new().is_empty());
    }
}
