//! The end-to-end allocation pipeline.
//!
//! [`AllocationPipeline`] orchestrates the full decoupled-allocation
//! flow of the paper on an [`lra_ir::Function`]:
//!
//! 1. **analysis** — liveness, loop frequencies, spill costs and the
//!    interference instance ([`crate::pipeline::build_instance`]),
//! 2. **allocation** — a registry-selected allocator picks the variables
//!    kept in registers (optionally on a coalesced quotient graph),
//! 3. **spill-code rewriting** — stores/reloads are inserted for the
//!    spilled set ([`lra_ir::spill_code`]),
//! 4. **re-analysis** — the rewritten function is re-analysed and
//!    re-allocated until no further spilling is needed (the reloads of
//!    §4.3 carry residual pressure, so one round is not always enough).
//!    Each round shares one [`lra_ir::FunctionAnalysis`], updated
//!    incrementally from the spill rewrite's dirty blocks; set
//!    `LRA_FULL_REANALYSIS=1` (or [`AllocationPipeline::full_reanalysis`])
//!    to force the byte-identical full recomputation instead,
//! 5. **assignment + verification** — concrete registers are assigned
//!    and the result is checked ([`crate::verify`]).
//!
//! The pipeline is builder-configured and returns an
//! [`AllocatedFunction`] report with everything a client (or a test)
//! wants to know: cumulative and per-round spill costs, the spilled
//! set, inserted load/store counts, the register assignment and the
//! verification verdict.
//!
//! # Example
//!
//! ```
//! use lra_core::driver::AllocationPipeline;
//! use lra_core::pipeline::InstanceKind;
//! use lra_ir::builder::FunctionBuilder;
//! use lra_targets::{Target, TargetKind};
//!
//! let mut b = FunctionBuilder::new("demo");
//! let e = b.entry_block();
//! let x = b.op(e, &[]);
//! let y = b.op(e, &[x]);
//! b.op(e, &[x, y]);
//! let f = b.finish();
//!
//! let report = AllocationPipeline::new(Target::new(TargetKind::St231))
//!     .allocator("BFPL")
//!     .instance_kind(InstanceKind::PreciseGraph)
//!     .registers(2)
//!     .run(&f)
//!     .expect("BFPL is registered and the function is SSA");
//! assert!(report.converged);
//! assert!(report.verdict.is_feasible());
//! ```

use crate::assign::Assignment;
use crate::coalesce;
use crate::pipeline::{build_instance_from_costs_in, copy_affinities_with, InstanceKind};
use crate::portfolio::{Portfolio, PortfolioConfig};
use crate::problem::{Allocator, Instance};
use crate::registry::{AllocatorRegistry, AllocatorSpec};
use crate::verify::{self, Feasibility};
use lra_graph::BitSet;
use lra_ir::remat::RematTable;
use lra_ir::{analysis, liveness, spill_cost, split};
use lra_ir::{spill_code, AnalysisScratch, Function, FunctionAnalysis};
use lra_targets::Target;

/// Whether (and how) the pipeline coalesces copy-related variables
/// before allocating.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CoalesceMode {
    /// No coalescing (the paper's setting: spilling studied in
    /// isolation).
    #[default]
    Off,
    /// Briggs-conservative merges only (never hurts colourability).
    Conservative,
    /// Merge every non-interfering affine pair. May break chordality;
    /// rounds where the quotient loses chordality fall back to the
    /// uncoalesced graph when the selected allocator requires a PEO.
    Aggressive,
}

/// Why a pipeline run could not start or finish.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// The requested allocator name is not in the
    /// [`AllocatorRegistry`].
    UnknownAllocator(String),
    /// The allocator needs live intervals but the pipeline was
    /// configured with [`InstanceKind::PreciseGraph`].
    NeedsIntervals(&'static str),
    /// The allocator needs a chordal interference graph but the
    /// function's instance is not chordal (non-SSA input with the
    /// precise-graph view).
    NeedsChordal(&'static str),
    /// The pipeline run panicked. Only produced by the
    /// [`crate::batch`] driver, which catches per-function panics so
    /// one pathological input cannot abort a whole batch; the payload
    /// is the panic message.
    Panic(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::UnknownAllocator(name) => write!(
                f,
                "unknown allocator {name:?}; registered: {}",
                AllocatorRegistry::names().join(", ")
            ),
            PipelineError::NeedsIntervals(name) => {
                write!(f, "allocator {name} requires InstanceKind::LinearIntervals")
            }
            PipelineError::NeedsChordal(name) => write!(
                f,
                "allocator {name} requires a chordal interference graph (SSA input)"
            ),
            PipelineError::Panic(msg) => write!(f, "pipeline panicked: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Builder-configured orchestrator for allocate → spill-code rewrite →
/// re-analyse → assign → verify. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct AllocationPipeline {
    target: Target,
    kind: InstanceKind,
    allocator: String,
    registers: Option<u32>,
    coalesce: CoalesceMode,
    max_rounds: u32,
    optimized_spill: bool,
    portfolio: Option<PortfolioConfig>,
    full_reanalysis: Option<bool>,
    escalation: Option<bool>,
}

/// `true` when the `LRA_NO_SPLIT` environment variable disables the
/// split + rematerialization escalation tier process-wide (any
/// non-empty value other than `0`). The escape hatch for comparing
/// against pre-escalation behaviour without rebuilding; the
/// per-pipeline [`AllocationPipeline::escalation`] switch and the
/// [`PortfolioConfig::split_remat`] knob are the programmatic
/// equivalents.
pub fn escalation_forced_off() -> bool {
    std::env::var_os("LRA_NO_SPLIT").is_some_and(|v| !v.is_empty() && v != "0")
}

impl AllocationPipeline {
    /// A pipeline for `target` with the defaults: the `BFPL` allocator,
    /// the precise-graph instance view, the target's architectural
    /// register count, no coalescing, plain spill-everywhere rewriting,
    /// and at most 8 spill-then-reanalyse rounds.
    pub fn new(target: Target) -> Self {
        AllocationPipeline {
            target,
            kind: InstanceKind::PreciseGraph,
            allocator: "BFPL".to_string(),
            registers: None,
            coalesce: CoalesceMode::Off,
            max_rounds: 8,
            optimized_spill: false,
            portfolio: None,
            full_reanalysis: None,
            escalation: None,
        }
    }

    /// Selects the allocator by registry name (case-insensitive).
    pub fn allocator(mut self, name: impl Into<String>) -> Self {
        self.allocator = name.into();
        self
    }

    /// Selects the [`Portfolio`] policy with an explicit
    /// configuration (cheap tier, node fuel, optional wall-clock
    /// budget). Equivalent to `.allocator("Portfolio")` except that
    /// the policy runs with `cfg` instead of
    /// [`PortfolioConfig::default`].
    pub fn portfolio(mut self, cfg: PortfolioConfig) -> Self {
        self.allocator = "Portfolio".to_string();
        self.portfolio = Some(cfg);
        self
    }

    /// Selects the instance view (precise graph vs linearised
    /// intervals).
    pub fn instance_kind(mut self, kind: InstanceKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the register count (defaults to the target's file
    /// size).
    pub fn registers(mut self, r: u32) -> Self {
        self.registers = Some(r);
        self
    }

    /// Enables copy/φ coalescing before each allocation round.
    pub fn coalescing(mut self, mode: CoalesceMode) -> Self {
        self.coalesce = mode;
        self
    }

    /// Caps the spill-then-reanalyse iteration.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn max_rounds(mut self, rounds: u32) -> Self {
        assert!(rounds >= 1, "the pipeline needs at least one round");
        self.max_rounds = rounds;
        self
    }

    /// Uses the §2.1 load-store-optimised rewriting (shared reloads
    /// within a block) instead of plain spill-everywhere.
    pub fn optimized_spill_code(mut self, enabled: bool) -> Self {
        self.optimized_spill = enabled;
        self
    }

    /// Forces (or forbids) full per-round recomputation of every
    /// analysis instead of the default incremental re-analysis.
    ///
    /// The default (unset) defers to the `LRA_FULL_REANALYSIS`
    /// environment variable ([`analysis::full_reanalysis_forced`]).
    /// Both paths produce byte-identical reports — CI diffs them — so
    /// this switch exists purely for that verification and for
    /// benchmarking the incremental speedup.
    pub fn full_reanalysis(mut self, enabled: bool) -> Self {
        self.full_reanalysis = Some(enabled);
        self
    }

    /// Enables or disables the final-round **escalation tier**: when
    /// the normal allocate → spill loop exits without converging, the
    /// pipeline re-runs once from the original function with its
    /// over-pressure live ranges split
    /// ([`split::split_pressure_ranges`]) and constant-like values
    /// rematerialized instead of spilled
    /// ([`lra_ir::remat::rewrite_spill_code_remat`]), keeping the
    /// escalated result only when it converges at no higher total
    /// spill cost.
    ///
    /// The default (unset) turns the tier **on for `Portfolio`
    /// pipelines** (honouring [`PortfolioConfig::split_remat`]) and off
    /// for a directly-selected allocator — single-allocator runs are
    /// measurement baselines (and the exact solver's fuel is budgeted
    /// for the original function, not a split one), so they only
    /// escalate on an explicit opt-in here. A portfolio whose
    /// escalation budget is already spent (zero
    /// [`PortfolioConfig::node_budget`] or an expired
    /// [`PortfolioConfig::time_budget`]) keeps its degradation
    /// contract — it behaves byte-identically to the cheap tier, so
    /// the split + remat step stays off there too unless forced on
    /// here. Setting `LRA_NO_SPLIT=1` ([`escalation_forced_off`])
    /// overrides everything and turns the tier off process-wide.
    pub fn escalation(mut self, enabled: bool) -> Self {
        self.escalation = Some(enabled);
        self
    }

    /// Applies (or clears) a per-run wall-clock budget.
    ///
    /// On a `Portfolio` pipeline the budget flows into
    /// [`PortfolioConfig::time_budget`], so the exact escalation tier
    /// aborts cooperatively once the deadline passes and the cheap
    /// tier's answer is kept — the paper's graceful-degradation
    /// contract. The heuristic tiers are polynomial and fast, so on a
    /// directly-selected allocator there is nothing to bound and the
    /// call is a no-op. A `Some(Duration::ZERO)` budget is already
    /// expired: the portfolio degrades deterministically to its cheap
    /// tier (see [`PortfolioConfig::time_budget`]).
    pub fn time_budget(mut self, budget: Option<std::time::Duration>) -> Self {
        if self.allocator.eq_ignore_ascii_case("Portfolio") {
            self.portfolio = Some(
                self.portfolio
                    .take()
                    .unwrap_or_default()
                    .time_budget(budget),
            );
        }
        self
    }

    /// The load-shedding variant of this pipeline: the split + remat
    /// escalation tier is forced off and a `Portfolio` allocator is
    /// pinned to its cheap tier (zero node fuel), so every request
    /// completes in polynomial time. Used by the serving layer when a
    /// queue-depth watermark trips — throughput bends (cheaper, maybe
    /// costlier allocations) instead of breaking (rejections).
    pub fn degraded(&self) -> Self {
        let mut p = self.clone();
        p.escalation = Some(false);
        if p.allocator.eq_ignore_ascii_case("Portfolio") {
            p.portfolio = Some(p.portfolio.take().unwrap_or_default().node_budget(0));
        }
        p
    }

    /// Whether a non-converged run of this pipeline enters the
    /// split + remat escalation tier (the resolution of the
    /// [`AllocationPipeline::escalation`] builder, the
    /// [`PortfolioConfig::split_remat`] knob and the `LRA_NO_SPLIT`
    /// escape hatch).
    pub fn escalation_enabled(&self) -> bool {
        if escalation_forced_off() {
            return false;
        }
        self.escalation.unwrap_or_else(|| {
            self.allocator.eq_ignore_ascii_case("Portfolio")
                && self.portfolio.as_ref().is_none_or(|cfg| {
                    cfg.split_remat
                        && cfg.node_budget > 0
                        && cfg.time_budget != Some(std::time::Duration::ZERO)
                })
        })
    }

    /// Runs the full pipeline on `f`.
    pub fn run(&self, f: &Function) -> Result<AllocatedFunction, PipelineError> {
        self.run_with(f, &mut AnalysisScratch::new())
    }

    /// [`AllocationPipeline::run`] with caller-provided analysis
    /// scratch: identical output, but a long-lived worker recycling
    /// one [`AnalysisScratch`] across functions skips the per-function
    /// (and per-round) allocation of the liveness transfer sets, the
    /// dataflow worklist, the pressure/interference sweep sets and the
    /// interval endpoint arrays. Every buffer is reset to the function
    /// at hand before use, so reuse across arbitrary functions — even
    /// after a caught panic — cannot change an output bit.
    pub fn run_with(
        &self,
        f: &Function,
        scratch: &mut AnalysisScratch,
    ) -> Result<AllocatedFunction, PipelineError> {
        // The root trace span: everything below (rounds, escalation,
        // final assembly) is its children; its self time is the
        // pipeline's own orchestration cost. One relaxed atomic load
        // when tracing is off — see [`crate::trace`].
        let _pipeline_span = crate::trace::span(crate::trace::Phase::Pipeline);
        let spec = AllocatorRegistry::spec(&self.allocator)
            .ok_or_else(|| PipelineError::UnknownAllocator(self.allocator.clone()))?;
        if spec.needs_intervals && self.kind != InstanceKind::LinearIntervals {
            return Err(PipelineError::NeedsIntervals(spec.name));
        }
        let allocator: Box<dyn Allocator> = match &self.portfolio {
            Some(cfg) if spec.name == "Portfolio" => Box::new(Portfolio::new(cfg.clone())?),
            _ => spec.build(),
        };
        let r = self
            .registers
            .unwrap_or_else(|| self.target.register_count());
        let force_full = self
            .full_reanalysis
            .unwrap_or_else(analysis::full_reanalysis_forced);

        let base = self.run_loop(f, scratch, allocator.as_ref(), spec, r, force_full, None)?;
        // The paper's spill-everywhere figure: the first base round's
        // cost on the original function. Saved before escalation can
        // replace the round history with the split function's.
        let first_round_cost = base.round_costs.first().copied().unwrap_or(0);

        // §4.3 residual-pressure escalation: a stalled base run gets
        // one restart from the ORIGINAL function with its over-pressure
        // ranges split and constants rematerialized. The escalated
        // result is kept only when it converges at no higher spill
        // cost, so escalation is monotone per function (and therefore
        // in every corpus aggregate).
        let (outcome, escalated, split_copies) = if !base.converged && self.escalation_enabled() {
            match self.escalate(f, scratch, allocator.as_ref(), spec, r, force_full, &base) {
                Some((esc, copies)) => (esc, true, copies),
                None => (base, false, 0),
            }
        } else {
            (base, false, 0)
        };

        let spilled = BitSet::from_iter_with_capacity(
            outcome.function.value_count as usize,
            outcome.spilled_values.iter().copied(),
        );
        Ok(AllocatedFunction {
            // On a non-converged exit the final rewrite appended reload
            // values that the last allocation round never saw; pad the
            // assignment so it covers every value of `function`, with
            // `None` for the values the pipeline could not register-
            // allocate.
            assignment: outcome
                .assignment
                .pad_to(outcome.function.value_count as usize),
            function: outcome.function,
            allocator: spec.name,
            registers: r,
            kind: self.kind,
            rounds: outcome.rounds,
            converged: outcome.converged,
            spill_cost: outcome.round_costs.iter().sum(),
            round_costs: outcome.round_costs,
            first_round_cost,
            spilled,
            stores: outcome.stores,
            loads: outcome.loads,
            remats: outcome.remats,
            saved_moves: outcome.saved_moves,
            verdict: outcome.verdict,
            max_live_before: outcome.max_live_before,
            max_live_after: outcome.max_live_after,
            escalated,
            split_copies,
        })
    }

    /// The allocate → rewrite → reanalyse loop, shared by the base run
    /// and the escalation tier. With `remat` set the loop prices
    /// constant-like values at their re-issue cost
    /// ([`spill_cost::spill_costs_with_remat`]) and rewrites their
    /// evictions as rematerializations instead of stores + reloads
    /// ([`lra_ir::remat::rewrite_spill_code_remat`]); the table is kept
    /// in lockstep with the fresh values every rewrite introduces.
    #[allow(clippy::too_many_arguments)] // internal plumbing behind run_with
    fn run_loop(
        &self,
        f: &Function,
        scratch: &mut AnalysisScratch,
        allocator: &dyn Allocator,
        spec: &'static AllocatorSpec,
        r: u32,
        force_full: bool,
        mut remat: Option<RematTable>,
    ) -> Result<LoopOutcome, PipelineError> {
        // The one analysis of the round: built once here, then updated
        // incrementally after each spill rewrite. Instance
        // construction, spill costs, the coalescing affinities and the
        // stall check below all borrow it — no second liveness run per
        // round anywhere.
        let mut func_analysis = {
            let _s = crate::trace::span(crate::trace::Phase::Analysis);
            FunctionAnalysis::compute_in(f, scratch)
        };
        let max_live_before = func_analysis.liveness.max_live;

        let mut func = f.clone();
        let mut round_costs: Vec<u64> = Vec::new();
        let mut spilled_values: Vec<usize> = Vec::new();
        let mut stores = 0usize;
        let mut loads = 0usize;
        let mut remats = 0usize;
        let mut saved_moves = 0u64;
        let mut converged = false;
        let mut rounds = 0u32;
        let mut prev_max_live = max_live_before;

        let (assignment, verdict) = loop {
            rounds += 1;
            let _round_span = crate::trace::span(crate::trace::Phase::Round);
            let costs = {
                let _s = crate::trace::span(crate::trace::Phase::SpillCosts);
                match &remat {
                    Some(table) => spill_cost::spill_costs_with_remat(
                        &func,
                        &func_analysis.liveness,
                        &func_analysis.loops,
                        &self.target,
                        table,
                    ),
                    None => spill_cost::spill_costs(
                        &func,
                        &func_analysis.liveness,
                        &func_analysis.loops,
                        &self.target,
                    ),
                }
            };
            let inst = {
                let _s = crate::trace::span(crate::trace::Phase::InstanceBuild);
                build_instance_from_costs_in(&func, &func_analysis, self.kind, scratch, costs)
            };
            if spec.needs_chordal && !inst.is_chordal() {
                return Err(PipelineError::NeedsChordal(spec.name));
            }
            let round = self.allocate_round(
                &inst,
                &func,
                &func_analysis,
                allocator,
                spec.needs_chordal,
                r,
            );
            saved_moves += round.saved_moves;

            if round.spilled.is_empty() {
                round_costs.push(round.cost);
                crate::trace::add_round(round.cost);
                converged = true;
                break (round.assignment, round.verdict);
            }

            let spill_set = BitSet::from_iter_with_capacity(
                func.value_count as usize,
                round.spilled.iter().copied(),
            );
            // With remat active the allocator's guidance vector and
            // the accounted round cost deliberately differ: guidance
            // keeps reloads at full price so the allocator is not
            // steered into futile reload evictions, while the
            // accounting charges what the remat-aware rewrite actually
            // inserts (re-issued loads and materializations instead of
            // store-plus-reload round trips) — see
            // [`spill_cost::spill_insert_costs`]. Copies whose source
            // just gained a slot are upgraded first so this round's
            // evictions of them are priced (and rewritten) as slot
            // re-loads.
            let charged = match remat.as_mut() {
                Some(table) => {
                    table.upgrade_slot_copies(&func, &spill_set);
                    let ins = spill_cost::spill_insert_costs(
                        &func,
                        &func_analysis.liveness,
                        &func_analysis.loops,
                        &self.target,
                        table,
                    );
                    round
                        .spilled
                        .iter()
                        .map(|&v| ins.get(v).copied().unwrap_or(0))
                        .sum()
                }
                None => round.cost,
            };
            round_costs.push(charged);
            crate::trace::add_round(charged);

            // Rewrite the function so the spilled values live in memory
            // (or, for remat-classed values, are re-issued at each use).
            // All three rewrites draw their block-edit buffers from the
            // shared scratch, so per-round rewriting allocates from
            // recycled storage.
            let rewrite = {
                let _s = crate::trace::span(crate::trace::Phase::Rewrite);
                match remat.as_mut() {
                    Some(table) => lra_ir::remat::rewrite_spill_code_remat_in(
                        &func,
                        &spill_set,
                        table,
                        self.optimized_spill,
                        scratch,
                    ),
                    None if self.optimized_spill => {
                        spill_code::rewrite_spill_code_optimized_in(&func, &spill_set, scratch)
                    }
                    None => spill_code::rewrite_spill_code_in(&func, &spill_set, scratch),
                }
            };
            stores += rewrite.stats.stores;
            loads += rewrite.stats.loads;
            remats += rewrite.stats.remats;
            spilled_values.extend(round.spilled.iter().copied());
            func = rewrite.function;
            func_analysis = {
                let _s = crate::trace::span(crate::trace::Phase::Reanalyse);
                if force_full {
                    FunctionAnalysis::compute_in(&func, scratch)
                } else {
                    func_analysis.after_spill_in(&func, &rewrite.delta, scratch)
                }
            };

            // Stop when out of budget, or when spilling stopped lowering
            // MaxLive: the binding pressure point is then made of
            // reloads/φ-edge copies that re-spilling only recreates
            // (the §4.3 residual-pressure limit). Either way the last
            // round's (feasible) partial assignment is reported and
            // `converged` stays false — the flag is set exclusively by
            // a round that spills nothing, so a budget or stall exit
            // can never claim convergence. (Audited: relaxing the
            // stall cutoff to "only while MaxLive > R" lets allocators
            // that spill even at fitting pressure — the layered family
            // can leave values uncovered when MaxLive ≤ R — churn all
            // the way to `max_rounds`, tripling wall-clock on the
            // lao-kernels corpus for zero extra convergences, so the
            // cutoff is deliberately R-independent.) The escalated
            // loop is the one exception: it exists precisely to chase
            // the last few units of residual pressure, it only ever
            // runs on the stalled tail, and its rounds are bounded by
            // the same budget — so while MaxLive is still above R it
            // keeps spilling through flat rounds and applies the
            // churn cutoff only once the pressure fits.
            let max_live = func_analysis.liveness.max_live;
            let stuck = max_live >= prev_max_live && (remat.is_none() || max_live <= r as usize);
            prev_max_live = max_live;
            if rounds >= self.max_rounds || stuck {
                break (round.assignment, round.verdict);
            }
        };

        // `func_analysis` always describes `func` as it stands: on a
        // non-converged exit it was just updated after the final
        // rewrite, and on a converged exit `func` is unchanged since
        // it was analysed.
        let max_live_after = func_analysis.liveness.max_live;
        Ok(LoopOutcome {
            function: func,
            rounds,
            converged,
            round_costs,
            spilled_values,
            stores,
            loads,
            remats,
            saved_moves,
            assignment,
            verdict,
            max_live_before,
            max_live_after,
        })
    }

    /// The escalation tier: split the original function's over-pressure
    /// live ranges ([`split::split_pressure_ranges`]), classify
    /// rematerializable values across the split
    /// ([`RematTable::map_split`]), and re-run the whole loop on the
    /// transformed function. Returns the escalated outcome and the
    /// number of split copies when it converged at no higher spill cost
    /// than `base`; `None` (caller keeps `base`) when nothing was
    /// splittable, the escalated loop errored (e.g. the split cost a
    /// non-SSA function its chordality) or the result was worse.
    #[allow(clippy::too_many_arguments)] // internal plumbing behind run_with
    fn escalate(
        &self,
        f: &Function,
        scratch: &mut AnalysisScratch,
        allocator: &dyn Allocator,
        spec: &'static AllocatorSpec,
        r: u32,
        force_full: bool,
        base: &LoopOutcome,
    ) -> Option<(LoopOutcome, usize)> {
        let prep = {
            let _s = crate::trace::span(crate::trace::Phase::EscalatePrep);
            let live = liveness::analyze_in(f, scratch);
            split::split_pressure_ranges_in(f, &live, r as usize, scratch).map(|split| {
                let table = RematTable::compute(f).map_split(&split.origin);
                (split, table)
            })
        };
        let (split, table) = prep?;
        let mut esc = self
            .run_loop(
                &split.function,
                scratch,
                allocator,
                spec,
                r,
                force_full,
                Some(table),
            )
            .ok()?;
        if !esc.converged || esc.spill_cost() > base.spill_cost() {
            return None;
        }
        // The report should describe the whole pipeline run: rounds
        // count the total allocation effort (base + escalated) and
        // MaxLive-before is the original function's, not the split's.
        esc.rounds += base.rounds;
        esc.max_live_before = base.max_live_before;
        Some((esc, split.copies))
    }

    /// One allocation round: allocate on `inst` (or its coalesced
    /// quotient), and translate the result back to value space.
    fn allocate_round(
        &self,
        inst: &Instance,
        func: &Function,
        func_analysis: &FunctionAnalysis,
        allocator: &dyn Allocator,
        needs_chordal: bool,
        r: u32,
    ) -> RoundOutcome {
        let n = inst.vertex_count();
        let quotient = match self.coalesce {
            CoalesceMode::Off => None,
            mode => {
                let aff = copy_affinities_with(func, &func_analysis.loops);
                if aff.is_empty() {
                    None
                } else {
                    let co = match mode {
                        CoalesceMode::Aggressive => coalesce::aggressive_coalesce(inst, &aff),
                        _ => coalesce::conservative_coalesce(inst, &aff, r),
                    };
                    // A layered allocator cannot run on a quotient that
                    // lost chordality; skip coalescing for this round.
                    if needs_chordal && !co.instance.is_chordal() {
                        None
                    } else {
                        Some(co)
                    }
                }
            }
        };

        match quotient {
            None => {
                let alloc = {
                    let _s = crate::trace::span(crate::trace::Phase::Allocate);
                    allocator.allocate(inst, r)
                };
                let verdict = {
                    let _s = crate::trace::span(crate::trace::Phase::Verify);
                    verify::check(inst, &alloc, r)
                };
                let assignment =
                    assignment_from(&verdict, n, |v| alloc.allocated.contains(v).then_some(v));
                RoundOutcome {
                    cost: alloc.spill_cost,
                    spilled: alloc.spilled_set(inst).iter().collect(),
                    assignment,
                    verdict,
                    saved_moves: 0,
                }
            }
            Some(co) => {
                let alloc = {
                    let _s = crate::trace::span(crate::trace::Phase::Allocate);
                    allocator.allocate(&co.instance, r)
                };
                let verdict = {
                    let _s = crate::trace::span(crate::trace::Phase::Verify);
                    verify::check(&co.instance, &alloc, r)
                };
                let assignment = assignment_from(&verdict, n, |v| {
                    let class = co.class_of[v];
                    alloc.allocated.contains(class).then_some(class)
                });
                let spilled = (0..n)
                    .filter(|&v| !alloc.allocated.contains(co.class_of[v]))
                    .collect();
                RoundOutcome {
                    cost: alloc.spill_cost,
                    spilled,
                    assignment,
                    verdict,
                    saved_moves: co.saved_moves,
                }
            }
        }
    }
}

/// Expands a feasibility witness into a per-value [`Assignment`]:
/// `slot_of(v)` names the witness slot (the vertex, or its coalesced
/// class) whose colour `v` receives, or `None` for spilled values.
fn assignment_from(
    verdict: &Feasibility,
    n: usize,
    slot_of: impl Fn(usize) -> Option<usize>,
) -> Assignment {
    match verdict {
        Feasibility::Feasible(colors) => {
            Assignment::from_registers((0..n).map(|v| slot_of(v).map(|s| colors[s])).collect())
        }
        _ => Assignment::from_registers(vec![None; n]),
    }
}

struct RoundOutcome {
    cost: u64,
    spilled: Vec<usize>,
    assignment: Assignment,
    verdict: Feasibility,
    saved_moves: u64,
}

/// Everything one allocate → rewrite loop produces; the base run and
/// the escalated run each yield one and [`AllocationPipeline::run_with`]
/// picks which becomes the [`AllocatedFunction`].
struct LoopOutcome {
    function: Function,
    rounds: u32,
    converged: bool,
    round_costs: Vec<u64>,
    spilled_values: Vec<usize>,
    stores: usize,
    loads: usize,
    remats: usize,
    saved_moves: u64,
    assignment: Assignment,
    verdict: Feasibility,
    max_live_before: usize,
    max_live_after: usize,
}

impl LoopOutcome {
    fn spill_cost(&self) -> u64 {
        self.round_costs.iter().sum()
    }
}

/// The report returned by [`AllocationPipeline::run`].
#[derive(Clone, Debug)]
pub struct AllocatedFunction {
    /// The final function, with all inserted spill code.
    pub function: Function,
    /// Registry name of the allocator that ran.
    pub allocator: &'static str,
    /// Register count the pipeline targeted.
    pub registers: u32,
    /// Instance view used for every analysis round.
    pub kind: InstanceKind,
    /// Allocation rounds executed (1 = no residual-pressure iteration
    /// was needed beyond the initial allocation).
    pub rounds: u32,
    /// `true` when the last round spilled nothing: every remaining
    /// value (including all reloads) holds a register and
    /// [`AllocatedFunction::assignment`] is total on live values.
    pub converged: bool,
    /// Total spill cost over all rounds — the allocation cost.
    pub spill_cost: u64,
    /// Per-round spill costs of the accepted run (the escalated loop's
    /// rounds when [`AllocatedFunction::escalated`] is set; see
    /// [`AllocatedFunction::first_round_cost`] for the paper's
    /// escalation-independent figure). Always sums to
    /// [`AllocatedFunction::spill_cost`].
    pub round_costs: Vec<u64>,
    /// The first **base** round's spill cost: the spill-everywhere
    /// allocation cost on the original function, the quantity every
    /// figure of the paper reports. Unlike `round_costs[0]` this is
    /// never displaced by an accepted escalation.
    pub first_round_cost: u64,
    /// Every value the pipeline spilled, in the final function's value
    /// index space.
    pub spilled: BitSet,
    /// Spill stores inserted across all rounds.
    pub stores: usize,
    /// Spill reloads inserted across all rounds.
    pub loads: usize,
    /// Rematerializations inserted instead of reloads (always 0 unless
    /// the run escalated: only the escalation tier classifies values as
    /// rematerializable).
    pub remats: usize,
    /// Move cost removed by coalescing (0 when coalescing is off).
    pub saved_moves: u64,
    /// Concrete register per value of [`AllocatedFunction::function`]
    /// (`None` for spilled values). When `converged` is `false` the
    /// entries for the final round's spilled values and for the reloads
    /// inserted by the final rewrite are `None`: those are exactly the
    /// values the pipeline could not fit into `registers`.
    pub assignment: Assignment,
    /// Verification verdict for the final round's allocation.
    pub verdict: Feasibility,
    /// `MaxLive` of the input function.
    pub max_live_before: usize,
    /// `MaxLive` of the final rewritten function.
    pub max_live_after: usize,
    /// `true` when the run stalled, entered the split + remat
    /// escalation tier, and the escalated result was accepted (it
    /// converged at no higher spill cost than the base run). When set,
    /// [`AllocatedFunction::function`] descends from the
    /// pressure-split function and `rounds` counts both loops.
    pub escalated: bool,
    /// Copies inserted by [`split::split_pressure_ranges`] on the
    /// accepted escalated run (0 when `escalated` is `false`).
    pub split_copies: usize,
}

impl AllocatedFunction {
    /// The first round's spill cost: the spill-everywhere allocation
    /// cost on the original function, the quantity every figure of the
    /// paper reports ([`AllocatedFunction::first_round_cost`]).
    pub fn first_round_spill_cost(&self) -> u64 {
        self.first_round_cost
    }

    /// Number of values spilled across all rounds.
    pub fn spilled_count(&self) -> usize {
        self.spilled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::build_instance;
    use lra_ir::builder::FunctionBuilder;
    use lra_ir::genprog::{random_ssa_function, SsaConfig};
    use lra_ir::liveness;
    use lra_targets::TargetKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_function(seed: u64) -> Function {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = SsaConfig {
            target_instrs: 60,
            liveness_window: 10,
            ..SsaConfig::default()
        };
        random_ssa_function(&mut rng, &cfg, format!("f{seed}"))
    }

    #[test]
    fn pipeline_converges_and_verifies_on_ssa_functions() {
        let t = Target::new(TargetKind::St231);
        for seed in 0..4u64 {
            let f = small_function(seed);
            let report = AllocationPipeline::new(t)
                .allocator("BFPL")
                .registers(4)
                .run(&f)
                .expect("BFPL runs on SSA");
            assert!(report.verdict.is_feasible(), "seed {seed}");
            assert!(report.rounds >= 1);
            if report.converged {
                // A converged run assigns a register to every
                // interfering pair distinctly.
                let inst = build_instance(&report.function, &t, InstanceKind::PreciseGraph);
                for (u, v) in inst.graph().edges() {
                    if let (Some(a), Some(b)) = (
                        report.assignment.register_of(u.index()),
                        report.assignment.register_of(v.index()),
                    ) {
                        assert_ne!(a, b, "seed {seed}: neighbours share a register");
                    }
                }
            }
        }
    }

    #[test]
    fn spilling_rounds_reduce_pressure() {
        let t = Target::new(TargetKind::St231);
        let f = small_function(11);
        let before = liveness::analyze(&f).max_live;
        let report = AllocationPipeline::new(t).registers(3).run(&f).unwrap();
        if report.stores > 0 {
            assert!(report.max_live_after < before.max(4));
        }
        assert_eq!(report.max_live_before, before);
        assert_eq!(report.spill_cost, report.round_costs.iter().sum::<u64>());
    }

    #[test]
    fn unknown_allocator_is_an_error() {
        let t = Target::new(TargetKind::St231);
        let f = small_function(1);
        let err = AllocationPipeline::new(t)
            .allocator("XXL")
            .run(&f)
            .unwrap_err();
        assert!(matches!(err, PipelineError::UnknownAllocator(_)));
        assert!(
            err.to_string().contains("BFPL"),
            "error lists registered names"
        );
    }

    #[test]
    fn linear_scans_demand_the_interval_view() {
        let t = Target::new(TargetKind::St231);
        let f = small_function(2);
        let err = AllocationPipeline::new(t)
            .allocator("DLS")
            .run(&f)
            .unwrap_err();
        assert_eq!(err, PipelineError::NeedsIntervals("DLS"));
        let ok = AllocationPipeline::new(t)
            .allocator("DLS")
            .instance_kind(InstanceKind::LinearIntervals)
            .registers(6)
            .run(&f);
        assert!(ok.is_ok());
    }

    #[test]
    fn every_graph_allocator_runs_through_the_pipeline() {
        let t = Target::new(TargetKind::St231);
        let f = small_function(3);
        for spec in AllocatorRegistry::specs() {
            let report = AllocationPipeline::new(t)
                .allocator(spec.name)
                .instance_kind(spec.default_kind())
                .registers(4)
                .max_rounds(4)
                .run(&f)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(report.verdict.is_feasible(), "{} infeasible", spec.name);
        }
    }

    #[test]
    fn first_round_cost_matches_direct_allocation() {
        use crate::layered::Layered;
        let t = Target::new(TargetKind::St231);
        let f = small_function(5);
        let inst = build_instance(&f, &t, InstanceKind::PreciseGraph);
        let direct = Layered::bfpl().allocate(&inst, 3).spill_cost;
        let report = AllocationPipeline::new(t).registers(3).run(&f).unwrap();
        assert_eq!(report.first_round_spill_cost(), direct);
    }

    #[test]
    fn coalescing_reports_saved_moves() {
        let t = Target::new(TargetKind::St231);
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let cfg = SsaConfig {
            target_instrs: 80,
            copy_percent: 15,
            branch_percent: 25,
            ..SsaConfig::default()
        };
        let f = random_ssa_function(&mut rng, &cfg, "with_copies");
        let plain = AllocationPipeline::new(t).registers(6).run(&f).unwrap();
        let coalesced = AllocationPipeline::new(t)
            .registers(6)
            .coalescing(CoalesceMode::Conservative)
            .run(&f)
            .unwrap();
        assert_eq!(plain.saved_moves, 0);
        assert!(coalesced.verdict.is_feasible());
    }

    #[test]
    fn max_rounds_exit_with_residual_pressure_is_not_converged() {
        // One round is not enough for the wide pressure point below:
        // the pipeline must exit at the round budget with MaxLive
        // still above R and must NOT claim convergence — the flag
        // would otherwise promise a total register assignment that
        // does not exist.
        let mut b = FunctionBuilder::new("wide");
        let e = b.entry_block();
        let vs: Vec<_> = (0..7).map(|_| b.op(e, &[])).collect();
        b.op(e, &vs);
        let f = b.finish();
        let report = AllocationPipeline::new(Target::new(TargetKind::St231))
            .registers(2)
            .max_rounds(1)
            .run(&f)
            .unwrap();
        assert_eq!(report.rounds, 1, "the budget caps the iteration");
        assert!(!report.converged, "residual pressure must not converge");
        assert!(
            report.max_live_after > 2,
            "pressure stayed above R ({})",
            report.max_live_after
        );
        // The padded assignment leaves exactly the unallocatable
        // values register-less.
        assert!((0..report.function.value_count as usize)
            .any(|v| report.assignment.register_of(v).is_none()));
    }

    #[test]
    fn converged_flag_matches_a_total_assignment() {
        // The audited contract behind `converged`: it is set only by a
        // round that spilled nothing, in which case every value of the
        // final function holds a register; any stall/budget exit
        // leaves it false with a partial assignment. Checked across a
        // spread of register pressures.
        let t = Target::new(TargetKind::St231);
        for seed in 0..4u64 {
            for r in [3u32, 6, 12] {
                let f = small_function(seed);
                let report = AllocationPipeline::new(t).registers(r).run(&f).unwrap();
                let total = (0..report.function.value_count as usize)
                    .all(|v| report.assignment.register_of(v).is_some());
                assert_eq!(
                    report.converged, total,
                    "seed {seed} R={r}: converged must mean a total assignment"
                );
            }
        }
    }

    #[test]
    fn escalated_runs_converge_at_no_higher_cost() {
        // The acceptance contract of the split + remat tier: a report
        // with `escalated` set converged to a total assignment, split
        // at least one range, kept the paper's first-round metric from
        // the base run, and spent no more accounted spill cost than
        // the stalled base run it replaced.
        let t = Target::new(TargetKind::St231);
        let mut escalations = 0;
        for seed in 0..24u64 {
            let f = small_function(seed);
            let with = AllocationPipeline::new(t)
                .registers(3)
                .escalation(true)
                .run(&f)
                .unwrap();
            let without = AllocationPipeline::new(t)
                .registers(3)
                .escalation(false)
                .run(&f)
                .unwrap();
            assert!(!without.escalated, "seed {seed}: off-switch ignored");
            assert_eq!(without.split_copies, 0, "seed {seed}");
            if !with.escalated {
                continue;
            }
            escalations += 1;
            assert!(with.converged, "seed {seed}: accepted but not converged");
            assert!(
                with.split_copies > 0,
                "seed {seed}: escalated without a split"
            );
            assert!(with.verdict.is_feasible(), "seed {seed}");
            assert!(
                with.spill_cost <= without.spill_cost,
                "seed {seed}: escalation accepted a costlier run ({} > {})",
                with.spill_cost,
                without.spill_cost
            );
            assert_eq!(
                with.first_round_spill_cost(),
                without.first_round_spill_cost(),
                "seed {seed}: the paper's spill-everywhere metric is the base run's"
            );
            let total = (0..with.function.value_count as usize)
                .all(|v| with.assignment.register_of(v).is_some());
            assert!(total, "seed {seed}: escalated assignment must be total");
        }
        assert!(escalations > 0, "no seed exercised the escalation tier");
    }

    #[test]
    fn escalation_defaults_follow_the_allocator_and_the_budget() {
        let t = Target::new(TargetKind::St231);
        let p = |a: &str| AllocationPipeline::new(t).allocator(a);
        assert!(!p("LH").escalation_enabled(), "baselines stay unescalated");
        assert!(p("LH").escalation(true).escalation_enabled());
        assert!(p("Portfolio").escalation_enabled(), "Portfolio defaults on");
        assert!(!p("Portfolio").escalation(false).escalation_enabled());
        let with_cfg = |cfg: crate::portfolio::PortfolioConfig| {
            AllocationPipeline::new(t)
                .portfolio(cfg)
                .escalation_enabled()
        };
        use crate::portfolio::PortfolioConfig;
        assert!(with_cfg(PortfolioConfig::default()));
        assert!(
            !with_cfg(PortfolioConfig::default().split_remat(false)),
            "the PortfolioConfig knob turns the tier off"
        );
        assert!(
            !with_cfg(PortfolioConfig::default().node_budget(0)),
            "a spent escalation budget keeps the cheap-tier degradation contract"
        );
        assert!(
            !with_cfg(PortfolioConfig::default().time_budget(Some(std::time::Duration::ZERO))),
            "an expired time budget likewise degrades to the cheap tier"
        );
    }

    #[test]
    fn time_budget_flows_into_the_portfolio_config() {
        use crate::portfolio::PortfolioConfig;
        let t = Target::new(TargetKind::St231);
        // An expired budget degrades the portfolio to its cheap tier,
        // which escalation_enabled() observes.
        let expired = AllocationPipeline::new(t)
            .allocator("Portfolio")
            .time_budget(Some(std::time::Duration::ZERO));
        assert!(!expired.escalation_enabled());
        // A live budget keeps escalation available.
        let live = AllocationPipeline::new(t)
            .portfolio(PortfolioConfig::default())
            .time_budget(Some(std::time::Duration::from_secs(5)));
        assert!(live.escalation_enabled());
        // On a directly-selected allocator the call is a no-op: no
        // portfolio config materialises.
        let lh = AllocationPipeline::new(t)
            .allocator("LH")
            .time_budget(Some(std::time::Duration::ZERO));
        assert!(lh.portfolio.is_none());
        // Clearing the budget restores the default behaviour.
        let cleared = expired.time_budget(None);
        assert!(cleared.escalation_enabled());
    }

    #[test]
    fn degraded_pipelines_pin_the_cheap_tier() {
        use crate::portfolio::PortfolioConfig;
        let t = Target::new(TargetKind::St231);
        let base = AllocationPipeline::new(t)
            .portfolio(PortfolioConfig::default().node_budget(50_000))
            .escalation(true);
        assert!(base.escalation_enabled());
        let shed = base.degraded();
        assert!(!shed.escalation_enabled(), "degraded runs never escalate");
        assert_eq!(
            shed.portfolio.as_ref().map(|cfg| cfg.node_budget),
            Some(0),
            "degraded portfolios run cheap-tier-only"
        );
        // The original pipeline is untouched (degraded() clones).
        assert!(base.escalation_enabled());
        // A degraded run still completes and verifies.
        let f = small_function(7);
        let report = shed.registers(3).run(&f).expect("cheap tier still runs");
        assert!(report.verdict.is_feasible());
        assert!(!report.escalated);
        // Non-portfolio pipelines degrade to escalation-off only.
        let lh = AllocationPipeline::new(t).allocator("LH").degraded();
        assert!(lh.portfolio.is_none());
        assert!(!lh.escalation_enabled());
    }

    #[test]
    fn single_instruction_pressure_cannot_converge() {
        // Seven values all consumed by one instruction: with R = 2 the
        // reloads themselves exceed R at the use point, so MaxLive
        // stops dropping and the pipeline must report converged ==
        // false after the no-progress cutoff — well before max_rounds.
        let mut b = FunctionBuilder::new("wide");
        let e = b.entry_block();
        let vs: Vec<_> = (0..7).map(|_| b.op(e, &[])).collect();
        b.op(e, &vs);
        let f = b.finish();
        let report = AllocationPipeline::new(Target::new(TargetKind::St231))
            .registers(2)
            .max_rounds(8)
            .run(&f)
            .unwrap();
        assert!(!report.converged);
        assert!(report.rounds < 8, "no-progress cutoff should fire early");
        assert!(report.max_live_after > 2);
    }
}
