//! The layered-optimal allocator for chordal (SSA) instances.
//!
//! This is the paper's central contribution (Algorithm 2 plus the two
//! improvements of §4.1 and §4.2). Instead of incrementally *spilling*
//! variables, the allocator incrementally *allocates* layers: each layer
//! is a **maximum weighted stable set** of the not-yet-allocated
//! variables, computed exactly by Frank's algorithm on the chordal
//! graph. A stable set raises the register pressure by at most one
//! everywhere, so `R` layers fill `R` registers and the union is
//! guaranteed `R`-colourable.
//!
//! Variants (paper names):
//!
//! * **NL** — plain Algorithm 2.
//! * **BL** — biased weights `w'(v) = w(v)·|V| + deg(v)` (§4.1): among
//!   equal-weight stable sets, prefer the one removing the most
//!   interferences.
//! * **FPL** — after the `R` layers, keep allocating single variables
//!   whose maximal cliques still have fewer than `R` allocated members,
//!   to a fixed point (§4.2, Algorithms 3–4).
//! * **BFPL** — bias + fixed point.
//!
//! Complexity: `O(R(|V| + |E|))` — each layer is one linear-time Frank
//! pass; the fixed-point bookkeeping touches each clique membership a
//! constant number of times per allocated vertex.

use crate::problem::{Allocation, Allocator, Instance};
use lra_graph::{stable, BitSet, Cost, Vertex, WeightedGraph};

/// Configuration of the layered allocator family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layered {
    /// Apply the §4.1 weight bias (`BL`/`BFPL`).
    pub bias: bool,
    /// Iterate to a fixed point after the `R` layers (`FPL`/`BFPL`).
    pub fixed_point: bool,
    /// Registers allocated per layer. The paper evaluates `step = 1`
    /// (one Frank stable set per layer) and notes that `step ≥ 2` can
    /// be solved by dynamic programming; we implement that with the
    /// clique-tree DP, falling back to single-register layers when a
    /// clique is too large for the DP table.
    pub step: u32,
}

impl Layered {
    /// `NL`: naive layered allocation (Algorithm 2 as published).
    pub fn nl() -> Self {
        Layered {
            bias: false,
            fixed_point: false,
            step: 1,
        }
    }

    /// `BL`: layered with biased weights.
    pub fn bl() -> Self {
        Layered {
            bias: true,
            fixed_point: false,
            step: 1,
        }
    }

    /// `FPL`: layered iterated to a fixed point.
    pub fn fpl() -> Self {
        Layered {
            bias: false,
            fixed_point: true,
            step: 1,
        }
    }

    /// `BFPL`: biased and iterated to a fixed point.
    pub fn bfpl() -> Self {
        Layered {
            bias: true,
            fixed_point: true,
            step: 1,
        }
    }

    /// Uses `step` registers per layer (stepwise-optimal allocation by
    /// dynamic programming; §2.2's `O(Ω^step · n)` trade-off).
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn with_step(mut self, step: u32) -> Self {
        assert!(step >= 1, "step must be at least 1");
        self.step = step;
        self
    }
}

/// Computes the §4.1 biased weights: `w'(v) = w(v)·|V| + deg(v)`.
///
/// The bias preserves the strict weight order and breaks ties towards
/// vertices with more neighbours, whose allocation removes more
/// interferences from the residual problem.
pub fn biased_weights(wg: &WeightedGraph) -> Vec<Cost> {
    let n = wg.vertex_count() as Cost;
    (0..wg.vertex_count())
        .map(|v| {
            wg.weight(v)
                .saturating_mul(n)
                .saturating_add(wg.graph().degree(v) as Cost)
        })
        .collect()
}

impl Allocator for Layered {
    fn name(&self) -> &'static str {
        match (self.bias, self.fixed_point) {
            (false, false) => "NL",
            (true, false) => "BL",
            (false, true) => "FPL",
            (true, true) => "BFPL",
        }
    }

    /// Runs layered allocation.
    ///
    /// # Panics
    ///
    /// Panics if `instance` is not chordal; use
    /// [`crate::cluster::LayeredHeuristic`] (`LH`) for general graphs.
    fn allocate(&self, instance: &Instance, r: u32) -> Allocation {
        let order = instance
            .peo()
            .expect("layered-optimal allocation requires a chordal instance");
        let wg = instance.weighted_graph();
        let n = wg.vertex_count();

        // Selection weights (possibly biased); reported costs always use
        // the raw weights via `allocation_from_set`.
        let selection = if self.bias {
            WeightedGraph::new(wg.graph().clone(), biased_weights(wg))
        } else {
            wg.clone()
        };

        let mut candidates = BitSet::full(n);
        let mut allocated = BitSet::new(n);

        // Algorithm 2: layers of stepwise-optimal allocations covering
        // `r` registers in total. With step = 1 each layer is one
        // maximum weighted stable set (Frank); with step ≥ 2 each layer
        // is an optimal `step`-register allocation by clique-tree DP.
        let mut used = 0u32;
        while !candidates.is_empty() && used < r {
            let s = self.step.min(r - used);
            let (layer, consumed): (Vec<usize>, u32) = if s == 1 {
                let set =
                    stable::max_weight_stable_set_restricted(&selection, order, Some(&candidates));
                (set.vertices.iter().map(|v| v.index()).collect(), 1)
            } else {
                step_layer(&selection, &candidates, s)
            };
            if layer.is_empty() {
                break; // only zero-weight candidates remain
            }
            for &v in &layer {
                allocated.insert(v);
                candidates.remove(v);
            }
            used += consumed;
        }

        if self.fixed_point && r > 0 {
            fixed_point_extension(
                instance,
                &selection,
                order,
                &mut allocated,
                &mut candidates,
                r,
            );
        }

        instance.allocation_from_set(allocated)
    }
}

/// One `step`-register layer: the optimal `step`-colourable subset of
/// the candidate-induced subgraph, by clique-tree DP. Falls back to a
/// single Frank stable set when the DP bails out (oversized clique) —
/// in that case only **one** register of the budget is consumed.
///
/// Returns the layer and the number of registers it fills.
fn step_layer(selection: &WeightedGraph, candidates: &BitSet, step: u32) -> (Vec<usize>, u32) {
    let (sub, old_of_new) = selection.graph().induced_subgraph(candidates);
    let weights: Vec<Cost> = old_of_new.iter().map(|&v| selection.weight(v)).collect();
    // Skip zero-weight vertices from layers for parity with Frank.
    let sub_inst = crate::problem::Instance::from_weighted_graph(WeightedGraph::new(sub, weights));
    match crate::optimal::chordal_dp::solve(&sub_inst, step) {
        Some(a) => {
            let layer = a
                .allocated
                .iter()
                .filter(|&v| sub_inst.weighted_graph().weight(v) > 0)
                .map(|v| old_of_new[v])
                .collect();
            (layer, step)
        }
        None => {
            let order = sub_inst
                .peo()
                .expect("induced subgraph of chordal is chordal");
            let layer = stable::max_weight_stable_set(sub_inst.weighted_graph(), order)
                .vertices
                .iter()
                .map(|v| old_of_new[v.index()])
                .collect();
            (layer, 1)
        }
    }
}

/// Algorithms 3–4: keep allocating while some variable's maximal
/// cliques all have fewer than `r` allocated members.
fn fixed_point_extension(
    instance: &Instance,
    selection: &WeightedGraph,
    order: &[Vertex],
    allocated: &mut BitSet,
    candidates: &mut BitSet,
    r: u32,
) {
    let cliques = instance
        .maximal_cliques()
        .expect("chordal instance has maximal cliques");
    let n = instance.vertex_count();

    // vertex -> cliques containing it.
    let mut cliques_of: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (ci, clique) in cliques.iter().enumerate() {
        for v in clique {
            cliques_of[v.index()].push(ci as u32);
        }
    }
    let mut allocated_per_clique = vec![0u32; cliques.len()];
    let mut clique_full = vec![false; cliques.len()];

    // Algorithm 4 (UPDATE) for a batch of freshly allocated vertices.
    let update = |fresh: &[Vertex],
                  allocated_per_clique: &mut [u32],
                  clique_full: &mut [bool],
                  candidates: &mut BitSet| {
        for v in fresh {
            for &ci in &cliques_of[v.index()] {
                let ci = ci as usize;
                if clique_full[ci] {
                    continue;
                }
                allocated_per_clique[ci] += 1;
                if allocated_per_clique[ci] >= r {
                    clique_full[ci] = true;
                    for u in &cliques[ci] {
                        candidates.remove(u.index());
                    }
                }
            }
        }
    };

    // Initial update with everything allocated by the R layers.
    let initial: Vec<Vertex> = allocated.iter().map(Vertex::new).collect();
    update(
        &initial,
        &mut allocated_per_clique,
        &mut clique_full,
        candidates,
    );

    // Iterate to the fixed point.
    while !candidates.is_empty() {
        let layer = stable::max_weight_stable_set_restricted(selection, order, Some(candidates));
        if layer.vertices.is_empty() {
            break;
        }
        for v in &layer.vertices {
            allocated.insert(v.index());
            candidates.remove(v.index());
        }
        update(
            &layer.vertices,
            &mut allocated_per_clique,
            &mut clique_full,
            candidates,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use lra_graph::{Graph, GraphBuilder};

    /// Figure 5(a)/6 of the paper: a..g = 0..6 with weights
    /// 1,2,2,5,2,6,1 (edges reconstructed from the Figure 5(b) trace).
    fn figure6() -> Instance {
        let mut b = GraphBuilder::new(7);
        for &(u, v) in &[
            (0, 3),
            (0, 5),
            (3, 5),
            (3, 4),
            (4, 5),
            (2, 3),
            (2, 4),
            (1, 2),
            (1, 6),
            (2, 6),
        ] {
            b.add_edge(u, v);
        }
        Instance::from_weighted_graph(WeightedGraph::new(b.build(), vec![1, 2, 2, 5, 2, 6, 1]))
    }

    /// Figure 7(a): a..f = 0..5. Weights chosen to satisfy the paper's
    /// narrative (the report's figure labels are ambiguous): NL with
    /// R=2 allocates exactly {a, b, d}; f is blocked by the full clique
    /// {a, d, f}; FPL can still add e (or c).
    fn figure7() -> Instance {
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[
            (0, 3),
            (0, 5),
            (3, 5),
            (3, 4),
            (2, 3),
            (2, 4),
            (4, 5),
            (1, 2),
            (1, 4),
        ] {
            b.add_edge(u, v);
        }
        Instance::from_weighted_graph(WeightedGraph::new(b.build(), vec![4, 5, 1, 3, 2, 1]))
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Layered::nl().name(), "NL");
        assert_eq!(Layered::bl().name(), "BL");
        assert_eq!(Layered::fpl().name(), "FPL");
        assert_eq!(Layered::bfpl().name(), "BFPL");
    }

    #[test]
    fn bias_preserves_weight_order() {
        let inst = figure6();
        let biased = biased_weights(inst.weighted_graph());
        let raw = inst.weighted_graph().weights();
        for u in 0..7 {
            for v in 0..7 {
                if raw[u] < raw[v] {
                    assert!(biased[u] < biased[v]);
                }
            }
        }
    }

    /// Figure 6: with R=2 and step 1, the unbiased allocator may pick
    /// the stable set {b, f}; the bias makes it pick {c, f} (c has more
    /// neighbours), which lets the second layer allocate {b, d} and
    /// saves one cost unit overall.
    #[test]
    fn bias_fig6_improves_allocation() {
        let inst = figure6();
        let nl = Layered::nl().allocate(&inst, 2);
        let bl = Layered::bl().allocate(&inst, 2);
        // Both are feasible.
        assert!(verify::check(&inst, &nl, 2).is_feasible());
        assert!(verify::check(&inst, &bl, 2).is_feasible());
        // BL spills {a, e, g} = 4; NL at best spills {a, c, e} = 5.
        assert_eq!(bl.spill_cost, 4);
        assert!(
            bl.allocated.contains(2) && bl.allocated.contains(5),
            "BL picks c and f first"
        );
        assert!(
            bl.allocated.contains(1) && bl.allocated.contains(3),
            "then b and d"
        );
        assert!(nl.spill_cost >= bl.spill_cost);
    }

    /// Figure 7: the R layers allocate {a, b, d}; the fixed point can
    /// still add e (or c) because no maximal clique containing it has 2
    /// allocated vertices.
    #[test]
    fn fixed_point_fig7_adds_vertex() {
        let inst = figure7();
        let nl = Layered::nl().allocate(&inst, 2);
        assert_eq!(
            nl.allocated.iter().collect::<Vec<_>>(),
            vec![0, 1, 3],
            "NL allocates a, b, d"
        );
        let fpl = Layered::fpl().allocate(&inst, 2);
        assert!(
            fpl.allocated.len() > nl.allocated.len(),
            "FPL adds a vertex"
        );
        assert!(verify::check(&inst, &fpl, 2).is_feasible());
        // f (vertex 5) can never be added: clique {a, d, f} is full.
        assert!(!fpl.allocated.contains(5));
        assert!(fpl.spill_cost < nl.spill_cost);
    }

    #[test]
    fn zero_registers_allocates_nothing() {
        let inst = figure6();
        for alg in [
            Layered::nl(),
            Layered::bl(),
            Layered::fpl(),
            Layered::bfpl(),
        ] {
            let a = alg.allocate(&inst, 0);
            assert!(a.allocated.is_empty());
            assert_eq!(a.spill_cost, inst.total_weight());
        }
    }

    /// At R = MaxLive the whole graph is allocatable. The fixed-point
    /// variants achieve zero spills; plain NL/BL may not (stepwise
    /// optimality is not global optimality — this gap is precisely what
    /// motivates the §4.2 improvement).
    #[test]
    fn enough_registers_fixed_point_allocates_everything() {
        let inst = figure6();
        let ml = inst.max_live() as u32;
        for alg in [Layered::fpl(), Layered::bfpl()] {
            let a = alg.allocate(&inst, ml);
            assert_eq!(
                a.spill_cost,
                0,
                "{} should spill nothing at R=MaxLive",
                alg.name()
            );
            assert!(verify::check(&inst, &a, ml).is_feasible());
        }
        for alg in [Layered::nl(), Layered::bl()] {
            let a = alg.allocate(&inst, ml);
            assert!(verify::check(&inst, &a, ml).is_feasible());
        }
    }

    #[test]
    fn single_register_allocates_max_stable_set() {
        let inst = figure6();
        let a = Layered::nl().allocate(&inst, 1);
        // Max weighted stable set has weight 8 ({b,f} or {c,f}).
        assert_eq!(a.allocated_weight, 8);
        assert!(verify::check(&inst, &a, 1).is_feasible());
    }

    #[test]
    fn layers_are_feasible_on_a_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let inst = Instance::from_weighted_graph(WeightedGraph::new(g, vec![5, 9, 5, 9, 5]));
        let a = Layered::nl().allocate(&inst, 1);
        // One register on a path: best stable set {1, 3} (18) beats
        // {0, 2, 4} (15).
        assert_eq!(a.allocated_weight, 18);
        assert!(verify::check(&inst, &a, 1).is_feasible());
    }

    #[test]
    fn step_two_is_feasible_and_bounded() {
        use crate::optimal::Optimal;
        let inst = figure6();
        for r in 1..=4u32 {
            let opt = Optimal::new().allocate(&inst, r);
            for step in 1..=3u32 {
                let a = Layered::nl().with_step(step).allocate(&inst, r);
                assert!(
                    verify::check(&inst, &a, r).is_feasible(),
                    "step {step} infeasible at R={r}"
                );
                assert!(a.spill_cost >= opt.spill_cost);
            }
        }
    }

    #[test]
    fn step_equal_to_r_is_exactly_optimal() {
        // A single layer covering all R registers IS the optimal
        // R-register allocation (stepwise optimality becomes global).
        use crate::optimal::Optimal;
        let inst = figure6();
        for r in 1..=3u32 {
            let a = Layered::nl().with_step(r).allocate(&inst, r);
            let opt = Optimal::new().allocate(&inst, r);
            assert_eq!(a.spill_cost, opt.spill_cost, "R={r}");
        }
    }

    #[test]
    fn step_two_can_beat_step_one() {
        // Figure 6 again: step 1 without bias may lose one unit to the
        // tie; a single 2-register layer is optimal by construction.
        let inst = figure6();
        let s1 = Layered::nl().allocate(&inst, 2);
        let s2 = Layered::nl().with_step(2).allocate(&inst, 2);
        assert!(s2.spill_cost <= s1.spill_cost);
        assert_eq!(s2.spill_cost, 4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_step_panics() {
        let _ = Layered::nl().with_step(0);
    }

    #[test]
    #[should_panic(expected = "chordal")]
    fn non_chordal_instance_panics() {
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let inst = Instance::from_weighted_graph(WeightedGraph::unit(c4));
        let _ = Layered::nl().allocate(&inst, 2);
    }
}
