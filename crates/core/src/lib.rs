//! Layered register allocation: a polynomial spilling heuristic.
//!
//! This crate implements the allocators of Diouf, Cohen & Rastello,
//! *A Polynomial Spilling Heuristic: Layered Allocation* (CGO 2013),
//! together with the baselines and exact solvers the paper evaluates
//! against.
//!
//! # The idea
//!
//! Decoupled (SSA-based) register allocation reduces spilling to:
//! *choose a maximum-weight set of variables whose interference subgraph
//! is R-colourable*. Conventional heuristics incrementally **spill**
//! variables; layered allocation incrementally **allocates** them, one
//! *layer* — a maximum weighted stable set, exactly computable on
//! chordal graphs in linear time — per register. Each layer raises the
//! register pressure everywhere by at most one, so `R` layers are
//! feasible by construction.
//!
//! # Allocators
//!
//! | Name | Type | Scope | Paper section |
//! |------|------|-------|---------------|
//! | `NL`   | [`layered::Layered::nl`]   | chordal | Alg. 2 |
//! | `BL`   | [`layered::Layered::bl`]   | chordal | §4.1 |
//! | `FPL`  | [`layered::Layered::fpl`]  | chordal | §4.2, Alg. 3–4 |
//! | `BFPL` | [`layered::Layered::bfpl`] | chordal | §4.1 + §4.2 |
//! | `LH`   | [`cluster::LayeredHeuristic`] | any graph | §5, Alg. 5–6 |
//! | `GC`   | [`baselines::ChaitinBriggs`] | any graph | baseline |
//! | `DLS`  | [`baselines::LinearScan`] | intervals | baseline |
//! | `BLS`  | [`baselines::BeladyLinearScan`] | intervals | baseline |
//! | `Optimal` | [`optimal::Optimal`] | any | exact reference |
//! | `Portfolio` | [`portfolio::Portfolio`] | any | cheap first, exact under budget |
//!
//! # Example
//!
//! ```
//! use lra_core::layered::Layered;
//! use lra_core::optimal::Optimal;
//! use lra_core::problem::{Allocator, Instance};
//! use lra_graph::{Graph, WeightedGraph};
//!
//! // A chordal interference graph with spill costs.
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
//! let inst = Instance::from_weighted_graph(WeightedGraph::new(g, vec![4, 2, 7, 1]));
//!
//! let bfpl = Layered::bfpl().allocate(&inst, 2);
//! let opt = Optimal::new().allocate(&inst, 2);
//! assert_eq!(bfpl.spill_cost, opt.spill_cost); // quasi-optimal in practice
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod baselines;
pub mod batch;
pub mod cache;
pub mod cluster;
pub mod coalesce;
pub mod driver;
pub mod layered;
pub mod optimal;
pub mod pipeline;
pub mod portfolio;
pub mod problem;
pub mod registry;
pub mod trace;
pub mod verify;

pub use batch::{
    BatchAllocator, BatchItem, BatchReport, BatchSummary, ReportRow, RowStats, WorkerScratch,
};
pub use cluster::LayeredHeuristic;
pub use driver::{AllocatedFunction, AllocationPipeline, CoalesceMode, PipelineError};
pub use layered::Layered;
pub use optimal::{Optimal, SolveBudget};
pub use portfolio::{Portfolio, PortfolioConfig, PortfolioOutcome, PortfolioSource};
pub use problem::{Allocation, Allocator, Instance};
pub use registry::{AllocatorRegistry, AllocatorSpec, CHORDAL_FIGURE_SET, JVM_FIGURE_SET};
