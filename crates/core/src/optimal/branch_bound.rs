//! Exact allocation on general graphs by branch-and-bound.
//!
//! For non-chordal (non-SSA) instances, "maximum-weight `R`-colourable
//! induced subgraph" has no polynomial structure to exploit, so we
//! search: vertices are processed in decreasing-weight order and each is
//! either assigned one of the colours `0..R` or spilled. Colour symmetry
//! is broken by allowing at most one previously unused colour per
//! vertex; the incumbent is seeded with the best heuristic solution
//! (`GC` and `LH`) so pruning bites immediately; the bound is the spill
//! cost accumulated so far (every completion only adds spills).
//!
//! JVM-method-sized graphs (≲ 40 vertices) solve in well under the node
//! budget; the solver returns `None` if the budget is exhausted, so a
//! caller can distinguish *certified* optima from timeouts.

use super::SolveBudget;
use crate::baselines::ChaitinBriggs;
use crate::cluster::LayeredHeuristic;
use crate::problem::{Allocation, Allocator, Instance};
use lra_graph::{BitSet, Cost};
use std::time::Instant;

/// How many search nodes pass between cooperative deadline checks.
/// A power of two so the check compiles to a mask test.
const DEADLINE_STRIDE: u64 = 4096;

struct Search<'a> {
    instance: &'a Instance,
    order: Vec<usize>,
    r: u32,
    /// Vertices currently holding each colour, as bit rows: colour `c`
    /// is free for `v` iff `assigned[c]` is disjoint from `v`'s
    /// neighbourhood row — a word-level test instead of one
    /// colour-lookup per neighbour on every search node.
    assigned: Vec<BitSet>,
    best_spill: Cost,
    best_set: BitSet,
    nodes: u64,
    node_limit: u64,
    deadline: Option<Instant>,
}

impl Search<'_> {
    fn run(&mut self, i: usize, spill: Cost, used_colors: u32, allocated: &mut BitSet) -> bool {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            return false;
        }
        if self.nodes.is_multiple_of(DEADLINE_STRIDE) {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    return false;
                }
            }
        }
        if spill >= self.best_spill {
            return true; // prune: cannot improve
        }
        if i == self.order.len() {
            self.best_spill = spill;
            self.best_set = allocated.clone();
            return true;
        }
        let v = self.order[i];
        let row = self.instance.graph().neighbor_row(v);

        // Try colours first (allocating is never charged), with symmetry
        // breaking: at most one fresh colour.
        let limit = (used_colors + 1).min(self.r);
        for c in 0..limit {
            if !row.is_disjoint(&self.assigned[c as usize]) {
                continue; // a neighbour holds this colour
            }
            self.assigned[c as usize].insert(v);
            allocated.insert(v);
            let ok = self.run(i + 1, spill, used_colors.max(c + 1), allocated);
            allocated.remove(v);
            self.assigned[c as usize].remove(v);
            if !ok {
                return false;
            }
        }

        // Spill branch.
        let w = self.instance.weighted_graph().weight(v);
        self.run(i + 1, spill + w, used_colors, allocated)
    }
}

/// Solves `instance` exactly with `r` registers, or returns `None` if
/// the search exceeds `node_limit` nodes (no certified optimum).
pub fn solve(instance: &Instance, r: u32, node_limit: u64) -> Option<Allocation> {
    solve_budgeted(instance, r, &SolveBudget::nodes(node_limit))
}

/// [`solve`] under a full [`SolveBudget`]: aborts (returning `None`)
/// on node-fuel exhaustion *or* when the cooperative deadline passes.
pub fn solve_budgeted(instance: &Instance, r: u32, budget: &SolveBudget) -> Option<Allocation> {
    if budget.expired() {
        return None;
    }
    let n = instance.vertex_count();
    if r == 0 {
        return Some(instance.allocation_from_set(BitSet::new(n)));
    }

    // Incumbent: the better of the two polynomial heuristics. LH works
    // on any graph; GC too.
    let seed_a = LayeredHeuristic::new().allocate(instance, r);
    let seed_b = ChaitinBriggs::new().allocate(instance, r);
    let (incumbent_spill, incumbent_set) = if seed_a.spill_cost <= seed_b.spill_cost {
        (seed_a.spill_cost, seed_a.allocated)
    } else {
        (seed_b.spill_cost, seed_b.allocated)
    };

    let wg = instance.weighted_graph();
    // Decreasing weight puts expensive spills early (strong bounds);
    // ties broken by degree so constrained vertices are decided first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse((wg.weight(v), instance.graph().degree(v))));

    let mut search = Search {
        instance,
        order,
        r,
        // min(r, n): the search can never use more colours than
        // vertices, and an absurd caller-supplied R must not allocate
        // R bit rows.
        assigned: vec![BitSet::new(n); (r as usize).min(n)],
        // `run` records strictly better solutions only, so start one
        // above the incumbent; if nothing beats it, return it as is.
        best_spill: incumbent_spill + 1,
        best_set: incumbent_set.clone(),
        nodes: 0,
        node_limit: budget.node_limit,
        deadline: budget.deadline,
    };
    let completed = search.run(0, 0, 0, &mut BitSet::new(n));
    if !completed {
        return None;
    }
    let best = if search.best_spill <= incumbent_spill {
        search.best_set
    } else {
        incumbent_set
    };
    Some(instance.allocation_from_set(best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use lra_graph::{generate, Graph, WeightedGraph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn instance(g: Graph, w: Vec<Cost>) -> Instance {
        Instance::from_weighted_graph(WeightedGraph::new(g, w))
    }

    #[test]
    fn c5_two_registers() {
        let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let inst = instance(c5, vec![5, 4, 3, 2, 1]);
        let a = solve(&inst, 2, 1_000_000).unwrap();
        // C5 is 3-chromatic: one vertex must go; the cheapest is 1.
        assert_eq!(a.spill_cost, 1);
        assert!(verify::check(&inst, &a, 2).is_feasible());
    }

    #[test]
    fn matches_exhaustive_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for trial in 0..8 {
            let g = generate::random_general(&mut rng, 10, 35);
            let w = generate::random_weights(&mut rng, 10, 2);
            let inst = instance(g, w);
            for r in 1..=3u32 {
                let a = solve(&inst, r, 10_000_000).unwrap();
                let best = exhaustive(&inst, r);
                assert_eq!(a.allocated_weight, best, "trial {trial} R={r}");
                assert!(verify::check(&inst, &a, r).is_feasible());
            }
        }
    }

    /// Reference: enumerate all subsets, check colourability exactly.
    fn exhaustive(inst: &Instance, r: u32) -> Cost {
        use lra_graph::coloring;
        let n = inst.vertex_count();
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let set = BitSet::from_iter_with_capacity(n, (0..n).filter(|&v| mask & (1 << v) != 0));
            if coloring::exact_coloring(inst.graph(), &set, r).is_some() {
                best = best.max(inst.weighted_graph().weight_of_set(&set));
            }
        }
        best
    }

    #[test]
    fn r_zero_spills_everything() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let inst = instance(g, vec![2, 3]);
        let a = solve(&inst, 0, 1000).unwrap();
        assert_eq!(a.spill_cost, 5);
    }

    #[test]
    fn expired_deadline_aborts_before_searching() {
        let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let inst = instance(c5, vec![5, 4, 3, 2, 1]);
        let budget = SolveBudget::nodes(1_000_000).with_time(Some(std::time::Duration::ZERO));
        assert!(solve_budgeted(&inst, 2, &budget).is_none());
        // The same search without the dead deadline completes.
        assert!(solve_budgeted(&inst, 2, &SolveBudget::nodes(1_000_000)).is_some());
    }

    #[test]
    fn node_limit_returns_none() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generate::random_general(&mut rng, 30, 40);
        let inst = instance(g, generate::random_weights(&mut rng, 30, 2));
        assert!(solve(&inst, 4, 10).is_none());
    }

    #[test]
    fn heuristic_incumbent_returned_when_already_optimal() {
        // Edgeless graph: everything allocated by every heuristic; the
        // search should confirm rather than regress.
        let inst = instance(Graph::empty(6), vec![1, 2, 3, 4, 5, 6]);
        let a = solve(&inst, 1, 1000).unwrap();
        assert_eq!(a.spill_cost, 0);
    }
}
