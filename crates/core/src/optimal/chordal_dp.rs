//! Exact allocation on chordal graphs by clique-tree dynamic programming.
//!
//! A subset `S` of a chordal graph's vertices induces an `R`-colourable
//! subgraph iff every **maximal clique** contains at most `R` members of
//! `S` (induced subgraphs of chordal graphs are chordal, and chordal
//! graphs are perfect). The clique tree is a tree decomposition whose
//! bags are the maximal cliques, so the maximum-weight such `S` is
//! computable by the standard tree-decomposition DP: for each bag,
//! enumerate the kept subsets (popcount ≤ R) and combine children
//! through their separators.
//!
//! The DP is exponential only in the largest clique (= MaxLive), which
//! is exactly the pseudo-polynomial structure the paper exploits. Bags
//! beyond [`MAX_BAG`] make the table too large; [`solve`] then returns
//! `None` and the caller falls back to branch-and-bound.

use super::SolveBudget;
use crate::problem::{Allocation, Instance};
use lra_graph::{cliques::CliqueTree, BitSet, Cost};
use std::collections::HashMap;

/// Largest bag size the DP will attempt (2^24 masks ≈ 16M per bag).
pub const MAX_BAG: usize = 22;

/// How many DP masks pass between cooperative deadline checks.
const DEADLINE_STRIDE: u64 = 65536;

/// Solves a chordal instance exactly, or returns `None` when a maximal
/// clique exceeds [`MAX_BAG`] vertices.
///
/// # Panics
///
/// Panics if the instance is not chordal.
pub fn solve(instance: &Instance, r: u32) -> Option<Allocation> {
    solve_budgeted(instance, r, &SolveBudget::unlimited())
}

/// [`solve`] under a [`SolveBudget`]: every enumerated bag mask costs
/// one unit of node fuel, and the wall-clock deadline is checked every
/// few tens of thousands of masks. Returns `None` on an oversized bag *or*
/// an exhausted budget — either way no certified optimum exists within
/// the caps and the caller decides what to fall back to.
///
/// # Panics
///
/// Panics if the instance is not chordal.
pub fn solve_budgeted(instance: &Instance, r: u32, budget: &SolveBudget) -> Option<Allocation> {
    let mut spent = 0;
    solve_metered(instance, r, budget, &mut spent)
}

/// [`solve_budgeted`] that also reports the node fuel consumed through
/// `spent` (valid on success *and* on abort), so a caller chaining a
/// fallback solver can charge both against one budget instead of
/// paying the cap twice — [`super::Optimal::try_allocate`] hands
/// branch-and-bound only the remainder.
///
/// # Panics
///
/// Panics if the instance is not chordal.
pub fn solve_metered(
    instance: &Instance,
    r: u32,
    budget: &SolveBudget,
    spent: &mut u64,
) -> Option<Allocation> {
    *spent = 0;
    if budget.expired() {
        return None;
    }
    let order = instance
        .peo()
        .expect("chordal DP requires a chordal instance");
    let g = instance.graph();
    let wg = instance.weighted_graph();
    let n = g.vertex_count();
    let tree = CliqueTree::build(g, order);
    if tree.max_bag_size() > MAX_BAG {
        return None;
    }
    let fuel_spent = spent;

    // Shortcut: R ≥ MaxLive means everything fits.
    if r as usize >= tree.max_bag_size() {
        return Some(instance.allocation_from_set(BitSet::full(n)));
    }

    let k = tree.bag_count();
    // Per-bag data in topological order; children processed first.
    // table[b]: separator-subset key -> (best value, best full-bag mask)
    let mut table: Vec<HashMap<u32, (Cost, u32)>> = vec![HashMap::new(); k];

    // Precompute per-bag vertex lists and separator positions.
    let bag_vs: Vec<Vec<usize>> = tree
        .bags
        .iter()
        .map(|bag| bag.iter().map(|v| v.index()).collect())
        .collect();
    let sep_list: Vec<Vec<usize>> = (0..k).map(|b| tree.separator(b).iter().collect()).collect();

    // For projecting a bag mask onto an ordered vertex list.
    let project = |mask: u32, vs: &[usize], targets: &[usize]| -> u32 {
        let mut key = 0u32;
        for (i, &t) in targets.iter().enumerate() {
            let pos = vs.iter().position(|&v| v == t).expect("target in bag");
            if mask & (1 << pos) != 0 {
                key |= 1 << i;
            }
        }
        key
    };

    for &b in tree.topo.iter().rev() {
        let vs = &bag_vs[b];
        let sep = &sep_list[b];
        let kb = vs.len();
        let in_sep: Vec<bool> = vs.iter().map(|v| sep.contains(v)).collect();
        let children = &tree.children[b];

        // Cache child projections: for each child, positions of its
        // separator vertices within our bag.
        let child_seps: Vec<&Vec<usize>> = children.iter().map(|&c| &sep_list[c]).collect();

        let mut best: HashMap<u32, (Cost, u32)> = HashMap::new();
        for mask in 0u32..(1 << kb) {
            *fuel_spent += 1;
            if *fuel_spent > budget.node_limit
                || (fuel_spent.is_multiple_of(DEADLINE_STRIDE) && budget.expired())
            {
                return None;
            }
            if (mask.count_ones()) > r {
                continue;
            }
            // Weight of kept vertices owned by this bag (not shared with
            // the parent — those are counted higher up).
            let mut value: Cost = 0;
            for (i, &v) in vs.iter().enumerate() {
                if mask & (1 << i) != 0 && !in_sep[i] {
                    value += wg.weight(v);
                }
            }
            // Children contributions through their separators.
            let mut feasible = true;
            for (ci, &c) in children.iter().enumerate() {
                let key = project(mask, vs, child_seps[ci]);
                match table[c].get(&key) {
                    Some(&(val, _)) => value += val,
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }
            let parent_key = project(mask, vs, sep);
            match best.entry(parent_key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((value, mask));
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if value > e.get().0 {
                        e.insert((value, mask));
                    }
                }
            }
        }
        table[b] = best;
    }

    // Reconstruct top-down.
    let mut allocated = BitSet::new(n);
    let mut stack: Vec<(usize, u32)> = tree
        .topo
        .iter()
        .filter(|&&b| tree.parent[b].is_none())
        .map(|&b| (b, 0u32))
        .collect();
    while let Some((b, key)) = stack.pop() {
        let &(_, mask) = table[b]
            .get(&key)
            .expect("every separator subset with ≤ R kept is realisable");
        let vs = &bag_vs[b];
        for (i, &v) in vs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                allocated.insert(v);
            }
        }
        for &c in &tree.children[b] {
            let key_c = project(mask, vs, &sep_list[c]);
            stack.push((c, key_c));
        }
    }

    Some(instance.allocation_from_set(allocated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use lra_graph::{generate, Graph, GraphBuilder, WeightedGraph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn instance(g: Graph, w: Vec<Cost>) -> Instance {
        Instance::from_weighted_graph(WeightedGraph::new(g, w))
    }

    #[test]
    fn clique_keeps_r_heaviest() {
        let mut b = GraphBuilder::new(5);
        b.add_clique(&[0, 1, 2, 3, 4]);
        let inst = instance(b.build(), vec![5, 9, 2, 7, 4]);
        let a = solve(&inst, 2).unwrap();
        // Keep 9 and 7; spill 5+2+4 = 11.
        assert_eq!(a.spill_cost, 11);
        assert!(a.allocated.contains(1) && a.allocated.contains(3));
        assert!(verify::check(&inst, &a, 2).is_feasible());
    }

    #[test]
    fn r_one_equals_max_weight_stable_set() {
        use lra_graph::stable;
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..10 {
            let g = generate::random_chordal(&mut rng, 18, 24, 4);
            let w = generate::random_weights(&mut rng, 18, 2);
            let inst = instance(g, w);
            let a = solve(&inst, 1).unwrap();
            let brute = stable::max_weight_stable_set_brute(inst.weighted_graph(), None);
            assert_eq!(a.allocated_weight, brute.weight);
            assert!(verify::check(&inst, &a, 1).is_feasible());
        }
    }

    #[test]
    fn r_at_maxlive_allocates_everything() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generate::random_chordal(&mut rng, 25, 30, 5);
        let inst = instance(g, vec![3; 25]);
        let ml = inst.max_live() as u32;
        let a = solve(&inst, ml).unwrap();
        assert_eq!(a.spill_cost, 0);
    }

    #[test]
    fn disconnected_components_solved_independently() {
        // Two triangles; R=2 spills the cheapest vertex of each.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let inst = instance(g, vec![5, 1, 4, 2, 6, 3]);
        let a = solve(&inst, 2).unwrap();
        assert_eq!(a.spill_cost, 1 + 2);
        assert!(!a.allocated.contains(1));
        assert!(!a.allocated.contains(3));
    }

    #[test]
    fn matches_brute_force_over_rs() {
        // Exhaustive reference: enumerate all subsets, keep the feasible
        // maximum.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for trial in 0..6 {
            let g = generate::random_chordal(&mut rng, 12, 16, 4);
            let w = generate::random_weights(&mut rng, 12, 2);
            let inst = instance(g.clone(), w.clone());
            for r in 1..=4u32 {
                let a = solve(&inst, r).unwrap();
                let best = brute_force(&inst, r);
                assert_eq!(
                    a.allocated_weight, best,
                    "trial {trial}, R={r}: DP {} vs brute {best}",
                    a.allocated_weight
                );
                assert!(verify::check(&inst, &a, r).is_feasible());
            }
        }
    }

    /// Exhaustive max-weight R-colourable subset for tiny graphs.
    fn brute_force(inst: &Instance, r: u32) -> Cost {
        let n = inst.vertex_count();
        assert!(n <= 20);
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let set = BitSet::from_iter_with_capacity(n, (0..n).filter(|&v| mask & (1 << v) != 0));
            // Feasibility on chordal graphs: every maximal clique ≤ r.
            let ok = inst
                .maximal_cliques()
                .unwrap()
                .iter()
                .all(|c| c.iter().filter(|v| set.contains(v.index())).count() <= r as usize);
            if ok {
                best = best.max(inst.weighted_graph().weight_of_set(&set));
            }
        }
        best
    }

    #[test]
    fn exhausted_fuel_returns_none() {
        let mut b = GraphBuilder::new(6);
        b.add_clique(&[0, 1, 2, 3, 4, 5]);
        let inst = instance(b.build(), vec![1; 6]);
        assert!(solve_budgeted(&inst, 2, &SolveBudget::nodes(3)).is_none());
        assert!(solve_budgeted(&inst, 2, &SolveBudget::unlimited()).is_some());
    }

    #[test]
    fn expired_deadline_returns_none() {
        let mut b = GraphBuilder::new(5);
        b.add_clique(&[0, 1, 2, 3, 4]);
        let inst = instance(b.build(), vec![2; 5]);
        let budget = SolveBudget::unlimited().with_time(Some(std::time::Duration::ZERO));
        assert!(solve_budgeted(&inst, 2, &budget).is_none());
    }

    #[test]
    fn oversized_bags_return_none() {
        let mut b = GraphBuilder::new(MAX_BAG + 2);
        let all: Vec<usize> = (0..MAX_BAG + 2).collect();
        b.add_clique(&all);
        let inst = instance(b.build(), vec![1; MAX_BAG + 2]);
        assert!(solve(&inst, 2).is_none());
    }
}
