//! Exact interval allocation by minimum-cost flow.
//!
//! For an interval instance, "allocate a maximum-weight subset with at
//! most `R` simultaneously live" is the classic weighted job-interval
//! scheduling problem on `R` machines (Carlisle & Lloyd; Arkin &
//! Silverberg), solvable exactly by min-cost flow:
//!
//! * nodes = sorted distinct interval endpoints,
//! * an *idle* arc between consecutive endpoints with capacity `R` and
//!   cost 0,
//! * one arc per interval from its start to its end with capacity 1 and
//!   cost `−weight`.
//!
//! A min-cost flow of value at most `R` from the leftmost to the
//! rightmost endpoint decomposes into `R` register "tracks"; interval
//! arcs carrying flow are the allocated variables. Since every point is
//! covered by at most `R` tracks, the allocation is feasible, and LP
//! duality certifies optimality. This gives the paper's `Optimal`
//! baseline in `O(R·|E| log |V|)` — polynomial at any scale, unlike the
//! ILP used by the authors.

use crate::problem::{Allocation, Instance};
use lra_graph::BitSet;

#[derive(Clone, Debug)]
struct Edge {
    to: usize,
    cap: i64,
    cost: i64,
    flow: i64,
}

/// Min-cost successive-shortest-path flow with Johnson potentials.
struct Mcmf {
    edges: Vec<Edge>,
    adj: Vec<Vec<usize>>,
}

impl Mcmf {
    fn new(n: usize) -> Self {
        Mcmf {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Adds a directed edge; returns its index (for flow readback).
    fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> usize {
        let id = self.edges.len();
        self.edges.push(Edge {
            to,
            cap,
            cost,
            flow: 0,
        });
        self.edges.push(Edge {
            to: from,
            cap: 0,
            cost: -cost,
            flow: 0,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Sends up to `limit` units from `s` to `t`, stopping early when
    /// the next augmenting path would have non-negative cost (so the
    /// result is the min-cost flow over all values ≤ `limit`).
    ///
    /// Requires the initial graph (before any flow) to be a DAG in node
    /// order (`edge.to != from` with `from < to`), which lets the
    /// initial potentials be computed by one topological relaxation.
    fn solve_dag(&mut self, s: usize, t: usize, limit: i64) {
        let n = self.adj.len();
        const INF: i64 = i64::MAX / 4;

        // Initial potentials: shortest distances in the DAG (nodes are
        // already topologically ordered by construction).
        let mut pot = vec![INF; n];
        pot[s] = 0;
        for u in 0..n {
            if pot[u] == INF {
                continue;
            }
            for &eid in &self.adj[u] {
                let e = &self.edges[eid];
                if e.cap > e.flow && pot[u] + e.cost < pot[e.to] {
                    pot[e.to] = pot[u] + e.cost;
                }
            }
        }
        for p in &mut pot {
            if *p == INF {
                *p = 0; // unreachable nodes: any finite potential works
            }
        }

        let mut sent = 0;
        while sent < limit {
            // Dijkstra with reduced costs.
            let mut dist = vec![INF; n];
            let mut prev_edge = vec![usize::MAX; n];
            dist[s] = 0;
            let mut heap = std::collections::BinaryHeap::new();
            heap.push(std::cmp::Reverse((0i64, s)));
            while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid];
                    if e.cap > e.flow {
                        let rc = e.cost + pot[u] - pot[e.to];
                        debug_assert!(rc >= 0, "reduced cost must be non-negative");
                        if d + rc < dist[e.to] {
                            dist[e.to] = d + rc;
                            prev_edge[e.to] = eid;
                            heap.push(std::cmp::Reverse((dist[e.to], e.to)));
                        }
                    }
                }
            }
            if dist[t] == INF {
                break;
            }
            let real_cost = dist[t] + pot[t] - pot[s];
            if real_cost >= 0 {
                break; // augmenting further cannot reduce the cost
            }
            for v in 0..n {
                if dist[v] < INF {
                    pot[v] += dist[v];
                }
            }
            // Augment one unit along the path.
            let mut v = t;
            while v != s {
                let eid = prev_edge[v];
                self.edges[eid].flow += 1;
                self.edges[eid ^ 1].flow -= 1;
                v = self.edges[eid ^ 1].to;
            }
            sent += 1;
        }
    }
}

/// Solves an interval instance exactly.
///
/// # Panics
///
/// Panics if the instance carries no intervals.
pub fn solve(instance: &Instance, r: u32) -> Allocation {
    let intervals = instance
        .intervals()
        .expect("flow solver requires an interval instance");
    let wg = instance.weighted_graph();
    let n = intervals.len();

    let mut allocated = BitSet::new(n);
    // Dead (empty) intervals occupy no register.
    for (i, iv) in intervals.iter().enumerate() {
        if iv.is_empty() {
            allocated.insert(i);
        }
    }
    if r == 0 {
        // Only the dead intervals are "allocated".
        return instance.allocation_from_set(allocated);
    }

    // Coordinate-compress endpoints of live intervals.
    let mut points: Vec<u32> = intervals
        .iter()
        .filter(|iv| !iv.is_empty())
        .flat_map(|iv| [iv.start, iv.end])
        .collect();
    points.sort_unstable();
    points.dedup();
    if points.len() < 2 {
        return instance.allocation_from_set(allocated);
    }
    let node_of = |p: u32| points.binary_search(&p).expect("endpoint present");

    let m = points.len();
    let mut net = Mcmf::new(m);
    for i in 0..m - 1 {
        net.add_edge(i, i + 1, r as i64, 0);
    }
    let mut interval_edges: Vec<(usize, usize)> = Vec::new(); // (edge id, vertex)
    for (i, iv) in intervals.iter().enumerate() {
        if !iv.is_empty() {
            let id = net.add_edge(
                node_of(iv.start),
                node_of(iv.end),
                1,
                -(wg.weight(i) as i64),
            );
            interval_edges.push((id, i));
        }
    }

    net.solve_dag(0, m - 1, r as i64);

    for (id, v) in interval_edges {
        if net.edges[id].flow > 0 {
            allocated.insert(v);
        }
    }
    instance.allocation_from_set(allocated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use lra_graph::Interval;

    fn inst(ivs: Vec<Interval>, w: Vec<u64>) -> Instance {
        Instance::from_intervals(ivs, w)
    }

    #[test]
    fn disjoint_intervals_all_allocated() {
        let i = inst(
            vec![
                Interval::new(0, 2),
                Interval::new(3, 5),
                Interval::new(6, 8),
            ],
            vec![1, 1, 1],
        );
        let a = solve(&i, 1);
        assert_eq!(a.spill_cost, 0);
    }

    #[test]
    fn overlapping_pair_one_register_keeps_heavier() {
        let i = inst(vec![Interval::new(0, 5), Interval::new(2, 7)], vec![3, 9]);
        let a = solve(&i, 1);
        assert_eq!(a.spill_cost, 3);
        assert!(a.allocated.contains(1));
    }

    #[test]
    fn weighted_triple_overlap() {
        // Three intervals covering one common point; R=2 keeps the two
        // heaviest.
        let i = inst(
            vec![
                Interval::new(0, 10),
                Interval::new(1, 9),
                Interval::new(2, 8),
            ],
            vec![5, 1, 7],
        );
        let a = solve(&i, 2);
        assert_eq!(a.spill_cost, 1);
        assert!(verify::check(&i, &a, 2).is_feasible());
    }

    #[test]
    fn flow_beats_greedy_splitting() {
        // A long cheap interval vs two short expensive ones that fit
        // around each other on one register: optimal takes the two
        // shorts plus nothing else at R=1 if they don't overlap.
        let i = inst(
            vec![
                Interval::new(0, 10),
                Interval::new(0, 4),
                Interval::new(5, 10),
            ],
            vec![5, 4, 4],
        );
        let a = solve(&i, 1);
        // {1, 2} = 8 beats {0} = 5.
        assert_eq!(a.allocated_weight, 8);
        assert!(!a.allocated.contains(0));
    }

    #[test]
    fn r_zero_allocates_only_dead() {
        let i = inst(vec![Interval::new(0, 3), Interval::new(1, 1)], vec![2, 2]);
        let a = solve(&i, 0);
        assert!(a.allocated.contains(1));
        assert!(!a.allocated.contains(0));
        assert_eq!(a.spill_cost, 2);
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        use lra_graph::stable;
        // R=1: optimum = max weight stable set of the interval graph.
        let ivs = vec![
            Interval::new(0, 6),
            Interval::new(2, 9),
            Interval::new(5, 12),
            Interval::new(8, 14),
            Interval::new(11, 16),
        ];
        let w = vec![4, 7, 3, 6, 5];
        let i = inst(ivs, w);
        let a = solve(&i, 1);
        let brute = stable::max_weight_stable_set_brute(i.weighted_graph(), None);
        assert_eq!(a.allocated_weight, brute.weight);
    }

    #[test]
    fn large_r_allocates_everything() {
        let ivs: Vec<Interval> = (0..20).map(|k| Interval::new(k, k + 10)).collect();
        let i = inst(ivs, (1..=20).collect());
        let a = solve(&i, 32);
        assert_eq!(a.spill_cost, 0);
    }

    #[test]
    fn result_is_always_feasible() {
        let ivs: Vec<Interval> = (0..12).map(|k| Interval::new(k % 5, k % 5 + 6)).collect();
        let i = inst(ivs, (1..=12).collect());
        for r in 1..=6 {
            let a = solve(&i, r);
            assert!(verify::check(&i, &a, r).is_feasible(), "R={r}");
        }
    }
}
