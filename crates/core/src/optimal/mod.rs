//! Exact (optimal) spill-everywhere solvers.
//!
//! The paper's `Optimal` baseline is an ILP solved by a commercial
//! solver. This reproduction replaces it with three certified-exact
//! combinatorial solvers, dispatched on instance structure:
//!
//! * interval instances → [`flow`]: minimum-cost flow over interval
//!   endpoints (Carlisle–Lloyd / Arkin–Silverberg), polynomial for any
//!   `R` and instance size;
//! * chordal instances → [`chordal_dp`]: dynamic programming over the
//!   clique tree, exponential only in the largest clique;
//! * general instances → [`branch_bound`]: branch-and-bound over
//!   colour assignments with symmetry breaking, for the JVM-sized
//!   graphs of §6.2.

pub mod branch_bound;
pub mod chordal_dp;
pub mod flow;

use crate::problem::{Allocation, Allocator, Instance};
use std::time::{Duration, Instant};

/// A cooperative work budget for the exact solvers.
///
/// Two independent caps, both optional in effect:
///
/// * **node fuel** — a deterministic cap on the search/DP work
///   (branch-and-bound nodes, DP masks). Exceeding it aborts the
///   solve. Because fuel is counted, not timed, two runs with the same
///   fuel always abort (or complete) at exactly the same point — this
///   is the budget to use when results must be reproducible, e.g.
///   across the [`crate::batch`] worker pool at different thread
///   counts.
/// * **deadline** — a wall-clock cutoff checked cooperatively every
///   few thousand work units. A deadline abort depends on machine
///   speed and load, so results guarded only by a deadline are *not*
///   deterministic; use it as a hard latency guard on top of the fuel.
///
/// The budgeted entry points ([`Optimal::try_allocate`],
/// [`branch_bound::solve_budgeted`], [`chordal_dp::solve_budgeted`])
/// return `None` when either cap trips — a *bounded* outcome the
/// caller can distinguish from a certified optimum.
#[derive(Clone, Copy, Debug)]
pub struct SolveBudget {
    /// Maximum search nodes / DP masks before the solver gives up.
    pub node_limit: u64,
    /// Wall-clock instant after which the solver gives up.
    pub deadline: Option<Instant>,
}

/// Smallest fuel [`scaled_node_fuel`] ever grants: enough for the
/// exact tiers to certify any lao-kernel/JVM98-sized method outright.
pub const MIN_SCALED_NODE_FUEL: u64 = 20_000;

/// Largest fuel [`scaled_node_fuel`] ever grants: caps the worst-case
/// exact-tier latency on the ~200-temporary tail of a JIT corpus at a
/// few milliseconds per function.
pub const MAX_SCALED_NODE_FUEL: u64 = 400_000;

/// Fuel granted per temporary between the two clamps. The curve is
/// linear because branch-and-bound node cost is roughly linear in the
/// vertex count (each node scans a bit row), so constant fuel would
/// give big instances *less* wall-clock than small ones.
pub const SCALED_FUEL_PER_TEMP: u64 = 2_000;

/// The size-adaptive default node fuel:
/// `clamp(SCALED_FUEL_PER_TEMP × n_temps, MIN.., MAX..)`. Purely a
/// function of the instance size, so budgets stay deterministic at
/// any worker count.
pub fn scaled_node_fuel(n_temps: usize) -> u64 {
    (SCALED_FUEL_PER_TEMP.saturating_mul(n_temps as u64))
        .clamp(MIN_SCALED_NODE_FUEL, MAX_SCALED_NODE_FUEL)
}

impl SolveBudget {
    /// A deterministic fuel-only budget sized for an `n_temps`-vertex
    /// instance ([`scaled_node_fuel`]): small instances get enough
    /// fuel to certify, huge ones get a hard latency lid. This is the
    /// budget `PortfolioConfig::default()` (and therefore the
    /// allocation service) escalates under.
    pub fn scaled_for(n_temps: usize) -> Self {
        SolveBudget::nodes(scaled_node_fuel(n_temps))
    }

    /// No caps: the solver runs to completion (or to the structural
    /// limits like [`chordal_dp::MAX_BAG`]).
    pub fn unlimited() -> Self {
        SolveBudget {
            node_limit: u64::MAX,
            deadline: None,
        }
    }

    /// A deterministic fuel-only budget of `n` work units.
    pub fn nodes(n: u64) -> Self {
        SolveBudget {
            node_limit: n,
            deadline: None,
        }
    }

    /// Adds a wall-clock deadline of `d` from now (`None` leaves the
    /// budget fuel-only). A zero `d` produces an already-expired
    /// budget: every budgeted solve returns `None` immediately.
    pub fn with_time(mut self, d: Option<Duration>) -> Self {
        self.deadline = d.map(|d| Instant::now() + d);
        self
    }

    /// `true` once the wall-clock deadline (if any) has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The exact allocator, dispatching on instance structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Optimal {
    /// Node budget for the branch-and-bound fallback; exceeded budgets
    /// panic (the evaluation sizes instances so this never triggers).
    pub node_limit: u64,
}

impl Optimal {
    /// Default configuration (one hundred million search nodes).
    pub fn new() -> Self {
        Optimal {
            node_limit: 100_000_000,
        }
    }
}

impl Default for Optimal {
    fn default() -> Self {
        Optimal::new()
    }
}

impl Optimal {
    /// Budgeted exact solve: like [`Allocator::allocate`] but returns
    /// `None` instead of panicking when `budget` trips before a
    /// certified optimum is found.
    ///
    /// Interval instances always complete (min-cost flow is
    /// polynomial and far below any realistic budget). Chordal
    /// instances try the clique-tree DP first; if the DP gives up
    /// (oversized bag or exhausted fuel), branch-and-bound runs on the
    /// fuel the DP left — the two tiers share one budget, so the total
    /// work never exceeds `node_limit`. General instances go straight
    /// to branch-and-bound. A `None` therefore means "no certified
    /// optimum within the budget", never an error.
    pub fn try_allocate(
        &self,
        instance: &Instance,
        r: u32,
        budget: &SolveBudget,
    ) -> Option<Allocation> {
        if budget.expired() {
            return None;
        }
        if instance.intervals().is_some() {
            return Some(flow::solve(instance, r));
        }
        if instance.is_chordal() {
            let mut spent = 0;
            if let Some(a) = chordal_dp::solve_metered(instance, r, budget, &mut spent) {
                return Some(a);
            }
            let remaining = budget.node_limit.saturating_sub(spent);
            if remaining == 0 {
                return None;
            }
            let fallback = SolveBudget {
                node_limit: remaining,
                deadline: budget.deadline,
            };
            return branch_bound::solve_budgeted(instance, r, &fallback);
        }
        branch_bound::solve_budgeted(instance, r, budget)
    }
}

impl Allocator for Optimal {
    fn name(&self) -> &'static str {
        "Optimal"
    }

    /// Computes a certified optimal allocation.
    ///
    /// # Panics
    ///
    /// Panics if the instance is non-chordal *and* the branch-and-bound
    /// search exceeds `node_limit` (meaning the instance is too large
    /// for exact solving), or if a chordal instance without intervals
    /// has cliques too large for the DP and the fallback also exceeds
    /// the limit.
    fn allocate(&self, instance: &Instance, r: u32) -> Allocation {
        if instance.intervals().is_some() {
            return flow::solve(instance, r);
        }
        if instance.is_chordal() {
            if let Some(a) = chordal_dp::solve(instance, r) {
                return a;
            }
        }
        match branch_bound::solve(instance, r, self.node_limit) {
            Some(a) => a,
            None => panic!(
                "Optimal: branch-and-bound exceeded {} nodes on a {}-vertex instance",
                self.node_limit,
                instance.vertex_count()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_graph::{Graph, Interval, WeightedGraph};

    #[test]
    fn dispatch_interval_instance() {
        let inst = Instance::from_intervals(
            vec![
                Interval::new(0, 4),
                Interval::new(1, 5),
                Interval::new(2, 6),
            ],
            vec![3, 5, 4],
        );
        let a = Optimal::new().allocate(&inst, 2);
        // Three mutually overlapping intervals, two registers: spill the
        // cheapest (3).
        assert_eq!(a.spill_cost, 3);
    }

    #[test]
    fn dispatch_chordal_graph_instance() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let inst = Instance::from_weighted_graph(WeightedGraph::new(g, vec![3, 5, 4]));
        let a = Optimal::new().allocate(&inst, 2);
        assert_eq!(a.spill_cost, 3);
    }

    #[test]
    fn dispatch_general_graph_instance() {
        let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let inst = Instance::from_weighted_graph(WeightedGraph::new(c5, vec![1, 1, 1, 1, 1]));
        // C5 with 2 registers: at most 4 vertices allocatable (C5 is
        // 3-chromatic), so the optimum spills exactly one unit.
        let a = Optimal::new().allocate(&inst, 2);
        assert_eq!(a.spill_cost, 1);
    }

    #[test]
    fn try_allocate_shares_one_budget_across_chordal_tiers() {
        // Chordal, no intervals: the DP runs first. With fuel too
        // small for the DP, the branch-and-bound fallback gets only
        // the leftover (here zero), so the total work stays within
        // node_limit instead of paying the cap once per tier.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let inst = Instance::from_weighted_graph(WeightedGraph::new(g, vec![3, 5, 4]));
        let starved = Optimal::new().try_allocate(&inst, 2, &SolveBudget::nodes(2));
        assert_eq!(starved, None);
        let fueled = Optimal::new().try_allocate(&inst, 2, &SolveBudget::nodes(1000));
        assert_eq!(fueled.expect("certifies").spill_cost, 3);
    }

    #[test]
    fn scaled_fuel_curve_is_pinned() {
        // The curve is part of the determinism contract (cache keys
        // embed the effective fuel), so its exact values are pinned.
        for (n, fuel) in [
            (0, 20_000),
            (5, 20_000),
            (10, 20_000),
            (35, 70_000),
            (100, 200_000),
            (200, 400_000),
            (10_000, 400_000),
        ] {
            assert_eq!(scaled_node_fuel(n), fuel, "scaled_node_fuel({n})");
            assert_eq!(SolveBudget::scaled_for(n).node_limit, fuel);
        }
        // Monotone: more temporaries never means less fuel.
        let mut prev = 0;
        for n in 0..512 {
            let f = scaled_node_fuel(n);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn figure2_spill_set_inclusion_counterexample() {
        // In the spirit of Figure 2 of the paper (the report's figure
        // labels are ambiguous, so the weights are chosen to make both
        // optima unique): triangle {b, c, d} with pendants a–b and d–e,
        // weights a=3, b=2, c=1, d=2, e=3. Optimal with R=1 allocates
        // the stable set {a, c, e} (spills {b, d}); with R=2 it spills
        // only {c}: the R=2 spill set is NOT included in the R=1 one.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (1, 3), (3, 4)]);
        let inst = Instance::from_weighted_graph(WeightedGraph::new(g, vec![3, 2, 1, 2, 3]));
        let r1 = Optimal::new().allocate(&inst, 1);
        let r2 = Optimal::new().allocate(&inst, 2);
        let s1 = r1.spilled_set(&inst);
        let s2 = r2.spilled_set(&inst);
        assert_eq!(s1.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(s2.iter().collect::<Vec<_>>(), vec![2]);
        assert!(!s2.is_subset(&s1), "inclusion fails, as the paper shows");
    }
}
