//! Bridges the compiler IR to allocation [`Instance`]s.
//!
//! Two instance shapes mirror the paper's two evaluation tracks:
//!
//! * [`InstanceKind::PreciseGraph`] — the exact interference graph
//!   (chordal for SSA functions, general for JIT functions), the §6.2
//!   setting.
//! * [`InstanceKind::LinearIntervals`] — live ranges over-approximated
//!   by one interval each over a linearisation, the linear-scan view.
//!   The resulting graph is an interval graph, so the exact optimum is
//!   available at any scale via min-cost flow — this is how the §6.1
//!   figures normalise against `Optimal` without an ILP solver.

use crate::problem::Instance;
use lra_ir::dom::DomTree;
use lra_ir::loops::LoopInfo;
use lra_ir::{interference, spill_cost, AnalysisScratch, Function, FunctionAnalysis};
use lra_targets::Target;

/// Which view of the function's live ranges to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceKind {
    /// Exact def/live interference (chordal iff SSA).
    PreciseGraph,
    /// One interval per value over a linearisation (interval graph).
    LinearIntervals,
}

/// Compiles `f` down to a spill-everywhere instance for `target`.
///
/// Runs the full [`FunctionAnalysis`] (dominators, loops, liveness,
/// linearisation) and hands off to [`build_instance_with`]. Callers
/// inside the spill-then-reanalyse loop should compute (or
/// incrementally update) one `FunctionAnalysis` per round and call
/// [`build_instance_with`] directly so nothing is analysed twice.
pub fn build_instance(f: &Function, target: &Target, kind: InstanceKind) -> Instance {
    build_instance_with(f, &FunctionAnalysis::compute(f), target, kind)
}

/// [`build_instance`] on a precomputed [`FunctionAnalysis`]: spill-cost
/// estimation plus interference/interval construction, borrowing the
/// shared liveness, loop and linearisation results.
pub fn build_instance_with(
    f: &Function,
    analysis: &FunctionAnalysis,
    target: &Target,
    kind: InstanceKind,
) -> Instance {
    build_instance_with_in(f, analysis, target, kind, &mut AnalysisScratch::new())
}

/// [`build_instance_with`] with caller-provided analysis scratch (see
/// [`AnalysisScratch`]); identical output, recycled sweep buffers.
pub fn build_instance_with_in(
    f: &Function,
    analysis: &FunctionAnalysis,
    target: &Target,
    kind: InstanceKind,
    scratch: &mut AnalysisScratch,
) -> Instance {
    let costs = spill_cost::spill_costs(f, &analysis.liveness, &analysis.loops, target);
    build_instance_from_costs_in(f, analysis, kind, scratch, costs)
}

/// [`build_instance_with_in`] with caller-provided spill costs — the
/// entry point for cost models beyond plain spill-everywhere, such as
/// the rematerialization discounts
/// ([`lra_ir::spill_cost::spill_costs_with_remat`]) the escalation
/// tier allocates under. `costs` must have one entry per value of `f`.
pub fn build_instance_from_costs_in(
    f: &Function,
    analysis: &FunctionAnalysis,
    kind: InstanceKind,
    scratch: &mut AnalysisScratch,
    costs: Vec<lra_graph::Cost>,
) -> Instance {
    let live = &analysis.liveness;

    match kind {
        InstanceKind::PreciseGraph => {
            let g = interference::interference_graph_in(f, live, scratch);
            Instance::from_weighted_graph(lra_graph::WeightedGraph::new(g, costs))
        }
        InstanceKind::LinearIntervals => {
            let ivs = interference::live_intervals_in(f, live, &analysis.linearization, scratch);
            Instance::from_intervals(ivs, costs)
        }
    }
}

/// Extracts copy-affinities from `f` for the coalescing passes:
///
/// * each [`lra_ir::Opcode::Copy`] contributes an affinity between its
///   destination and source, weighted by the block frequency (the cost
///   of the move that coalescing would remove);
/// * each φ contributes an affinity between its def and every use,
///   weighted by the incoming predecessor's frequency (the cost of the
///   move that SSA destruction would otherwise insert on that edge).
pub fn copy_affinities(f: &Function) -> crate::coalesce::Affinities {
    let dom = DomTree::compute(f);
    let loops = LoopInfo::compute(f, &dom);
    copy_affinities_with(f, &loops)
}

/// [`copy_affinities`] on a precomputed loop analysis — the variant the
/// pipeline's coalescing rounds use so the shared
/// [`FunctionAnalysis::loops`] is not recomputed per round.
pub fn copy_affinities_with(f: &Function, loops: &LoopInfo) -> crate::coalesce::Affinities {
    use lra_ir::Opcode;
    let mut aff = crate::coalesce::Affinities::new();
    for b in f.block_ids() {
        let freq = loops.frequency(b);
        let block = f.block(b);
        for instr in &block.instrs {
            match instr.opcode {
                Opcode::Copy => {
                    if let (Some(d), Some(u)) = (instr.def, instr.uses.first()) {
                        aff.add(d.index(), u.index(), freq.max(1));
                    }
                }
                Opcode::Phi => {
                    if let Some(d) = instr.def {
                        for (i, u) in instr.uses.iter().enumerate() {
                            let pf = loops.frequency(block.preds[i]);
                            aff.add(d.index(), u.index(), pf.max(1));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    aff
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_ir::genprog::{self, JitConfig, SsaConfig};
    use lra_targets::TargetKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ssa_precise_instances_are_chordal() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = Target::new(TargetKind::St231);
        for _ in 0..10 {
            let f = genprog::random_ssa_function(&mut rng, &SsaConfig::default(), "f");
            let inst = build_instance(&f, &t, InstanceKind::PreciseGraph);
            assert!(inst.is_chordal());
            assert!(inst.intervals().is_none());
        }
    }

    #[test]
    fn interval_instances_carry_intervals() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = Target::new(TargetKind::St231);
        let f = genprog::random_ssa_function(&mut rng, &SsaConfig::default(), "f");
        let inst = build_instance(&f, &t, InstanceKind::LinearIntervals);
        assert!(inst.is_chordal());
        assert!(inst.intervals().is_some());
        assert_eq!(inst.vertex_count(), f.value_count as usize);
    }

    #[test]
    fn interval_view_over_approximates_precise_view() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = Target::new(TargetKind::St231);
        let f = genprog::random_ssa_function(&mut rng, &SsaConfig::default(), "f");
        let precise = build_instance(&f, &t, InstanceKind::PreciseGraph);
        let coarse = build_instance(&f, &t, InstanceKind::LinearIntervals);
        for (u, v) in precise.graph().edges() {
            assert!(
                coarse.graph().has_edge(u.index(), v.index()),
                "precise edge ({u}, {v}) missing from interval graph"
            );
        }
        assert!(coarse.max_live() >= precise.max_live());
    }

    #[test]
    fn phi_affinities_extracted() {
        use lra_ir::builder::FunctionBuilder;
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        let xl = b.op(l, &[]);
        let xr = b.op(r, &[]);
        let m = b.phi(j, &[xl, xr]);
        let c = b.copy(j, m);
        b.op(j, &[c]);
        let f = b.finish();
        let aff = copy_affinities(&f);
        // Two φ affinities plus one copy affinity.
        assert_eq!(aff.len(), 3);
        let pairs: Vec<(usize, usize)> = aff.pairs().iter().map(|&(a, b, _)| (a, b)).collect();
        assert!(pairs.contains(&(xl.index().min(m.index()), xl.index().max(m.index()))));
        assert!(pairs.contains(&(m.index().min(c.index()), m.index().max(c.index()))));
    }

    #[test]
    fn coalescing_a_real_function_removes_moves() {
        use crate::coalesce;
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let t = Target::new(TargetKind::St231);
        let cfg = SsaConfig {
            branch_percent: 30,
            loop_percent: 15,
            ..SsaConfig::default()
        };
        let f = genprog::random_ssa_function(&mut rng, &cfg, "f");
        let inst = build_instance(&f, &t, InstanceKind::PreciseGraph);
        let aff = copy_affinities(&f);
        if aff.is_empty() {
            return; // this seed produced no φs; other tests cover φs
        }
        let c = coalesce::aggressive_coalesce(&inst, &aff);
        assert!(c.instance.vertex_count() <= inst.vertex_count());
        assert_eq!(
            c.instance.total_weight(),
            inst.total_weight(),
            "coalescing preserves total spill weight"
        );
    }

    #[test]
    fn jit_precise_instances_exist_and_have_costs() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let t = Target::new(TargetKind::ArmCortexA8);
        let f = genprog::random_jit_function(&mut rng, &JitConfig::default(), "jit");
        let inst = build_instance(&f, &t, InstanceKind::PreciseGraph);
        assert_eq!(inst.vertex_count(), f.value_count as usize);
        assert!(inst.weighted_graph().weights().iter().all(|&w| w >= 1));
    }
}
