//! The portfolio allocation policy: cheap first, exact under budget.
//!
//! Small JIT methods are worth solving exactly — the paper's §6.2
//! keeps SPEC JVM98 methods under ~35 temporaries precisely so its
//! `Optimal` baseline stays tractable. A larger corpus (hundreds of
//! temporaries, non-chordal graphs) breaks that bargain: the exact
//! branch-and-bound search is unbounded in the worst case, while the
//! polynomial heuristics are always fast but leave spill cost on the
//! table for the methods that happen to be easy.
//!
//! [`Portfolio`] resolves the tension with a two-tier policy:
//!
//! 1. run a **cheap** allocator (any [`AllocatorRegistry`] name;
//!    `LH` by default since it accepts any graph);
//! 2. if the cheap result still spills *and* the configured budget
//!    permits, escalate to [`Optimal::try_allocate`] under a
//!    [`SolveBudget`] — a deterministic node-fuel cap plus an optional
//!    wall-clock deadline threaded cooperatively through the exact
//!    solvers;
//! 3. keep whichever allocation costs less. An exhausted budget, an
//!    expired deadline, or a zero budget all degrade to the cheap
//!    result — the policy never errors and never runs unbounded.
//!
//! # Determinism
//!
//! With [`PortfolioConfig::time_budget`] unset (the default), every
//! decision is a function of the instance and the node fuel alone, so
//! batch reports are byte-identical at any worker count — the same
//! contract the [`crate::batch`] driver ships under. A wall-clock
//! budget adds a hard latency guard but makes the escalation outcome
//! machine-dependent; use it in latency-sensitive deployments, not in
//! reproducibility checks.
//!
//! # Example
//!
//! ```
//! use lra_core::portfolio::{Portfolio, PortfolioConfig};
//! use lra_core::problem::{Allocator, Instance};
//! use lra_graph::{Graph, WeightedGraph};
//!
//! // C5 is 3-chromatic: with 2 registers someone must spill.
//! let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
//! let inst = Instance::from_weighted_graph(WeightedGraph::new(c5, vec![5, 4, 3, 2, 1]));
//! let policy = Portfolio::new(PortfolioConfig::default()).unwrap();
//! let a = policy.allocate(&inst, 2);
//! assert_eq!(a.spill_cost, 1); // the exact tier certifies the optimum
//! ```

use crate::cache::{InstanceKey, ResultCache};
use crate::cluster::LayeredHeuristic;
use crate::driver::PipelineError;
use crate::optimal::{scaled_node_fuel, Optimal, SolveBudget};
use crate::problem::{Allocation, Allocator, Instance};
use crate::registry::{AllocatorRegistry, AllocatorSpec};
use std::sync::OnceLock;
use std::time::Duration;

/// Configuration for the [`Portfolio`] policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Registry name of the cheap first-tier allocator. Defaults to
    /// `LH`, which accepts any interference graph. If the named
    /// allocator cannot run on a given instance (it needs intervals or
    /// chordality the instance lacks), the policy substitutes `LH` for
    /// that instance instead of failing.
    pub cheap: String,
    /// Deterministic node fuel for the exact escalation, per
    /// [`SolveBudget::node_limit`]. `0` disables escalation entirely.
    /// Ignored while [`PortfolioConfig::adaptive`] is set — the fuel
    /// is then [`scaled_node_fuel`]`(n_temps)` instead.
    pub node_budget: u64,
    /// Size-adaptive fuel (the default): each escalation runs under
    /// [`SolveBudget::scaled_for`] the instance's vertex count, so
    /// small methods certify while huge ones keep a hard latency lid.
    /// Setting an explicit [`PortfolioConfig::node_budget`] turns
    /// this off. Fuel stays a pure function of the instance, so
    /// adaptive budgets keep the thread-count byte-identity contract.
    pub adaptive: bool,
    /// Optional wall-clock budget for the exact escalation. `None`
    /// (the default) keeps the policy fully deterministic;
    /// `Some(Duration::ZERO)` — an already-expired budget — degrades
    /// every decision to the cheap tier.
    pub time_budget: Option<Duration>,
    /// Memoize decisions in the process-wide [`portfolio_cache`]
    /// (default `true`): a batch re-submitting an identical method —
    /// or a spill loop reproducing an identical instance — skips both
    /// tiers entirely. Exact-keyed, so results are byte-identical with
    /// the cache on or off; disable only to measure raw solver time.
    /// Queries carrying a wall-clock [`PortfolioConfig::time_budget`]
    /// are never memoized — their outcomes are timing-dependent, and
    /// caching one would freeze a machine-speed artefact.
    pub cache: bool,
    /// Lets the pipeline escalate a stalled spill loop into the
    /// split + rematerialization tier
    /// ([`crate::driver::AllocationPipeline::escalation`]); default
    /// `true`. The knob lives here so a portfolio-driven batch carries
    /// one self-describing configuration, and it is part of the
    /// [`InstanceKey`] so cached decisions never leak across
    /// configurations that rewrite functions differently. Overridden
    /// by the `LRA_NO_SPLIT` environment escape hatch
    /// ([`crate::driver::escalation_forced_off`]).
    pub split_remat: bool,
}

/// Default node fuel for **non-adaptive** configurations: enough for
/// the exact solver to finish on JVM98-sized methods (tens of
/// temporaries) and to improve a useful fraction of larger ones,
/// while keeping the worst case at a few milliseconds per function.
pub const DEFAULT_NODE_BUDGET: u64 = 100_000;

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            cheap: "LH".to_string(),
            node_budget: DEFAULT_NODE_BUDGET,
            adaptive: true,
            time_budget: None,
            cache: true,
            split_remat: true,
        }
    }
}

impl PortfolioConfig {
    /// Selects the cheap first-tier allocator by registry name.
    pub fn cheap(mut self, name: impl Into<String>) -> Self {
        self.cheap = name.into();
        self
    }

    /// Sets an explicit deterministic node fuel for the exact
    /// escalation, turning size-adaptive scaling **off** (an explicit
    /// fuel is a reproducibility pin; silently rescaling it would
    /// defeat the point).
    pub fn node_budget(mut self, nodes: u64) -> Self {
        self.node_budget = nodes;
        self.adaptive = false;
        self
    }

    /// Enables or disables size-adaptive fuel
    /// ([`PortfolioConfig::adaptive`]).
    pub fn adaptive_budget(mut self, enabled: bool) -> Self {
        self.adaptive = enabled;
        self
    }

    /// The fuel one escalation over an `n_temps`-vertex instance runs
    /// under: [`scaled_node_fuel`] when adaptive, the configured
    /// [`PortfolioConfig::node_budget`] otherwise.
    pub fn effective_node_budget(&self, n_temps: usize) -> u64 {
        if self.adaptive {
            scaled_node_fuel(n_temps)
        } else {
            self.node_budget
        }
    }

    /// Sets (or clears) the wall-clock budget for the exact
    /// escalation.
    pub fn time_budget(mut self, d: Option<Duration>) -> Self {
        self.time_budget = d;
        self
    }

    /// Enables or disables the process-wide result cache
    /// ([`portfolio_cache`]).
    pub fn cache(mut self, enabled: bool) -> Self {
        self.cache = enabled;
        self
    }

    /// Enables or disables the pipeline's split + rematerialization
    /// escalation tier ([`PortfolioConfig::split_remat`]).
    pub fn split_remat(mut self, enabled: bool) -> Self {
        self.split_remat = enabled;
        self
    }
}

/// Entries the process-wide portfolio cache holds before clearing
/// wholesale. Sized for a large batch's worth of distinct methods ×
/// spill rounds; at ~200-temporary instances one entry is a few KiB.
pub const PORTFOLIO_CACHE_CAPACITY: usize = 1024;

/// The process-wide memo table behind [`PortfolioConfig::cache`]:
/// shared by every [`Portfolio`] in the process (the batch driver
/// builds one pipeline — and thus one policy — per function, so a
/// per-policy cache would never see the cross-function repeats the
/// ROADMAP's result-cache item targets). Exact-keyed on the full
/// instance plus every decision-relevant config knob, so sharing never
/// changes an output byte.
pub fn portfolio_cache() -> &'static ResultCache<PortfolioOutcome> {
    static CACHE: OnceLock<ResultCache<PortfolioOutcome>> = OnceLock::new();
    CACHE.get_or_init(|| ResultCache::new(PORTFOLIO_CACHE_CAPACITY))
}

/// Where a [`PortfolioOutcome`]'s final allocation came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortfolioSource {
    /// The cheap tier's result was kept (no escalation, an exhausted
    /// budget, or an exact result that was no better).
    Cheap,
    /// The exact tier found a strictly cheaper allocation.
    Exact,
}

/// The full decision record of one [`Portfolio::decide`] call — what
/// the cheap tier cost, whether the policy escalated, and whether the
/// exact solver finished inside the budget.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The allocation the policy settled on.
    pub allocation: Allocation,
    /// Spill cost of the cheap tier's allocation.
    pub cheap_cost: lra_graph::Cost,
    /// `true` if the exact tier was attempted.
    pub escalated: bool,
    /// `true` if the exact tier ran to completion within the budget —
    /// the final allocation is then a certified optimum (whether or
    /// not it beat the cheap one).
    pub certified: bool,
    /// Which tier produced [`PortfolioOutcome::allocation`].
    pub source: PortfolioSource,
}

/// The two-tier budget-bounded allocator. See the [module docs](self).
pub struct Portfolio {
    cfg: PortfolioConfig,
    cheap_spec: &'static AllocatorSpec,
    cheap: Box<dyn Allocator>,
    fallback: LayeredHeuristic,
    exact: Optimal,
}

impl std::fmt::Debug for Portfolio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Portfolio")
            .field("cfg", &self.cfg)
            .field("cheap", &self.cheap_spec.name)
            .finish()
    }
}

impl Portfolio {
    /// Builds the policy, resolving the cheap tier from the registry.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::UnknownAllocator`] if
    /// [`PortfolioConfig::cheap`] names no registered allocator.
    pub fn new(cfg: PortfolioConfig) -> Result<Self, PipelineError> {
        let cheap_spec = AllocatorRegistry::spec(&cfg.cheap)
            .ok_or_else(|| PipelineError::UnknownAllocator(cfg.cheap.clone()))?;
        Ok(Portfolio {
            cheap: cheap_spec.build(),
            cheap_spec,
            fallback: LayeredHeuristic::new(),
            exact: Optimal::new(),
            cfg,
        })
    }

    /// The policy's configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.cfg
    }

    /// The cheap tier for `instance`: the configured allocator when
    /// its structural requirements hold, `LH` otherwise.
    fn cheap_for(&self, instance: &Instance) -> &dyn Allocator {
        let unusable = (self.cheap_spec.needs_chordal && !instance.is_chordal())
            || (self.cheap_spec.needs_intervals && instance.intervals().is_none());
        if unusable {
            &self.fallback
        } else {
            self.cheap.as_ref()
        }
    }

    /// Runs the full policy and returns the decision record; see the
    /// [module docs](self) for the escalation rule. With
    /// [`PortfolioConfig::cache`] set, an instance already decided
    /// anywhere in the process under the same configuration returns
    /// its memoized (bit-identical) outcome without running either
    /// tier.
    pub fn decide(&self, instance: &Instance, r: u32) -> PortfolioOutcome {
        // A wall-clock budget makes the decision timing-dependent;
        // memoizing it would freeze one machine-speed-dependent
        // outcome for the whole process, so those queries always
        // re-solve (they are already outside the determinism
        // contract, but the cache must never *change* behaviour).
        if !self.cfg.cache || self.cfg.time_budget.is_some() {
            return self.decide_uncached(instance, r);
        }
        // The key must carry the fuel the escalation would actually
        // run under: with adaptive budgets that is the size-scaled
        // fuel, which differs per instance (and from the unused
        // `node_budget` field).
        let key = InstanceKey::new(
            instance,
            r,
            self.cheap_spec.name,
            self.cfg.effective_node_budget(instance.vertex_count()),
            self.cfg.time_budget,
            self.cfg.split_remat,
        );
        if let Some(hit) = portfolio_cache().get(&key) {
            return hit;
        }
        let outcome = self.decide_uncached(instance, r);
        portfolio_cache().insert(key, outcome.clone());
        outcome
    }

    fn decide_uncached(&self, instance: &Instance, r: u32) -> PortfolioOutcome {
        let cheap = self.cheap_for(instance).allocate(instance, r);
        let cheap_cost = cheap.spill_cost;
        let fuel = self.cfg.effective_node_budget(instance.vertex_count());
        let escalate = cheap_cost > 0 && fuel > 0 && self.cfg.time_budget != Some(Duration::ZERO);
        if !escalate {
            return PortfolioOutcome {
                allocation: cheap,
                cheap_cost,
                escalated: false,
                certified: false,
                source: PortfolioSource::Cheap,
            };
        }
        // The fuel *granted* to the exact tier, recorded at the
        // escalation decision: the solvers do not uniformly report
        // consumed nodes, and the grant is what the budget policy
        // actually controls.
        crate::trace::add_fuel(fuel);
        let budget = SolveBudget::nodes(fuel).with_time(self.cfg.time_budget);
        match self.exact.try_allocate(instance, r, &budget) {
            Some(exact) if exact.spill_cost < cheap_cost => PortfolioOutcome {
                allocation: exact,
                cheap_cost,
                escalated: true,
                certified: true,
                source: PortfolioSource::Exact,
            },
            Some(_) => PortfolioOutcome {
                // The exact solver certified that the cheap result is
                // already optimal (or tied); keep the cheap allocation
                // so the outcome is independent of solver tie-breaks.
                allocation: cheap,
                cheap_cost,
                escalated: true,
                certified: true,
                source: PortfolioSource::Cheap,
            },
            None => PortfolioOutcome {
                allocation: cheap,
                cheap_cost,
                escalated: true,
                certified: false,
                source: PortfolioSource::Cheap,
            },
        }
    }
}

impl Allocator for Portfolio {
    fn name(&self) -> &'static str {
        "Portfolio"
    }

    fn allocate(&self, instance: &Instance, r: u32) -> Allocation {
        self.decide(instance, r).allocation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_graph::{Graph, WeightedGraph};

    fn c5() -> Instance {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        Instance::from_weighted_graph(WeightedGraph::new(g, vec![5, 4, 3, 2, 1]))
    }

    #[test]
    fn unknown_cheap_allocator_is_an_error() {
        let err = Portfolio::new(PortfolioConfig::default().cheap("XXL")).unwrap_err();
        assert!(matches!(err, PipelineError::UnknownAllocator(_)));
    }

    #[test]
    fn escalation_certifies_the_optimum_within_budget() {
        let p = Portfolio::new(PortfolioConfig::default()).unwrap();
        let out = p.decide(&c5(), 2);
        assert!(out.escalated);
        assert!(out.certified);
        assert_eq!(out.allocation.spill_cost, 1);
        assert!(out.allocation.spill_cost <= out.cheap_cost);
    }

    #[test]
    fn zero_node_budget_degrades_to_the_cheap_tier() {
        let cheap_only = Portfolio::new(PortfolioConfig::default().node_budget(0)).unwrap();
        let out = cheap_only.decide(&c5(), 2);
        assert!(!out.escalated);
        assert_eq!(out.source, PortfolioSource::Cheap);
        // Byte-equal to running the cheap allocator directly.
        let direct = LayeredHeuristic::new().allocate(&c5(), 2);
        assert_eq!(out.allocation, direct);
    }

    #[test]
    fn expired_time_budget_degrades_to_the_cheap_tier() {
        let p =
            Portfolio::new(PortfolioConfig::default().time_budget(Some(Duration::ZERO))).unwrap();
        let out = p.decide(&c5(), 2);
        assert!(!out.escalated);
        let direct = LayeredHeuristic::new().allocate(&c5(), 2);
        assert_eq!(out.allocation, direct);
    }

    #[test]
    fn tiny_fuel_keeps_the_cheap_result_without_erroring() {
        let p = Portfolio::new(PortfolioConfig::default().node_budget(1)).unwrap();
        let out = p.decide(&c5(), 2);
        assert!(out.escalated);
        assert!(!out.certified);
        assert_eq!(out.source, PortfolioSource::Cheap);
    }

    #[test]
    fn zero_spill_cheap_result_never_escalates() {
        // Edgeless graph: the cheap tier allocates everything.
        let inst = Instance::from_weighted_graph(WeightedGraph::new(Graph::empty(4), vec![1; 4]));
        let p = Portfolio::new(PortfolioConfig::default()).unwrap();
        let out = p.decide(&inst, 1);
        assert!(!out.escalated);
        assert_eq!(out.allocation.spill_cost, 0);
    }

    #[test]
    fn chordal_only_cheap_tier_falls_back_on_general_graphs() {
        // BFPL needs a PEO; on the non-chordal C5 the policy must
        // substitute LH rather than panic.
        let p = Portfolio::new(PortfolioConfig::default().cheap("BFPL")).unwrap();
        let out = p.decide(&c5(), 2);
        assert!(out.allocation.spill_cost <= out.cheap_cost);
    }

    #[test]
    fn exact_tier_wins_when_the_cheap_tier_is_suboptimal() {
        use lra_graph::generate;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;
        // Deterministic scan of small random general graphs for ones
        // where LH leaves cost on the table (the paper's Figure 14
        // guarantees they exist); the exact tier must take those.
        let p = Portfolio::new(PortfolioConfig::default().node_budget(1_000_000)).unwrap();
        let mut wins = 0;
        for seed in 0..100u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generate::random_general(&mut rng, 12, 30);
            let w = generate::random_weights(&mut rng, 12, 2);
            let inst = Instance::from_weighted_graph(lra_graph::WeightedGraph::new(g, w));
            let out = p.decide(&inst, 2);
            assert!(out.allocation.spill_cost <= out.cheap_cost);
            if out.source == PortfolioSource::Exact {
                assert!(out.certified);
                assert!(out.allocation.spill_cost < out.cheap_cost);
                wins += 1;
            }
        }
        assert!(
            wins > 0,
            "no instance where the exact tier beat LH in 100 draws"
        );
    }

    fn outcomes_equal(a: &PortfolioOutcome, b: &PortfolioOutcome) -> bool {
        a.allocation == b.allocation
            && a.cheap_cost == b.cheap_cost
            && a.escalated == b.escalated
            && a.certified == b.certified
            && a.source == b.source
    }

    #[test]
    fn cached_decisions_are_byte_identical_to_fresh_ones() {
        // Unusual weights so no other test shares this cache entry.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let inst =
            Instance::from_weighted_graph(WeightedGraph::new(g, vec![7001, 7002, 7003, 7004, 1]));
        let cached = Portfolio::new(PortfolioConfig::default()).unwrap();
        let uncached = Portfolio::new(PortfolioConfig::default().cache(false)).unwrap();
        let first = cached.decide(&inst, 2);
        let second = cached.decide(&inst, 2); // memo hit
        let reference = uncached.decide(&inst, 2); // never touches the cache
        assert!(outcomes_equal(&first, &second));
        assert!(outcomes_equal(&first, &reference));
        assert!(!portfolio_cache().is_empty());
    }

    #[test]
    fn cache_hits_skip_resolving_repeated_instances() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mk = || Instance::from_weighted_graph(WeightedGraph::new(g.clone(), vec![9901; 4]));
        let p = Portfolio::new(PortfolioConfig::default()).unwrap();
        let _ = p.decide(&mk(), 1);
        let h0 = portfolio_cache().stats().hits;
        // Two independently built but identical instances: both must
        // hit the entry the first decide created.
        let _ = p.decide(&mk(), 1);
        let _ = p.decide(&mk(), 1);
        let h1 = portfolio_cache().stats().hits;
        assert!(h1 >= h0 + 2, "expected 2 more hits ({h0} -> {h1})");
    }

    #[test]
    fn time_budgeted_decisions_are_never_memoized() {
        use crate::cache::InstanceKey;
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let inst =
            Instance::from_weighted_graph(WeightedGraph::new(g, vec![6601, 6602, 6603, 6604, 1]));
        let cfg = PortfolioConfig::default().time_budget(Some(Duration::from_secs(1000)));
        let p = Portfolio::new(cfg.clone()).unwrap();
        let out = p.decide(&inst, 2);
        assert!(out.escalated);
        let key = InstanceKey::new(
            &inst,
            2,
            "LH",
            cfg.effective_node_budget(inst.vertex_count()),
            cfg.time_budget,
            cfg.split_remat,
        );
        assert!(
            portfolio_cache().get(&key).is_none(),
            "timing-dependent outcome must not be cached"
        );
    }

    #[test]
    fn different_budgets_never_share_cache_entries() {
        // Same instance, tiny vs default fuel: the tiny-fuel decision
        // (uncertified) must not be served to the default-fuel policy.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mk = || {
            Instance::from_weighted_graph(WeightedGraph::new(
                g.clone(),
                vec![8101, 8102, 8103, 8104, 1],
            ))
        };
        let tiny = Portfolio::new(PortfolioConfig::default().node_budget(1)).unwrap();
        let full = Portfolio::new(PortfolioConfig::default()).unwrap();
        let t = tiny.decide(&mk(), 2);
        let f = full.decide(&mk(), 2);
        assert!(!t.certified);
        assert!(f.certified);
        assert_eq!(f.allocation.spill_cost, 1);
    }

    #[test]
    fn default_config_is_adaptive_and_explicit_fuel_is_not() {
        let adaptive = PortfolioConfig::default();
        assert!(adaptive.adaptive);
        assert_eq!(adaptive.effective_node_budget(5), scaled_node_fuel(5));
        assert_eq!(adaptive.effective_node_budget(300), scaled_node_fuel(300));
        let pinned = PortfolioConfig::default().node_budget(12_345);
        assert!(!pinned.adaptive, "an explicit fuel pins the budget");
        assert_eq!(pinned.effective_node_budget(5), 12_345);
        assert_eq!(pinned.effective_node_budget(300), 12_345);
        let back_on = pinned.adaptive_budget(true);
        assert_eq!(back_on.effective_node_budget(300), scaled_node_fuel(300));
    }

    #[test]
    fn adaptive_decisions_match_the_equivalent_explicit_fuel() {
        // Adaptive fuel is just scaled_node_fuel(n) — a decision under
        // the default adaptive config must be bit-identical to one
        // under that fuel pinned explicitly (caches off so both solve).
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let inst =
            Instance::from_weighted_graph(WeightedGraph::new(g, vec![4301, 4302, 4303, 4304, 1]));
        let adaptive = Portfolio::new(PortfolioConfig::default().cache(false)).unwrap();
        let pinned = Portfolio::new(
            PortfolioConfig::default()
                .node_budget(scaled_node_fuel(inst.vertex_count()))
                .cache(false),
        )
        .unwrap();
        let a = adaptive.decide(&inst, 2);
        let b = pinned.decide(&inst, 2);
        assert!(outcomes_equal(&a, &b));
        assert!(a.escalated && a.certified);
    }

    #[test]
    fn portfolio_is_registered() {
        assert!(AllocatorRegistry::get("Portfolio").is_some());
        assert!(AllocatorRegistry::get("portfolio").is_some());
    }
}
