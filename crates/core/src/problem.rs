//! Spill-everywhere problem instances and allocation results.
//!
//! An [`Instance`] is a weighted interference graph, optionally enriched
//! with structure the solvers can exploit: a perfect elimination order
//! (present exactly when the graph is chordal — the SSA case) and the
//! live intervals of a linearised program (the linear-scan view, present
//! when the instance was built from intervals).
//!
//! Allocators return an [`Allocation`]: the set of variables kept in
//! registers; everything else is spilled, and the **allocation cost** is
//! the total spill cost of the spilled variables — the quantity every
//! figure of the paper reports (normalised to the optimum).

use lra_graph::{cliques, peo, BitSet, Cost, Graph, Interval, Vertex, WeightedGraph};

/// A spill-everywhere problem instance.
#[derive(Clone, Debug)]
pub struct Instance {
    wg: WeightedGraph,
    peo: Option<Vec<Vertex>>,
    intervals: Option<Vec<Interval>>,
    // OnceLock (not cell::OnceCell) so instances stay Sync and can be
    // shared across the `crate::batch` worker pool.
    cliques: std::sync::OnceLock<Option<Vec<Vec<Vertex>>>>,
}

impl Instance {
    /// Wraps a weighted graph, detecting chordality (and caching a PEO).
    pub fn from_weighted_graph(wg: WeightedGraph) -> Self {
        let order = peo::perfect_elimination_order(wg.graph());
        Instance {
            wg,
            peo: order,
            intervals: None,
            cliques: std::sync::OnceLock::new(),
        }
    }

    /// Builds an instance from live intervals and per-variable weights.
    ///
    /// The graph is the interval-intersection graph; a PEO (by
    /// increasing right end point) comes for free.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != intervals.len()`.
    pub fn from_intervals(intervals: Vec<Interval>, weights: Vec<Cost>) -> Self {
        assert_eq!(intervals.len(), weights.len(), "one weight per interval");
        let g = lra_graph::interval::interval_graph(&intervals);
        let order = lra_graph::interval::interval_peo(&intervals);
        debug_assert!(peo::is_perfect_elimination_order(&g, &order));
        Instance {
            wg: WeightedGraph::new(g, weights),
            peo: Some(order),
            intervals: Some(intervals),
            cliques: std::sync::OnceLock::new(),
        }
    }

    /// The weighted interference graph.
    pub fn weighted_graph(&self) -> &WeightedGraph {
        &self.wg
    }

    /// The unweighted interference graph.
    pub fn graph(&self) -> &Graph {
        self.wg.graph()
    }

    /// Number of variables.
    pub fn vertex_count(&self) -> usize {
        self.wg.vertex_count()
    }

    /// `true` if the interference graph is chordal (SSA instances).
    pub fn is_chordal(&self) -> bool {
        self.peo.is_some()
    }

    /// A perfect elimination order, when the graph is chordal.
    pub fn peo(&self) -> Option<&[Vertex]> {
        self.peo.as_deref()
    }

    /// The live intervals, when the instance came from a linearised
    /// program.
    pub fn intervals(&self) -> Option<&[Interval]> {
        self.intervals.as_deref()
    }

    /// The maximal cliques of a chordal instance (computed once and
    /// cached); `None` for non-chordal instances.
    pub fn maximal_cliques(&self) -> Option<&[Vec<Vertex>]> {
        self.cliques
            .get_or_init(|| {
                self.peo
                    .as_ref()
                    .map(|order| cliques::maximal_cliques(self.wg.graph(), order))
            })
            .as_deref()
    }

    /// MaxLive: the size of the largest clique for chordal instances
    /// (equal to the chromatic number); for general instances, a greedy
    /// clique lower bound.
    pub fn max_live(&self) -> usize {
        match (&self.peo, &self.intervals) {
            (_, Some(ivs)) => lra_graph::interval::max_overlap(ivs),
            (Some(order), None) => cliques::max_clique_size(self.wg.graph(), order),
            (None, None) => {
                // Greedy clique heuristic (lower bound on ω).
                let g = self.wg.graph();
                let mut best = usize::from(g.vertex_count() > 0);
                for v in 0..g.vertex_count() {
                    let mut clique = vec![v];
                    for u in g.neighbor_indices(v) {
                        let u = *u as usize;
                        if clique.iter().all(|&c| g.has_edge(c, u)) {
                            clique.push(u);
                        }
                    }
                    best = best.max(clique.len());
                }
                best
            }
        }
    }

    /// Total weight of all variables (the cost of spilling everything).
    pub fn total_weight(&self) -> Cost {
        self.wg.total_weight()
    }

    /// Builds the [`Allocation`] that keeps exactly `allocated` in
    /// registers.
    pub fn allocation_from_set(&self, allocated: BitSet) -> Allocation {
        let allocated_weight = self.wg.weight_of_set(&allocated);
        Allocation {
            spill_cost: self.total_weight() - allocated_weight,
            allocated_weight,
            allocated,
        }
    }
}

/// The outcome of an allocator on an [`Instance`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allocation {
    /// Variables kept in registers.
    pub allocated: BitSet,
    /// Total spill cost of the variables *not* in `allocated` — the
    /// paper's allocation cost.
    pub spill_cost: Cost,
    /// Total weight of the allocated variables (the dual view).
    pub allocated_weight: Cost,
}

impl Allocation {
    /// Number of spilled variables.
    pub fn spilled_count(&self, instance: &Instance) -> usize {
        instance.vertex_count() - self.allocated.len()
    }

    /// The spilled variables, as a bit set.
    pub fn spilled_set(&self, instance: &Instance) -> BitSet {
        let mut s = BitSet::full(instance.vertex_count());
        s.difference_with(&self.allocated);
        s
    }
}

/// A spill-everywhere allocator: selects the variables to keep in
/// registers given `r` available registers.
///
/// Implementations must return a *feasible* allocation: the subgraph
/// induced by the allocated set must be `r`-colourable (see
/// [`crate::verify`]).
pub trait Allocator {
    /// Short name used in experiment tables (`GC`, `NL`, `BFPL`, …).
    fn name(&self) -> &'static str;

    /// Solves `instance` with `r` registers.
    fn allocate(&self, instance: &Instance, r: u32) -> Allocation;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_graph::Graph;

    fn triangle_instance() -> Instance {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        Instance::from_weighted_graph(WeightedGraph::new(g, vec![4, 5, 6]))
    }

    #[test]
    fn chordal_detection_and_cliques() {
        let inst = triangle_instance();
        assert!(inst.is_chordal());
        assert_eq!(inst.maximal_cliques().unwrap().len(), 1);
        assert_eq!(inst.max_live(), 3);
    }

    #[test]
    fn non_chordal_instance() {
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let inst = Instance::from_weighted_graph(WeightedGraph::unit(c4));
        assert!(!inst.is_chordal());
        assert!(inst.peo().is_none());
        assert!(inst.maximal_cliques().is_none());
        assert_eq!(inst.max_live(), 2); // greedy clique bound
    }

    #[test]
    fn interval_instance_has_everything() {
        let ivs = vec![
            Interval::new(0, 4),
            Interval::new(2, 6),
            Interval::new(5, 8),
        ];
        let inst = Instance::from_intervals(ivs, vec![1, 2, 3]);
        assert!(inst.is_chordal());
        assert!(inst.intervals().is_some());
        assert_eq!(inst.max_live(), 2);
        assert_eq!(inst.total_weight(), 6);
    }

    #[test]
    fn allocation_costs_are_complementary() {
        let inst = triangle_instance();
        let alloc = inst.allocation_from_set(BitSet::from_iter_with_capacity(3, [1]));
        assert_eq!(alloc.allocated_weight, 5);
        assert_eq!(alloc.spill_cost, 10);
        assert_eq!(alloc.spilled_count(&inst), 2);
        let spilled = alloc.spilled_set(&inst);
        assert!(spilled.contains(0) && spilled.contains(2) && !spilled.contains(1));
    }

    #[test]
    #[should_panic(expected = "one weight per interval")]
    fn interval_weight_mismatch_panics() {
        let _ = Instance::from_intervals(vec![Interval::new(0, 1)], vec![1, 2]);
    }
}
