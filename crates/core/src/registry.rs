//! Central registry of every allocator in the workspace.
//!
//! The experiment runners, examples and the [`crate::driver`] pipeline
//! all select allocators **by name** through this registry, so the list
//! of available algorithms lives in exactly one place. Each entry
//! carries the metadata the callers need to drive the allocator
//! correctly: whether it requires the linearised-interval instance view
//! (the linear scans) and whether it requires a chordal interference
//! graph (the layered family built on Frank's algorithm).

use crate::baselines::{BeladyLinearScan, ChaitinBriggs, LinearScan};
use crate::cluster::LayeredHeuristic;
use crate::layered::Layered;
use crate::optimal::Optimal;
use crate::portfolio::{Portfolio, PortfolioConfig};
use crate::problem::Allocator;

/// Metadata and constructor for one registered allocator.
pub struct AllocatorSpec {
    /// Canonical short name (`NL`, `BFPL`, `Optimal`, …).
    pub name: &'static str,
    /// One-line description for help texts and the README table.
    pub description: &'static str,
    /// `true` if the allocator only works on instances that carry live
    /// intervals (built with
    /// [`crate::pipeline::InstanceKind::LinearIntervals`]).
    pub needs_intervals: bool,
    /// `true` if the allocator requires a chordal interference graph
    /// (a perfect elimination order) — the SSA guarantee.
    pub needs_chordal: bool,
    build: fn() -> Box<dyn Allocator>,
}

impl AllocatorSpec {
    /// Instantiates the allocator with its default configuration.
    pub fn build(&self) -> Box<dyn Allocator> {
        (self.build)()
    }

    /// The instance view this allocator should run on by default: the
    /// interval view when it demands intervals, the precise graph
    /// otherwise.
    pub fn default_kind(&self) -> crate::pipeline::InstanceKind {
        if self.needs_intervals {
            crate::pipeline::InstanceKind::LinearIntervals
        } else {
            crate::pipeline::InstanceKind::PreciseGraph
        }
    }
}

impl std::fmt::Debug for AllocatorSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AllocatorSpec")
            .field("name", &self.name)
            .field("needs_intervals", &self.needs_intervals)
            .field("needs_chordal", &self.needs_chordal)
            .finish()
    }
}

/// The static allocator table — one row per algorithm of the paper.
static SPECS: &[AllocatorSpec] = &[
    AllocatorSpec {
        name: "NL",
        description: "naive layered allocation (Algorithm 2)",
        needs_intervals: false,
        needs_chordal: true,
        build: || Box::new(Layered::nl()),
    },
    AllocatorSpec {
        name: "BL",
        description: "layered with biased weights (§4.1)",
        needs_intervals: false,
        needs_chordal: true,
        build: || Box::new(Layered::bl()),
    },
    AllocatorSpec {
        name: "FPL",
        description: "layered iterated to a fixed point (§4.2)",
        needs_intervals: false,
        needs_chordal: true,
        build: || Box::new(Layered::fpl()),
    },
    AllocatorSpec {
        name: "BFPL",
        description: "biased fixed-point layered (§4.1 + §4.2)",
        needs_intervals: false,
        needs_chordal: true,
        build: || Box::new(Layered::bfpl()),
    },
    AllocatorSpec {
        name: "LH",
        description: "clustered layered heuristic for general graphs (§5)",
        needs_intervals: false,
        needs_chordal: false,
        build: || Box::new(LayeredHeuristic::new()),
    },
    AllocatorSpec {
        name: "GC",
        description: "Chaitin–Briggs optimistic graph colouring baseline",
        needs_intervals: false,
        needs_chordal: false,
        build: || Box::new(ChaitinBriggs::new()),
    },
    AllocatorSpec {
        name: "DLS",
        description: "JIT-style linear scan over live intervals",
        needs_intervals: true,
        needs_chordal: false,
        build: || Box::new(LinearScan::new()),
    },
    AllocatorSpec {
        name: "BLS",
        description: "Belady (furthest-use) linear scan over live intervals",
        needs_intervals: true,
        needs_chordal: false,
        build: || Box::new(BeladyLinearScan::new()),
    },
    AllocatorSpec {
        name: "Optimal",
        description: "certified exact solver (flow / clique-tree DP / branch-and-bound)",
        needs_intervals: false,
        needs_chordal: false,
        build: || Box::new(Optimal::new()),
    },
    AllocatorSpec {
        name: "Portfolio",
        description: "LH first, exact escalation under a work budget (portfolio policy)",
        needs_intervals: false,
        needs_chordal: false,
        build: || Box::new(Portfolio::new(PortfolioConfig::default()).expect("LH is registered")),
    },
];

/// The chordal-suite figure columns (Figures 8–13), in the paper's
/// column order.
pub const CHORDAL_FIGURE_SET: [&str; 6] = ["GC", "NL", "FPL", "BL", "BFPL", "Optimal"];

/// The JIT/JVM figure columns (Figures 14–15), in the paper's order.
pub const JVM_FIGURE_SET: [&str; 5] = ["DLS", "BLS", "GC", "LH", "Optimal"];

/// Name-based lookup over the allocator table.
pub struct AllocatorRegistry;

impl AllocatorRegistry {
    /// All registered specs, in table order.
    pub fn specs() -> &'static [AllocatorSpec] {
        SPECS
    }

    /// The registered names, in table order.
    pub fn names() -> Vec<&'static str> {
        SPECS.iter().map(|s| s.name).collect()
    }

    /// Looks up a spec by name (case-insensitive).
    pub fn spec(name: &str) -> Option<&'static AllocatorSpec> {
        SPECS.iter().find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Instantiates an allocator by name (case-insensitive).
    pub fn get(name: &str) -> Option<Box<dyn Allocator>> {
        Self::spec(name).map(|s| s.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_agrees_with_its_allocator() {
        for spec in AllocatorRegistry::specs() {
            let a = spec.build();
            assert_eq!(a.name(), spec.name, "registry name mismatch");
            assert!(AllocatorRegistry::get(spec.name).is_some());
        }
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert!(AllocatorRegistry::get("bfpl").is_some());
        assert!(AllocatorRegistry::get("OPTIMAL").is_some());
        assert!(AllocatorRegistry::get("nope").is_none());
    }

    #[test]
    fn figure_sets_are_subsets_of_the_registry() {
        for name in CHORDAL_FIGURE_SET.iter().chain(JVM_FIGURE_SET.iter()) {
            assert!(
                AllocatorRegistry::spec(name).is_some(),
                "figure column {name} missing from registry"
            );
        }
    }

    #[test]
    fn interval_requirements_marked() {
        assert!(AllocatorRegistry::spec("DLS").unwrap().needs_intervals);
        assert!(AllocatorRegistry::spec("BLS").unwrap().needs_intervals);
        assert!(!AllocatorRegistry::spec("GC").unwrap().needs_intervals);
        assert!(AllocatorRegistry::spec("NL").unwrap().needs_chordal);
        assert!(!AllocatorRegistry::spec("LH").unwrap().needs_chordal);
    }
}
