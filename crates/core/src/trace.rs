//! Deterministic, zero-dependency phase tracing for the allocation
//! pipeline.
//!
//! The recorder attributes wall time to the hierarchy the paper's
//! evaluation reasons about — pipeline → spill round → phase
//! (analysis, spill costs, instance build, allocate, verify, rewrite,
//! reanalyse) — plus the side counters a phase budget needs: fuel
//! granted to exact solves, per-round spill deltas, and result-cache
//! hit/miss attribution per shard.
//!
//! # Cost contract
//!
//! Tracing is **off by default** and costs exactly one relaxed atomic
//! load per instrumentation point while off ([`enabled`]). No
//! `Instant::now()` call, no thread-local access, no allocation
//! happens on a disabled probe. When enabled, all state lives in a
//! thread-local [`TraceReport`] collector, so recording never takes a
//! lock and never synchronises with other workers.
//!
//! # Determinism contract
//!
//! Tracing observes; it never steers. The pipeline's output bytes are
//! identical with tracing on and off (pinned by tests and the CI
//! trace-on/trace-off diff): the recorder only ever *reads* clocks and
//! *writes* side-channel state that no allocation decision consults.
//!
//! # Enabling
//!
//! Two doors, same switch:
//!
//! * the `LRA_TRACE` environment variable (any non-empty value other
//!   than `0`) arms tracing process-wide — the env is read once, on
//!   the first probe;
//! * [`arm`] returns an RAII guard arming tracing for its lifetime —
//!   the per-request door the service's `trace:true` requests and the
//!   `lra-bench profile` subcommand use.
//!
//! # Protocol
//!
//! A worker brackets each unit of work with [`begin`] … [`take`]:
//!
//! ```
//! use lra_core::trace;
//!
//! let _on = trace::arm();
//! trace::begin(false);
//! {
//!     let _span = trace::span(trace::Phase::Allocate);
//!     // ... allocate ...
//! }
//! let report = trace::take().expect("tracing is armed");
//! assert_eq!(report.phases[trace::Phase::Allocate as usize].count, 1);
//! ```
//!
//! [`span`] guards record per-phase wall time on drop; a span's
//! *self* time is its elapsed time minus its children's elapsed time,
//! so summing self time over all phases reproduces the bracketed wall
//! time without double counting.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

pub use crate::cache::CACHE_SHARDS;

/// The phases the recorder attributes time to, in pipeline order.
/// `Pipeline` and `Round` are the two container spans; their *self*
/// time is the orchestration overhead between their children.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// The whole `AllocationPipeline::run_with` call.
    Pipeline = 0,
    /// One allocate → rewrite → reanalyse round.
    Round = 1,
    /// The initial `FunctionAnalysis` (liveness + loop forest).
    Analysis = 2,
    /// Per-value spill cost estimation.
    SpillCosts = 3,
    /// Interference/interval instance construction.
    InstanceBuild = 4,
    /// The allocator proper (cheap tier and, inside a portfolio, the
    /// fuel-bounded exact tier).
    Allocate = 5,
    /// Feasibility verification of the round's allocation.
    Verify = 6,
    /// Spill code rewrite (stores/reloads/remats inserted).
    Rewrite = 7,
    /// Incremental (or forced-full) reanalysis after a rewrite.
    Reanalyse = 8,
    /// Escalation-tier preparation: liveness, pressure-range split,
    /// remat table mapping.
    EscalatePrep = 9,
}

/// Number of [`Phase`] variants (the length of per-phase arrays).
pub const PHASE_COUNT: usize = 10;

impl Phase {
    /// Every phase, in discriminant order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Pipeline,
        Phase::Round,
        Phase::Analysis,
        Phase::SpillCosts,
        Phase::InstanceBuild,
        Phase::Allocate,
        Phase::Verify,
        Phase::Rewrite,
        Phase::Reanalyse,
        Phase::EscalatePrep,
    ];

    /// The stable snake_case name used in reports, Prometheus labels
    /// and `BENCH_phases.json`.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Pipeline => "pipeline",
            Phase::Round => "round",
            Phase::Analysis => "analysis",
            Phase::SpillCosts => "spill_costs",
            Phase::InstanceBuild => "instance_build",
            Phase::Allocate => "allocate",
            Phase::Verify => "verify",
            Phase::Rewrite => "rewrite",
            Phase::Reanalyse => "reanalyse",
            Phase::EscalatePrep => "escalate_prep",
        }
    }
}

/// Sentinel: the armed counter has not yet been initialised from the
/// `LRA_TRACE` environment variable.
const UNINIT: u32 = u32::MAX;

/// How many reasons tracing is currently on: the env contributes 1,
/// each live [`ArmGuard`] contributes 1. `UNINIT` until first probed.
static ARMED: AtomicU32 = AtomicU32::new(UNINIT);

/// Whether `LRA_TRACE` requests tracing (non-empty and not `"0"`).
fn env_requests_trace() -> bool {
    std::env::var_os("LRA_TRACE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// The armed count, lazily initialised from the environment on first
/// use. Exactly one relaxed load on the fast path.
fn armed_count() -> u32 {
    let v = ARMED.load(Ordering::Relaxed);
    if v != UNINIT {
        return v;
    }
    let from_env = u32::from(env_requests_trace());
    match ARMED.compare_exchange(UNINIT, from_env, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => from_env,
        Err(current) => current,
    }
}

/// Whether tracing is currently armed. This is the disabled-path cost
/// of every probe: one relaxed atomic load (plus, once per process,
/// the lazy `LRA_TRACE` read).
#[inline]
pub fn enabled() -> bool {
    armed_count() > 0
}

/// Re-reads `LRA_TRACE` on the next probe, discarding the memoised
/// env decision (live [`ArmGuard`]s are discarded with it). Test-only
/// plumbing for exercising the env path; production code arms via
/// [`arm`] or the environment at process start.
#[doc(hidden)]
pub fn reset_for_tests() {
    ARMED.store(UNINIT, Ordering::Relaxed);
}

/// Arms tracing for the guard's lifetime (in addition to any other
/// arming reason). Used per-request by the service and per-run by the
/// profiler; guards nest freely across threads.
#[must_use = "tracing is armed only while the guard lives"]
pub fn arm() -> ArmGuard {
    armed_count(); // settle the lazy env init before counting up
    ARMED.fetch_add(1, Ordering::Relaxed);
    ArmGuard(())
}

/// RAII handle from [`arm`]; dropping it disarms that one reason.
pub struct ArmGuard(());

impl Drop for ArmGuard {
    fn drop(&mut self) {
        // fetch_update instead of fetch_sub: a test's reset_for_tests
        // may have re-sentineled the counter under us, and wrapping
        // below zero would arm tracing forever.
        let _ = ARMED.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            (v != UNINIT && v > 0).then(|| v - 1)
        });
    }
}

/// Wall time attributed to one [`Phase`] within a report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Spans of this phase that completed.
    pub count: u64,
    /// Total elapsed nanoseconds (children included).
    pub total_ns: u64,
    /// Self nanoseconds: elapsed minus the elapsed time of child
    /// spans. Summing `self_ns` over all phases reproduces the
    /// outermost span's elapsed time without double counting.
    pub self_ns: u64,
}

/// One completed span, kept only in detail mode (for the
/// chrome://tracing export). Timestamps are relative to [`begin`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// The span's phase.
    pub phase: Phase,
    /// Start offset from the collector's origin, in nanoseconds.
    pub start_ns: u64,
    /// Elapsed nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth (1 = outermost).
    pub depth: u16,
}

/// Everything one traced unit of work recorded. Returned by [`take`];
/// merged across items by [`TraceReport::merge`] for corpus-level
/// aggregation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Per-phase wall-time attribution, indexed by `Phase as usize`.
    pub phases: [PhaseStats; PHASE_COUNT],
    /// Allocation rounds recorded via [`add_round`].
    pub rounds: u64,
    /// Total spill cost charged across recorded rounds.
    pub spill_delta: u64,
    /// Exact-solve fuel (node budget) granted via [`add_fuel`].
    pub fuel: u64,
    /// Result-cache hits, per shard (see [`CACHE_SHARDS`]).
    pub shard_hits: [u64; CACHE_SHARDS],
    /// Result-cache misses, per shard.
    pub shard_misses: [u64; CACHE_SHARDS],
    /// Completed spans in completion order — populated only when the
    /// collector was started in detail mode ([`begin`] with `detail`).
    pub events: Vec<SpanEvent>,
}

impl TraceReport {
    /// Total cache hits across shards.
    pub fn cache_hits(&self) -> u64 {
        self.shard_hits.iter().sum()
    }

    /// Total cache misses across shards.
    pub fn cache_misses(&self) -> u64 {
        self.shard_misses.iter().sum()
    }

    /// Elapsed microseconds attributed to `phase` (children included).
    pub fn phase_total_us(&self, phase: Phase) -> u64 {
        self.phases[phase as usize].total_ns / 1_000
    }

    /// Self microseconds attributed to `phase`.
    pub fn phase_self_us(&self, phase: Phase) -> u64 {
        self.phases[phase as usize].self_ns / 1_000
    }

    /// Sum of self time over all phases, in nanoseconds — the traced
    /// wall time, free of double counting.
    pub fn total_self_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.self_ns).sum()
    }

    /// Folds `other` into `self` (counter-wise; `events` are per-item
    /// detail and deliberately not merged).
    pub fn merge(&mut self, other: &TraceReport) {
        for (into, from) in self.phases.iter_mut().zip(other.phases.iter()) {
            into.count += from.count;
            into.total_ns += from.total_ns;
            into.self_ns += from.self_ns;
        }
        self.rounds += other.rounds;
        self.spill_delta += other.spill_delta;
        self.fuel += other.fuel;
        for (into, from) in self.shard_hits.iter_mut().zip(other.shard_hits.iter()) {
            *into += from;
        }
        for (into, from) in self.shard_misses.iter_mut().zip(other.shard_misses.iter()) {
            *into += from;
        }
    }
}

/// The per-thread recorder. `child_ns[d]` accumulates the elapsed
/// time of completed children of the currently-open span at depth `d`.
struct Collector {
    active: bool,
    detail: bool,
    origin: Instant,
    depth: usize,
    child_ns: Vec<u64>,
    report: TraceReport,
}

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector {
        active: false,
        detail: false,
        origin: Instant::now(),
        depth: 0,
        child_ns: Vec::new(),
        report: TraceReport::default(),
    });
}

/// Starts collecting on this thread, discarding any previous
/// collection. With `detail` set, completed spans are additionally
/// kept as [`SpanEvent`]s (the chrome://tracing export's input);
/// without it only the aggregate counters accrue.
pub fn begin(detail: bool) {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        c.active = true;
        c.detail = detail;
        c.origin = Instant::now();
        c.depth = 0;
        c.child_ns.clear();
        c.report = TraceReport::default();
    });
}

/// Stops collecting on this thread and returns the report, or `None`
/// when no collection was active (tracing disarmed, or [`begin`] was
/// never called on this thread).
pub fn take() -> Option<TraceReport> {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        if !c.active {
            return None;
        }
        c.active = false;
        Some(std::mem::take(&mut c.report))
    })
}

/// An open phase span; records into the thread's collector on drop.
/// Inert (a no-op to create and drop) when tracing is disarmed or no
/// collection is active on this thread.
#[must_use = "a span measures the scope it is bound to"]
pub struct SpanGuard {
    live: Option<(Phase, Instant)>,
}

/// Opens a span of `phase`. One relaxed atomic load when tracing is
/// disarmed; otherwise the span clocks its scope and attributes the
/// elapsed/self time to `phase` when dropped.
pub fn span(phase: Phase) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    let live = COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        if !c.active {
            return None;
        }
        c.depth += 1;
        let d = c.depth;
        if c.child_ns.len() <= d {
            c.child_ns.resize(d + 1, 0);
        }
        c.child_ns[d] = 0;
        Some((phase, Instant::now()))
    });
    SpanGuard { live }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((phase, start)) = self.live else {
            return;
        };
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        COLLECTOR.with(|c| {
            let mut c = c.borrow_mut();
            // A begin() between open and drop reset the stack; this
            // guard's bookkeeping no longer applies.
            if !c.active || c.depth == 0 {
                return;
            }
            let d = c.depth;
            let child = c.child_ns[d];
            let stats = &mut c.report.phases[phase as usize];
            stats.count += 1;
            stats.total_ns += dur_ns;
            stats.self_ns += dur_ns.saturating_sub(child);
            c.child_ns[d - 1] += dur_ns;
            c.depth = d - 1;
            if c.detail {
                let start_ns =
                    u64::try_from(start.duration_since(c.origin).as_nanos()).unwrap_or(u64::MAX);
                c.report.events.push(SpanEvent {
                    phase,
                    start_ns,
                    dur_ns,
                    depth: d as u16,
                });
            }
        });
    }
}

/// Runs `record` against the active collector's report, if tracing is
/// armed and this thread is collecting.
fn with_report(record: impl FnOnce(&mut TraceReport)) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        if c.active {
            record(&mut c.report);
        }
    });
}

/// Records fuel (an exact-solve node budget) granted to this unit of
/// work.
pub fn add_fuel(nodes: u64) {
    with_report(|r| r.fuel += nodes);
}

/// Records one completed allocation round and the spill cost it
/// charged.
pub fn add_round(spill_cost: u64) {
    with_report(|r| {
        r.rounds += 1;
        r.spill_delta += spill_cost;
    });
}

/// Attributes one result-cache lookup to `shard`.
pub fn cache_access(shard: usize, hit: bool) {
    with_report(|r| {
        let counters = if hit {
            &mut r.shard_hits
        } else {
            &mut r.shard_misses
        };
        if let Some(c) = counters.get_mut(shard) {
            *c += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_probes_record_nothing() {
        // Whatever the process-wide state, an un-begun thread never
        // collects.
        {
            let _s = span(Phase::Allocate);
            add_fuel(10);
            add_round(5);
            cache_access(0, true);
        }
        assert_eq!(take(), None);
    }

    #[test]
    fn spans_attribute_self_time_to_the_right_phase() {
        let _on = arm();
        begin(false);
        {
            let _outer = span(Phase::Pipeline);
            {
                let _round = span(Phase::Round);
                {
                    let _inner = span(Phase::Allocate);
                    std::thread::sleep(Duration::from_millis(2));
                }
                {
                    let _inner = span(Phase::Verify);
                }
            }
            add_fuel(100_000);
            add_round(42);
            cache_access(3, true);
            cache_access(3, false);
            cache_access(CACHE_SHARDS + 5, true); // out of range: ignored
        }
        let r = take().expect("collection was active");
        assert_eq!(take(), None, "take() drains");

        let [pipeline, round, allocate, verify] = [
            r.phases[Phase::Pipeline as usize],
            r.phases[Phase::Round as usize],
            r.phases[Phase::Allocate as usize],
            r.phases[Phase::Verify as usize],
        ];
        assert_eq!(pipeline.count, 1);
        assert_eq!(round.count, 1);
        assert_eq!(allocate.count, 1);
        assert_eq!(verify.count, 1);
        assert!(allocate.total_ns >= 2_000_000, "slept 2ms inside allocate");
        assert_eq!(allocate.total_ns, allocate.self_ns, "leaf span: all self");
        // Containers: total covers children, self excludes them.
        assert!(round.total_ns >= allocate.total_ns + verify.total_ns);
        assert!(round.self_ns <= round.total_ns - allocate.total_ns);
        assert!(pipeline.total_ns >= round.total_ns);
        // Self times tile the outermost span exactly.
        assert_eq!(r.total_self_ns(), pipeline.total_ns);

        assert_eq!(r.fuel, 100_000);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.spill_delta, 42);
        assert_eq!(r.shard_hits[3], 1);
        assert_eq!(r.shard_misses[3], 1);
        assert_eq!(r.cache_hits(), 1);
        assert_eq!(r.cache_misses(), 1);
        assert!(r.events.is_empty(), "no detail requested");
    }

    #[test]
    fn detail_mode_keeps_span_events() {
        let _on = arm();
        begin(true);
        {
            let _outer = span(Phase::Pipeline);
            let _inner = span(Phase::Analysis);
        }
        let r = take().expect("collection was active");
        assert_eq!(r.events.len(), 2);
        // Completion order: inner closes first.
        assert_eq!(r.events[0].phase, Phase::Analysis);
        assert_eq!(r.events[0].depth, 2);
        assert_eq!(r.events[1].phase, Phase::Pipeline);
        assert_eq!(r.events[1].depth, 1);
        assert!(r.events[1].dur_ns >= r.events[0].dur_ns);
    }

    #[test]
    fn merge_sums_counters_and_ignores_events() {
        let mut a = TraceReport::default();
        a.phases[Phase::Allocate as usize] = PhaseStats {
            count: 2,
            total_ns: 100,
            self_ns: 80,
        };
        a.fuel = 7;
        a.shard_hits[1] = 3;
        let mut b = TraceReport {
            rounds: 4,
            spill_delta: 9,
            ..TraceReport::default()
        };
        b.phases[Phase::Allocate as usize] = PhaseStats {
            count: 1,
            total_ns: 50,
            self_ns: 50,
        };
        b.shard_misses[1] = 2;
        b.events.push(SpanEvent {
            phase: Phase::Allocate,
            start_ns: 0,
            dur_ns: 50,
            depth: 1,
        });
        a.merge(&b);
        let p = a.phases[Phase::Allocate as usize];
        assert_eq!((p.count, p.total_ns, p.self_ns), (3, 150, 130));
        assert_eq!(a.rounds, 4);
        assert_eq!(a.spill_delta, 9);
        assert_eq!(a.fuel, 7);
        assert_eq!(a.shard_hits[1], 3);
        assert_eq!(a.shard_misses[1], 2);
        assert!(a.events.is_empty());
    }

    #[test]
    fn arming_nests() {
        // Other tests in this binary arm() concurrently, so only the
        // monotone direction is assertable here: while any guard
        // lives, tracing is on. (Full disarm-on-drop is covered by
        // the byte-identity integration tests, which run the batch
        // path after their guards dropped.)
        let g1 = arm();
        assert!(enabled());
        let g2 = arm();
        drop(g1);
        assert!(enabled(), "still armed by g2");
        drop(g2);
    }

    #[test]
    fn phase_names_are_stable_and_distinct() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), PHASE_COUNT);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "discriminants index the arrays");
        }
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "names are unique");
    }
}
