//! Feasibility checking for allocations.
//!
//! An allocation with `R` registers is feasible when the subgraph
//! induced by the allocated variables is `R`-colourable — then the
//! assignment phase (tree-scan / greedy colouring) succeeds without
//! further spills.
//!
//! For chordal instances the check is exact and cheap: every maximal
//! clique must contain at most `R` allocated vertices. For general
//! graphs colourability is NP-complete; we use greedy colouring and
//! fall back to exhaustive search on small graphs.

use crate::problem::{Allocation, Instance};
use lra_graph::{coloring, BitSet};

/// The result of a feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// Definitely feasible, with a witness colouring (register
    /// assignment) for the allocated vertices.
    Feasible(Vec<u32>),
    /// Definitely infeasible: the named clique has more than `R`
    /// allocated members, or no colouring exists.
    Infeasible(String),
    /// Greedy colouring failed and the graph is too large for the exact
    /// check — feasibility unknown (only possible on large non-chordal
    /// instances).
    Unknown,
}

impl Feasibility {
    /// `true` for [`Feasibility::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible(_))
    }
}

/// Checks that `alloc` fits in `r` registers on `instance`.
pub fn check(instance: &Instance, alloc: &Allocation, r: u32) -> Feasibility {
    check_set(instance, &alloc.allocated, r)
}

/// Checks that the vertex set `allocated` induces an `r`-colourable
/// subgraph of the instance graph.
pub fn check_set(instance: &Instance, allocated: &BitSet, r: u32) -> Feasibility {
    let g = instance.graph();

    if let Some(cliques) = instance.maximal_cliques() {
        // Chordal: ω of the induced subgraph = max allocated per clique.
        for (i, clique) in cliques.iter().enumerate() {
            let inside = clique
                .iter()
                .filter(|v| allocated.contains(v.index()))
                .count();
            if inside > r as usize {
                return Feasibility::Infeasible(format!(
                    "maximal clique #{i} has {inside} allocated vertices for {r} registers"
                ));
            }
        }
        // Colour the allocated subgraph greedily along the reverse PEO
        // (the tree-scan assignment); this must succeed given the clique
        // check above.
        let order = instance.peo().expect("chordal instance has a PEO");
        let mut colors = vec![0u32; g.vertex_count()];
        let mut assigned = BitSet::new(g.vertex_count());
        for v in order.iter().rev() {
            let v = v.index();
            if !allocated.contains(v) {
                continue;
            }
            let mut used = vec![false; r as usize];
            for &u in g.neighbor_indices(v) {
                let u = u as usize;
                if assigned.contains(u) && (colors[u] as usize) < used.len() {
                    used[colors[u] as usize] = true;
                }
            }
            match used.iter().position(|&b| !b) {
                Some(c) => {
                    colors[v] = c as u32;
                    assigned.insert(v);
                }
                None => {
                    return Feasibility::Infeasible(
                        "greedy PEO colouring exceeded R on a chordal graph".into(),
                    )
                }
            }
        }
        return Feasibility::Feasible(colors);
    }

    // General graph: greedy colouring on the allocated subgraph, in
    // decreasing-degree order.
    let members: Vec<usize> = allocated.iter().collect();
    let mut order = members.clone();
    order.sort_by_key(|&v| std::cmp::Reverse(g.adjacent_count_in(v, allocated)));
    let mut colors: Vec<Option<u32>> = vec![None; g.vertex_count()];
    let mut greedy_ok = true;
    for &v in &order {
        let mut used = vec![false; r as usize];
        for &u in g.neighbor_indices(v) {
            if let Some(c) = colors[u as usize] {
                if (c as usize) < used.len() {
                    used[c as usize] = true;
                }
            }
        }
        match used.iter().position(|&b| !b) {
            Some(c) => colors[v] = Some(c as u32),
            None => {
                greedy_ok = false;
                break;
            }
        }
    }
    if greedy_ok {
        return Feasibility::Feasible(colors.into_iter().map(|c| c.unwrap_or(0)).collect());
    }
    if members.len() <= 48 {
        return match coloring::exact_coloring(g, allocated, r) {
            Some(w) => Feasibility::Feasible(w),
            None => Feasibility::Infeasible("no R-colouring exists (exact search)".into()),
        };
    }
    Feasibility::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_graph::{Graph, WeightedGraph};

    fn instance(n: usize, edges: &[(usize, usize)]) -> Instance {
        Instance::from_weighted_graph(WeightedGraph::unit(Graph::from_edges(n, edges)))
    }

    #[test]
    fn triangle_needs_three_registers() {
        let inst = instance(3, &[(0, 1), (1, 2), (0, 2)]);
        let all = BitSet::full(3);
        assert!(check_set(&inst, &all, 3).is_feasible());
        assert!(!check_set(&inst, &all, 2).is_feasible());
    }

    #[test]
    fn spilling_restores_feasibility() {
        let inst = instance(3, &[(0, 1), (1, 2), (0, 2)]);
        let two = BitSet::from_iter_with_capacity(3, [0, 2]);
        assert!(check_set(&inst, &two, 2).is_feasible());
    }

    #[test]
    fn witness_coloring_is_proper() {
        let inst = instance(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let all = BitSet::full(4);
        if let Feasibility::Feasible(colors) = check_set(&inst, &all, 3) {
            assert!(coloring::is_proper_coloring(
                inst.graph(),
                &colors,
                Some(&all)
            ));
        } else {
            panic!("expected feasible");
        }
    }

    #[test]
    fn non_chordal_exact_fallback() {
        // C5 needs 3 colours; greedy in some orders may fail at 3 but
        // the exact fallback must answer correctly for both 2 and 3.
        let inst = instance(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let all = BitSet::full(5);
        assert!(!check_set(&inst, &all, 2).is_feasible());
        assert!(check_set(&inst, &all, 3).is_feasible());
    }

    #[test]
    fn empty_allocation_always_feasible() {
        let inst = instance(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(check_set(&inst, &BitSet::new(3), 0).is_feasible());
    }
}
