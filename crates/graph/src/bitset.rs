//! A fixed-capacity bit set used throughout the allocator for vertex sets.
//!
//! The allocators manipulate many vertex subsets (layers, cliques, live
//! sets). A flat `Vec<u64>` bit set gives O(n/64) unions/intersections and
//! compact storage, which matters for the subset-containment tests in
//! maximal-clique enumeration.

/// A fixed-capacity set of `usize` keys backed by a `Vec<u64>`.
///
/// The capacity is fixed at construction; inserting a key `>= capacity`
/// panics. All binary operations require equally sized operands.
///
/// # Examples
///
/// ```
/// use lra_graph::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold keys in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing every key in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim();
        s
    }

    /// Creates a set from an iterator of keys.
    pub fn from_iter_with_capacity(capacity: usize, keys: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(capacity);
        for k in keys {
            s.insert(k);
        }
        s
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0 >> extra;
            }
        }
    }

    /// The number of keys this set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The backing words, 64 keys per word (lowest key in bit 0 of
    /// word 0). Exposed for cheap fingerprinting/serialisation.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Extends the capacity to `capacity`, keeping every present key.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is smaller than the current capacity —
    /// shrinking would silently drop keys.
    pub fn grow(&mut self, capacity: usize) {
        assert!(
            capacity >= self.capacity,
            "cannot grow capacity {} down to {capacity}",
            self.capacity
        );
        self.words.resize(capacity.div_ceil(64), 0);
        self.capacity = capacity;
    }

    /// Overwrites `self` with the contents of `other`, reusing the
    /// existing allocation (unlike `*self = other.clone()`).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Inserts `key`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `key >= capacity`.
    pub fn insert(&mut self, key: usize) -> bool {
        assert!(
            key < self.capacity,
            "key {key} out of capacity {}",
            self.capacity
        );
        let (w, b) = (key / 64, key % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `key`, returning `true` if it was present.
    pub fn remove(&mut self, key: usize) -> bool {
        if key >= self.capacity {
            return false;
        }
        let (w, b) = (key / 64, key % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Returns `true` if `key` is in the set.
    pub fn contains(&self, key: usize) -> bool {
        if key >= self.capacity {
            return false;
        }
        self.words[key / 64] & (1 << (key % 64)) != 0
    }

    /// The number of keys currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no keys.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every key.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Empties the set and re-sizes it to exactly `capacity` keys,
    /// reusing the word allocation. Unlike [`BitSet::grow`] this may
    /// shrink — it is the reset scratch buffers use when the same set
    /// is recycled across differently-sized functions.
    pub fn reset(&mut self, capacity: usize) {
        self.words.clear();
        self.words.resize(capacity.div_ceil(64), 0);
        self.capacity = capacity;
    }

    /// Returns `true` if `self` and `other` share no key.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every key of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: removes every key of `other` from `self`.
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The number of keys present in both `self` and `other`.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the keys in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is one past the largest key.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let keys: Vec<usize> = iter.into_iter().collect();
        let cap = keys.iter().max().map_or(0, |&m| m + 1);
        BitSet::from_iter_with_capacity(cap, keys)
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for k in iter {
            self.insert(k);
        }
    }
}

/// Iterator over the keys of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter_with_capacity(100, [1, 5, 64, 99]);
        let b = BitSet::from_iter_with_capacity(100, [5, 64]);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert_eq!(a.intersection_len(&b), 2);

        let mut c = a.clone();
        c.difference_with(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![1, 99]);
        assert!(c.is_disjoint(&b));

        let mut d = c.clone();
        d.union_with(&b);
        assert_eq!(d, a);

        let mut e = a.clone();
        e.intersect_with(&b);
        assert_eq!(e, b);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let keys = [0, 63, 64, 127, 128];
        let s = BitSet::from_iter_with_capacity(200, keys);
        assert_eq!(s.iter().collect::<Vec<_>>(), keys.to_vec());
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(3);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn grow_preserves_keys_and_extends_capacity() {
        let mut s = BitSet::from_iter_with_capacity(70, [0, 63, 69]);
        s.grow(200);
        assert_eq!(s.capacity(), 200);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 69]);
        s.insert(199);
        assert!(s.contains(199));
        // Growing to an equal capacity is a no-op.
        s.grow(200);
        assert_eq!(s.len(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot grow")]
    fn grow_rejects_shrinking() {
        let mut s = BitSet::new(10);
        s.grow(5);
    }

    #[test]
    fn copy_from_reuses_allocation() {
        let a = BitSet::from_iter_with_capacity(130, [1, 64, 129]);
        let mut b = BitSet::new(130);
        b.insert(7);
        b.copy_from(&a);
        assert_eq!(a, b);
        assert!(!b.contains(7));
    }

    #[test]
    fn words_expose_backing_storage() {
        let s = BitSet::from_iter_with_capacity(70, [0, 65]);
        assert_eq!(s.words(), &[1u64, 2u64]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn debug_is_never_empty() {
        let s = BitSet::new(4);
        assert_eq!(format!("{s:?}"), "{}");
    }
}
