//! A fixed-capacity bit set used throughout the allocator for vertex sets.
//!
//! The allocators manipulate many vertex subsets (layers, cliques, live
//! sets). A flat `Vec<u64>` bit set gives O(n/64) unions/intersections and
//! compact storage, which matters for the subset-containment tests in
//! maximal-clique enumeration.

/// A fixed-capacity set of `usize` keys backed by a `Vec<u64>`.
///
/// The capacity is fixed at construction; inserting a key `>= capacity`
/// panics. All binary operations require equally sized operands.
///
/// # Examples
///
/// ```
/// use lra_graph::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold keys in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing every key in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim();
        s
    }

    /// Creates a set from an iterator of keys.
    pub fn from_iter_with_capacity(capacity: usize, keys: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(capacity);
        for k in keys {
            s.insert(k);
        }
        s
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0 >> extra;
            }
        }
    }

    /// The number of keys this set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The backing words, 64 keys per word (lowest key in bit 0 of
    /// word 0). Exposed for cheap fingerprinting/serialisation.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Extends the capacity to `capacity`, keeping every present key.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is smaller than the current capacity —
    /// shrinking would silently drop keys.
    pub fn grow(&mut self, capacity: usize) {
        assert!(
            capacity >= self.capacity,
            "cannot grow capacity {} down to {capacity}",
            self.capacity
        );
        self.words.resize(capacity.div_ceil(64), 0);
        self.capacity = capacity;
    }

    /// Overwrites `self` with the contents of `other`, reusing the
    /// existing allocation (unlike `*self = other.clone()`).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Inserts `key`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `key >= capacity`.
    pub fn insert(&mut self, key: usize) -> bool {
        assert!(
            key < self.capacity,
            "key {key} out of capacity {}",
            self.capacity
        );
        let (w, b) = (key / 64, key % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `key`, returning `true` if it was present.
    pub fn remove(&mut self, key: usize) -> bool {
        if key >= self.capacity {
            return false;
        }
        let (w, b) = (key / 64, key % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Returns `true` if `key` is in the set.
    pub fn contains(&self, key: usize) -> bool {
        if key >= self.capacity {
            return false;
        }
        self.words[key / 64] & (1 << (key % 64)) != 0
    }

    /// The number of keys currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no keys.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every key.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Empties the set and re-sizes it to exactly `capacity` keys,
    /// reusing the word allocation. Unlike [`BitSet::grow`] this may
    /// shrink — it is the reset scratch buffers use when the same set
    /// is recycled across differently-sized functions.
    pub fn reset(&mut self, capacity: usize) {
        self.words.clear();
        self.words.resize(capacity.div_ceil(64), 0);
        self.capacity = capacity;
    }

    /// Returns `true` if `self` and `other` share no key.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every key of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: removes every key of `other` from `self`.
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The number of keys present in both `self` and `other`.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place difference with a borrowed matrix row: removes every key
    /// of `row` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference_with_row(&mut self, row: BitRow<'_>) {
        assert_eq!(self.capacity, row.capacity(), "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(row.words()) {
            *a &= !b;
        }
    }

    /// In-place union with a borrowed matrix row.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with_row(&mut self, row: BitRow<'_>) {
        assert_eq!(self.capacity, row.capacity(), "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(row.words()) {
            *a |= b;
        }
    }

    /// Iterates over the keys in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter::over(&self.words)
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is one past the largest key.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let keys: Vec<usize> = iter.into_iter().collect();
        let cap = keys.iter().max().map_or(0, |&m| m + 1);
        BitSet::from_iter_with_capacity(cap, keys)
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for k in iter {
            self.insert(k);
        }
    }
}

/// Iterator over the keys of a [`BitSet`] or [`BitRow`] in increasing
/// order.
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> Iter<'a> {
    fn over(words: &'a [u64]) -> Self {
        Iter {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// A borrowed, read-only view of one row of a [`BitMatrix`].
///
/// Supports the same queries as a [`BitSet`] of equal capacity without
/// owning storage, so consumers can run word-level set algebra straight
/// against the matrix arena.
#[derive(Clone, Copy)]
pub struct BitRow<'a> {
    words: &'a [u64],
    capacity: usize,
}

impl<'a> BitRow<'a> {
    /// The number of keys this row can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The backing words, 64 keys per word.
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Returns `true` if `key` is in the row.
    pub fn contains(&self, key: usize) -> bool {
        if key >= self.capacity {
            return false;
        }
        self.words[key / 64] & (1 << (key % 64)) != 0
    }

    /// The number of keys currently in the row.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the row contains no keys.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if this row and `other` share no key.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// The number of keys present in both this row and `other`.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the keys in increasing order.
    pub fn iter(&self) -> Iter<'a> {
        Iter::over(self.words)
    }

    /// Copies the row into an owned [`BitSet`] of the same capacity.
    pub fn to_bitset(&self) -> BitSet {
        BitSet {
            words: self.words.to_vec(),
            capacity: self.capacity,
        }
    }
}

impl std::fmt::Debug for BitRow<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for BitRow<'a> {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// A dense 2-D bit matrix stored as **one contiguous `Vec<u64>`**.
///
/// Each of the `rows` rows holds `capacity` columns packed into
/// `capacity.div_ceil(64)` words. This replaces `Vec<BitSet>` wherever a
/// family of equally sized sets is built together (adjacency rows,
/// per-block live sets): one allocation instead of one per row, and the
/// whole arena is exposed via [`BitMatrix::words`] for O(words)
/// fingerprinting.
///
/// # Examples
///
/// ```
/// use lra_graph::bitset::BitMatrix;
///
/// let mut m = BitMatrix::new(3, 100);
/// m.insert(0, 64);
/// m.insert(2, 5);
/// assert!(m.contains(0, 64));
/// assert_eq!(m.row(2).iter().collect::<Vec<_>>(), vec![5]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitMatrix {
    words: Vec<u64>,
    rows: usize,
    capacity: usize,
    wpr: usize,
}

impl BitMatrix {
    /// Creates an all-zero matrix of `rows` rows and `capacity` columns.
    pub fn new(rows: usize, capacity: usize) -> Self {
        let wpr = capacity.div_ceil(64);
        BitMatrix {
            words: vec![0; rows * wpr],
            rows,
            capacity,
            wpr,
        }
    }

    /// Empties the matrix and re-sizes it to `rows × capacity`, reusing
    /// the word allocation — the reset scratch buffers use when the
    /// matrix is recycled across differently-sized functions.
    pub fn reset(&mut self, rows: usize, capacity: usize) {
        let wpr = capacity.div_ceil(64);
        self.words.clear();
        self.words.resize(rows * wpr, 0);
        self.rows = rows;
        self.capacity = capacity;
        self.wpr = wpr;
    }

    /// The number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// The number of columns each row can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of words backing each row.
    pub fn words_per_row(&self) -> usize {
        self.wpr
    }

    /// The whole arena: row 0's words, then row 1's, and so on. Exposed
    /// for cheap fingerprinting/serialisation.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn check(&self, r: usize, c: usize) {
        assert!(r < self.rows, "row {r} out of {} rows", self.rows);
        assert!(
            c < self.capacity,
            "key {c} out of capacity {}",
            self.capacity
        );
    }

    /// Inserts column `c` into row `r`, returning `true` if it was not
    /// already present.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    pub fn insert(&mut self, r: usize, c: usize) -> bool {
        self.check(r, c);
        let w = r * self.wpr + c / 64;
        let bit = 1u64 << (c % 64);
        let was = self.words[w] & bit != 0;
        self.words[w] |= bit;
        !was
    }

    /// Removes column `c` from row `r`, returning `true` if it was
    /// present.
    pub fn remove(&mut self, r: usize, c: usize) -> bool {
        if r >= self.rows || c >= self.capacity {
            return false;
        }
        let w = r * self.wpr + c / 64;
        let bit = 1u64 << (c % 64);
        let was = self.words[w] & bit != 0;
        self.words[w] &= !bit;
        was
    }

    /// Returns `true` if row `r` contains column `c`.
    pub fn contains(&self, r: usize, c: usize) -> bool {
        if r >= self.rows || c >= self.capacity {
            return false;
        }
        self.words[r * self.wpr + c / 64] & (1 << (c % 64)) != 0
    }

    /// Word-level union of `other` into row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `other.capacity()` differs from the column capacity.
    pub fn union_row_with(&mut self, r: usize, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let base = r * self.wpr;
        for (a, b) in self.words[base..base + self.wpr]
            .iter_mut()
            .zip(&other.words)
        {
            *a |= b;
        }
    }

    /// A borrowed view of row `r`.
    pub fn row(&self, r: usize) -> BitRow<'_> {
        let base = r * self.wpr;
        BitRow {
            words: &self.words[base..base + self.wpr],
            capacity: self.capacity,
        }
    }

    /// The total number of set bits across all rows.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The heap bytes held by the arena (capacity, not just length).
    pub fn resident_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitMatrix")
            .field("rows", &self.rows)
            .field("capacity", &self.capacity)
            .field("ones", &self.count_ones())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter_with_capacity(100, [1, 5, 64, 99]);
        let b = BitSet::from_iter_with_capacity(100, [5, 64]);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert_eq!(a.intersection_len(&b), 2);

        let mut c = a.clone();
        c.difference_with(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![1, 99]);
        assert!(c.is_disjoint(&b));

        let mut d = c.clone();
        d.union_with(&b);
        assert_eq!(d, a);

        let mut e = a.clone();
        e.intersect_with(&b);
        assert_eq!(e, b);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let keys = [0, 63, 64, 127, 128];
        let s = BitSet::from_iter_with_capacity(200, keys);
        assert_eq!(s.iter().collect::<Vec<_>>(), keys.to_vec());
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(3);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn grow_preserves_keys_and_extends_capacity() {
        let mut s = BitSet::from_iter_with_capacity(70, [0, 63, 69]);
        s.grow(200);
        assert_eq!(s.capacity(), 200);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 69]);
        s.insert(199);
        assert!(s.contains(199));
        // Growing to an equal capacity is a no-op.
        s.grow(200);
        assert_eq!(s.len(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot grow")]
    fn grow_rejects_shrinking() {
        let mut s = BitSet::new(10);
        s.grow(5);
    }

    #[test]
    fn copy_from_reuses_allocation() {
        let a = BitSet::from_iter_with_capacity(130, [1, 64, 129]);
        let mut b = BitSet::new(130);
        b.insert(7);
        b.copy_from(&a);
        assert_eq!(a, b);
        assert!(!b.contains(7));
    }

    #[test]
    fn words_expose_backing_storage() {
        let s = BitSet::from_iter_with_capacity(70, [0, 65]);
        assert_eq!(s.words(), &[1u64, 2u64]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn debug_is_never_empty() {
        let s = BitSet::new(4);
        assert_eq!(format!("{s:?}"), "{}");
    }

    #[test]
    fn matrix_insert_remove_contains() {
        let mut m = BitMatrix::new(3, 130);
        assert!(m.insert(0, 129));
        assert!(!m.insert(0, 129));
        assert!(m.insert(2, 0));
        assert!(m.contains(0, 129));
        assert!(!m.contains(1, 129));
        assert!(m.remove(0, 129));
        assert!(!m.remove(0, 129));
        assert!(!m.contains(0, 129));
        assert_eq!(m.count_ones(), 1);
        // Out-of-range queries are false, not panics.
        assert!(!m.contains(3, 0));
        assert!(!m.contains(0, 130));
        assert!(!m.remove(3, 0));
    }

    #[test]
    fn matrix_rows_are_isolated() {
        // Rows must not bleed into each other even with a ragged tail
        // word (capacity not a multiple of 64).
        let mut m = BitMatrix::new(2, 70);
        m.insert(0, 69);
        m.insert(1, 0);
        assert_eq!(m.row(0).iter().collect::<Vec<_>>(), vec![69]);
        assert_eq!(m.row(1).iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(m.words_per_row(), 2);
        assert_eq!(m.words().len(), 4);
    }

    #[test]
    fn matrix_union_row_with_bitset() {
        let mut m = BitMatrix::new(2, 100);
        let s = BitSet::from_iter_with_capacity(100, [1, 64, 99]);
        m.union_row_with(1, &s);
        m.insert(1, 2);
        assert_eq!(m.row(1).iter().collect::<Vec<_>>(), vec![1, 2, 64, 99]);
        assert!(m.row(0).is_empty());
    }

    #[test]
    fn matrix_reset_recycles_and_resizes() {
        let mut m = BitMatrix::new(4, 200);
        m.insert(3, 199);
        m.reset(2, 10);
        assert_eq!(m.row_count(), 2);
        assert_eq!(m.capacity(), 10);
        assert_eq!(m.count_ones(), 0);
        m.insert(1, 9);
        assert!(m.contains(1, 9));
    }

    #[test]
    fn row_view_matches_bitset_semantics() {
        let mut m = BitMatrix::new(1, 100);
        for k in [1, 5, 64, 99] {
            m.insert(0, k);
        }
        let row = m.row(0);
        let b = BitSet::from_iter_with_capacity(100, [5, 64]);
        assert!(row.contains(5));
        assert!(!row.contains(6));
        assert!(!row.contains(200));
        assert_eq!(row.len(), 4);
        assert!(!row.is_empty());
        assert_eq!(row.intersection_len(&b), 2);
        assert!(!row.is_disjoint(&b));
        assert_eq!(row.capacity(), 100);
        assert_eq!(
            row.to_bitset().iter().collect::<Vec<_>>(),
            vec![1, 5, 64, 99]
        );
        assert_eq!(format!("{row:?}"), "{1, 5, 64, 99}");
        let empty = BitSet::new(100);
        assert!(row.is_disjoint(&empty));
    }

    #[test]
    fn bitset_algebra_against_rows() {
        let mut m = BitMatrix::new(1, 100);
        for k in [2, 3, 64] {
            m.insert(0, k);
        }
        let mut s = BitSet::from_iter_with_capacity(100, [1, 2, 64, 99]);
        s.difference_with_row(m.row(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 99]);
        s.union_with_row(m.row(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 3, 64, 99]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn matrix_insert_out_of_capacity_panics() {
        let mut m = BitMatrix::new(2, 4);
        m.insert(0, 4);
    }
}
