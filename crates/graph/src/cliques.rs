//! Maximal cliques and clique trees of chordal graphs.
//!
//! Under SSA there is a perfect correspondence between the maximal
//! cliques of the interference graph and the sets of variables
//! simultaneously live at some program point (Hack et al.). The paper's
//! fixed-point improvement (Algorithm 4) tracks, for each maximal clique,
//! how many of its members are already allocated; the exact solver runs a
//! dynamic program over the **clique tree**.
//!
//! For a chordal graph with PEO `σ`, every maximal clique has the form
//! `C(v) = {v} ∪ RN(v)` where `RN(v)` are the neighbours of `v`
//! eliminated after `v` (Fulkerson & Gross). `C(v)` fails to be maximal
//! exactly when it is contained in `C(u)` for some *earlier* neighbour
//! `u` of `v`, which we test with bit-set containment.
//!
//! A **clique tree** is a maximum-weight spanning tree of the clique
//! intersection graph (weights = intersection sizes); it satisfies the
//! junction-tree property and serves as a tree decomposition.

use crate::bitset::BitSet;
use crate::graph::{Graph, Vertex};
use crate::peo;

/// Enumerates the maximal cliques of a chordal graph.
///
/// `order` must be a perfect elimination order of `g`. Returns each
/// clique as a sorted vector of vertices; a chordal graph on `n` vertices
/// has at most `n` maximal cliques.
///
/// # Examples
///
/// ```
/// use lra_graph::{Graph, maximal_cliques, peo};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
/// let order = peo::perfect_elimination_order(&g).unwrap();
/// let mut cliques = maximal_cliques(&g, &order);
/// cliques.sort();
/// assert_eq!(cliques.len(), 2); // {0,1,2} and {2,3}
/// ```
pub fn maximal_cliques(g: &Graph, order: &[Vertex]) -> Vec<Vec<Vertex>> {
    let n = g.vertex_count();
    debug_assert!(peo::is_perfect_elimination_order(g, order));
    let mut pos = vec![0usize; n];
    for (i, v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }

    // Candidate clique of v: {v} ∪ later neighbours, as a bit set.
    let candidate = |v: usize| -> BitSet {
        let mut c = BitSet::new(n);
        c.insert(v);
        for &u in g.neighbor_indices(v) {
            let u = u as usize;
            if pos[u] > pos[v] {
                c.insert(u);
            }
        }
        c
    };

    let candidates: Vec<BitSet> = (0..n).map(candidate).collect();
    let mut cliques = Vec::new();
    for &v in order {
        let v = v.index();
        let cv = &candidates[v];
        // C(v) is maximal iff no earlier neighbour u has C(u) ⊇ C(v).
        let dominated = g
            .neighbor_indices(v)
            .iter()
            .map(|&u| u as usize)
            .filter(|&u| pos[u] < pos[v])
            .any(|u| cv.is_subset(&candidates[u]));
        if !dominated {
            let mut members: Vec<Vertex> = cv.iter().map(Vertex::new).collect();
            members.sort();
            cliques.push(members);
        }
    }
    cliques
}

/// The size of the largest clique of a chordal graph (its chromatic
/// number, and the MaxLive of the corresponding SSA program).
pub fn max_clique_size(g: &Graph, order: &[Vertex]) -> usize {
    let n = g.vertex_count();
    let mut pos = vec![0usize; n];
    for (i, v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    (0..n)
        .map(|v| {
            1 + g
                .neighbor_indices(v)
                .iter()
                .filter(|&&u| pos[u as usize] > pos[v])
                .count()
        })
        .max()
        .unwrap_or(0)
}

/// A clique tree (junction tree) of a chordal graph.
///
/// Bags are the maximal cliques; for every vertex `v` the bags containing
/// `v` form a connected subtree. Disconnected graphs yield a forest:
/// every root has `parent == None`.
#[derive(Clone, Debug)]
pub struct CliqueTree {
    /// The maximal cliques, each sorted by vertex index.
    pub bags: Vec<Vec<Vertex>>,
    /// Bag membership as bit sets, parallel to `bags`.
    pub bag_sets: Vec<BitSet>,
    /// Parent bag index, `None` for roots.
    pub parent: Vec<Option<usize>>,
    /// Children lists, parallel to `bags`.
    pub children: Vec<Vec<usize>>,
    /// Bag indices in a topological order (parents before children).
    pub topo: Vec<usize>,
}

impl CliqueTree {
    /// Builds a clique tree of the chordal graph `g` with PEO `order`.
    ///
    /// Uses a maximum-weight spanning forest of the clique intersection
    /// graph (weight = |Ki ∩ Kj|), which is a classical characterisation
    /// of clique trees.
    pub fn build(g: &Graph, order: &[Vertex]) -> Self {
        let n = g.vertex_count();
        let bags = maximal_cliques(g, order);
        let k = bags.len();
        let bag_sets: Vec<BitSet> = bags
            .iter()
            .map(|bag| BitSet::from_iter_with_capacity(n, bag.iter().map(|v| v.index())))
            .collect();

        // Candidate edges: bags sharing at least one vertex. Enumerate
        // via per-vertex bag lists to avoid the full quadratic scan.
        let mut bags_of_vertex: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, bag) in bags.iter().enumerate() {
            for v in bag {
                bags_of_vertex[v.index()].push(i);
            }
        }
        // Candidate edges as (weight, i, j); pairs deduped with
        // per-bag bit rows (keyed on the smaller index) instead of a
        // hashed pair set.
        let mut edges: Vec<(usize, usize, usize)> = Vec::new();
        let mut paired: Vec<BitSet> = vec![BitSet::new(k); k];
        for list in &bags_of_vertex {
            for (a, &i) in list.iter().enumerate() {
                for &j in &list[a + 1..] {
                    let (lo, hi) = (i.min(j), i.max(j));
                    if paired[lo].insert(hi) {
                        let w = bag_sets[lo].intersection_len(&bag_sets[hi]);
                        edges.push((w, lo, hi));
                    }
                }
            }
        }
        edges.sort_by_key(|&(w, _, _)| std::cmp::Reverse(w));

        // Kruskal maximum spanning forest.
        let mut dsu: Vec<usize> = (0..k).collect();
        fn find(dsu: &mut Vec<usize>, x: usize) -> usize {
            if dsu[x] != x {
                let r = find(dsu, dsu[x]);
                dsu[x] = r;
            }
            dsu[x]
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (_, i, j) in edges {
            let (ri, rj) = (find(&mut dsu, i), find(&mut dsu, j));
            if ri != rj {
                dsu[ri] = rj;
                adj[i].push(j);
                adj[j].push(i);
            }
        }

        // Root each component and derive parent/children/topo.
        let mut parent = vec![None; k];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut topo = Vec::with_capacity(k);
        let mut visited = vec![false; k];
        for root in 0..k {
            if visited[root] {
                continue;
            }
            let mut stack = vec![root];
            visited[root] = true;
            while let Some(b) = stack.pop() {
                topo.push(b);
                for &c in &adj[b] {
                    if !visited[c] {
                        visited[c] = true;
                        parent[c] = Some(b);
                        children[b].push(c);
                        stack.push(c);
                    }
                }
            }
        }

        CliqueTree {
            bags,
            bag_sets,
            parent,
            children,
            topo,
        }
    }

    /// The number of bags (maximal cliques).
    pub fn bag_count(&self) -> usize {
        self.bags.len()
    }

    /// The size of the largest bag.
    pub fn max_bag_size(&self) -> usize {
        self.bags.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The separator of bag `b`: its intersection with its parent bag
    /// (empty for roots).
    pub fn separator(&self, b: usize) -> BitSet {
        match self.parent[b] {
            Some(p) => {
                let mut s = self.bag_sets[b].clone();
                s.intersect_with(&self.bag_sets[p]);
                s
            }
            None => BitSet::new(self.bag_sets[b].capacity()),
        }
    }

    /// Checks the junction-tree property: for every vertex, the bags
    /// containing it form a connected subtree. Used by tests.
    pub fn junction_property_holds(&self) -> bool {
        let n = self.bag_sets.first().map_or(0, BitSet::capacity);
        let k = self.bags.len();
        for v in 0..n {
            let hold = BitSet::from_iter_with_capacity(
                k,
                (0..k).filter(|&b| self.bag_sets[b].contains(v)),
            );
            let holding = hold.len();
            if holding <= 1 {
                continue;
            }
            // BFS within holding bags via tree edges.
            let first = hold.iter().next().expect("holding >= 2");
            let mut reached = BitSet::new(k);
            reached.insert(first);
            let mut stack = vec![first];
            while let Some(b) = stack.pop() {
                let mut nbrs: Vec<usize> = self.children[b].clone();
                if let Some(p) = self.parent[b] {
                    nbrs.push(p);
                }
                for c in nbrs {
                    if hold.contains(c) && reached.insert(c) {
                        stack.push(c);
                    }
                }
            }
            if reached.len() != holding {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn figure4() -> Graph {
        let mut b = GraphBuilder::new(7);
        for &(u, v) in &[
            (0, 3),
            (0, 5),
            (3, 5),
            (3, 4),
            (4, 5),
            (2, 3),
            (2, 4),
            (1, 2),
            (1, 6),
            (2, 6),
        ] {
            b.add_edge(u, v);
        }
        b.build()
    }

    fn cliques_of(g: &Graph) -> Vec<Vec<usize>> {
        let order = peo::perfect_elimination_order(g).unwrap();
        let mut cs: Vec<Vec<usize>> = maximal_cliques(g, &order)
            .into_iter()
            .map(|c| c.into_iter().map(|v| v.index()).collect())
            .collect();
        cs.sort();
        cs
    }

    #[test]
    fn figure4_maximal_cliques() {
        // a=0,b=1,c=2,d=3,e=4,f=5,g=6. Maximal cliques:
        // {a,d,f}, {b,c,g}, {c,d,e}, {d,e,f}.
        let cs = cliques_of(&figure4());
        assert_eq!(
            cs,
            vec![vec![0, 3, 5], vec![1, 2, 6], vec![2, 3, 4], vec![3, 4, 5]]
        );
    }

    #[test]
    fn cliques_are_cliques_and_maximal() {
        let g = figure4();
        let cs = cliques_of(&g);
        for c in &cs {
            assert!(g.is_clique(c));
            // Maximality: no vertex outside c is adjacent to all of c.
            for v in 0..g.vertex_count() {
                if !c.contains(&v) {
                    assert!(
                        !c.iter().all(|&u| g.has_edge(u, v)),
                        "clique {c:?} not maximal: can add {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn figure7_maximal_cliques() {
        // Figure 7(a): a=0,b=1,c=2,d=3,e=4,f=5 with cliques
        // {a,d,f}, {b,c,e}, {c,d,e}, {d,e,f} (as stated in the paper).
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[
            (0, 3),
            (0, 5),
            (3, 5),
            (3, 4),
            (3, 2),
            (2, 4),
            (4, 5),
            (2, 1),
            (1, 4),
        ] {
            b.add_edge(u, v);
        }
        let cs = cliques_of(&b.build());
        assert_eq!(
            cs,
            vec![vec![0, 3, 5], vec![1, 2, 4], vec![2, 3, 4], vec![3, 4, 5]]
        );
    }

    #[test]
    fn clique_on_clique_graph() {
        let mut b = GraphBuilder::new(4);
        b.add_clique(&[0, 1, 2, 3]);
        let g = b.build();
        let cs = cliques_of(&g);
        assert_eq!(cs, vec![vec![0, 1, 2, 3]]);
        let order = peo::perfect_elimination_order(&g).unwrap();
        assert_eq!(max_clique_size(&g, &order), 4);
    }

    #[test]
    fn edgeless_graph_cliques_are_singletons() {
        let g = Graph::empty(3);
        let cs = cliques_of(&g);
        assert_eq!(cs, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn max_clique_size_of_figure4() {
        let g = figure4();
        let order = peo::perfect_elimination_order(&g).unwrap();
        assert_eq!(max_clique_size(&g, &order), 3);
    }

    #[test]
    fn clique_tree_junction_property() {
        let g = figure4();
        let order = peo::perfect_elimination_order(&g).unwrap();
        let t = CliqueTree::build(&g, &order);
        assert_eq!(t.bag_count(), 4);
        assert!(t.junction_property_holds());
        assert_eq!(t.max_bag_size(), 3);
        // Exactly one root in a connected graph.
        assert_eq!(t.parent.iter().filter(|p| p.is_none()).count(), 1);
        // Topo order starts at a root and lists every bag once.
        assert_eq!(t.topo.len(), 4);
        assert!(t.parent[t.topo[0]].is_none());
    }

    #[test]
    fn clique_forest_on_disconnected_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let order = peo::perfect_elimination_order(&g).unwrap();
        let t = CliqueTree::build(&g, &order);
        assert_eq!(t.bag_count(), 2);
        assert_eq!(t.parent.iter().filter(|p| p.is_none()).count(), 2);
        assert!(t.junction_property_holds());
    }

    #[test]
    fn separators_are_bag_intersections() {
        let g = figure4();
        let order = peo::perfect_elimination_order(&g).unwrap();
        let t = CliqueTree::build(&g, &order);
        for b in 0..t.bag_count() {
            let sep = t.separator(b);
            if let Some(p) = t.parent[b] {
                assert!(sep.is_subset(&t.bag_sets[b]));
                assert!(sep.is_subset(&t.bag_sets[p]));
            } else {
                assert!(sep.is_empty());
            }
        }
    }
}
