//! Graph colouring: the assignment stage of decoupled register allocation.
//!
//! On a chordal graph, colouring greedily along the *reverse* of a
//! perfect elimination order is optimal and uses exactly `ω(G)` colours
//! — this is the *tree-scan* assignment of SSA-based allocation. On
//! general graphs greedy colouring is a heuristic; a small exact
//! branch-and-bound is provided for verification.

use crate::bitset::BitSet;
use crate::graph::{Graph, Vertex};

/// A register (colour) index.
pub type Color = u32;

/// Colours a chordal graph optimally by scanning the reverse of the PEO
/// `order`, assigning each vertex the smallest colour absent from its
/// already-coloured neighbours.
///
/// Returns the colour vector indexed by vertex. The number of colours
/// used equals the maximum clique size when `order` is a genuine PEO.
///
/// # Examples
///
/// ```
/// use lra_graph::{Graph, peo, coloring};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
/// let order = peo::perfect_elimination_order(&g).unwrap();
/// let colors = coloring::greedy_peo_coloring(&g, &order);
/// assert_eq!(coloring::color_count(&colors), 3);
/// ```
pub fn greedy_peo_coloring(g: &Graph, order: &[Vertex]) -> Vec<Color> {
    greedy_coloring_in_order(g, order.iter().rev().copied())
}

/// Greedily colours `g` visiting vertices in the given order.
///
/// Assigns each vertex the smallest colour not used by an
/// already-coloured neighbour. Optimal for chordal graphs when the order
/// is a reversed PEO; a heuristic otherwise.
pub fn greedy_coloring_in_order(g: &Graph, order: impl Iterator<Item = Vertex>) -> Vec<Color> {
    let n = g.vertex_count();
    let mut colors: Vec<Option<Color>> = vec![None; n];
    let mut used = Vec::new();
    for v in order {
        let v = v.index();
        used.clear();
        used.resize(g.degree(v) + 1, false);
        for &u in g.neighbor_indices(v) {
            if let Some(c) = colors[u as usize] {
                if (c as usize) < used.len() {
                    used[c as usize] = true;
                }
            }
        }
        let c = used
            .iter()
            .position(|&b| !b)
            .expect("first-fit colour exists") as Color;
        colors[v] = Some(c);
    }
    colors
        .into_iter()
        .map(|c| c.expect("all vertices coloured"))
        .collect()
}

/// The number of distinct colours in a colouring.
pub fn color_count(colors: &[Color]) -> usize {
    colors.iter().map(|&c| c + 1).max().unwrap_or(0) as usize
}

/// Checks that `colors` is a proper colouring of `g` restricted to
/// `domain` (or of the whole graph when `domain` is `None`).
pub fn is_proper_coloring(g: &Graph, colors: &[Color], domain: Option<&BitSet>) -> bool {
    g.edges().all(|(u, v)| {
        let inside = domain.is_none_or(|d| d.contains(u.index()) && d.contains(v.index()));
        !inside || colors[u.index()] != colors[v.index()]
    })
}

/// Decides by exhaustive search whether the subgraph of `g` induced by
/// `domain` is `k`-colourable, returning a witness colouring.
///
/// Exponential; intended for verification on small graphs (the JVM-sized
/// methods of the evaluation). Colour symmetry is broken by allowing at
/// most one previously-unused colour per vertex.
///
/// # Panics
///
/// Panics if the domain exceeds 64 vertices.
pub fn exact_coloring(g: &Graph, domain: &BitSet, k: u32) -> Option<Vec<Color>> {
    let vs: Vec<usize> = domain.iter().collect();
    assert!(vs.len() <= 64, "exact colouring limited to 64 vertices");
    if vs.is_empty() {
        return Some(vec![0; g.vertex_count()]);
    }
    // Order by decreasing degree within the domain for faster failure.
    let mut vs = vs;
    vs.sort_by_key(|&v| std::cmp::Reverse(g.adjacent_count_in(v, domain)));

    let n = g.vertex_count();
    let mut colors: Vec<Option<Color>> = vec![None; n];

    fn go(
        g: &Graph,
        vs: &[usize],
        i: usize,
        k: u32,
        used_colors: u32,
        colors: &mut Vec<Option<Color>>,
    ) -> bool {
        if i == vs.len() {
            return true;
        }
        let v = vs[i];
        let limit = (used_colors + 1).min(k);
        'next_color: for c in 0..limit {
            for &u in g.neighbor_indices(v) {
                if colors[u as usize] == Some(c) {
                    continue 'next_color;
                }
            }
            colors[v] = Some(c);
            let new_used = used_colors.max(c + 1);
            if go(g, vs, i + 1, k, new_used, colors) {
                return true;
            }
            colors[v] = None;
        }
        false
    }

    if go(g, &vs, 0, k, 0, &mut colors) {
        Some(colors.into_iter().map(|c| c.unwrap_or(0)).collect())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::peo;

    #[test]
    fn triangle_needs_three() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let order = peo::perfect_elimination_order(&g).unwrap();
        let colors = greedy_peo_coloring(&g, &order);
        assert!(is_proper_coloring(&g, &colors, None));
        assert_eq!(color_count(&colors), 3);
    }

    #[test]
    fn chordal_coloring_uses_omega_colors() {
        // Figure 4 graph: ω = 3.
        let mut b = GraphBuilder::new(7);
        for &(u, v) in &[
            (0, 3),
            (0, 5),
            (3, 5),
            (3, 4),
            (4, 5),
            (2, 3),
            (2, 4),
            (1, 2),
            (1, 6),
            (2, 6),
        ] {
            b.add_edge(u, v);
        }
        let g = b.build();
        let order = peo::perfect_elimination_order(&g).unwrap();
        let colors = greedy_peo_coloring(&g, &order);
        assert!(is_proper_coloring(&g, &colors, None));
        assert_eq!(color_count(&colors), 3);
    }

    #[test]
    fn edgeless_uses_one_color() {
        let g = Graph::empty(4);
        let order = peo::perfect_elimination_order(&g).unwrap();
        let colors = greedy_peo_coloring(&g, &order);
        assert_eq!(color_count(&colors), 1);
    }

    #[test]
    fn coloring_restricted_to_domain() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        // Colour 0 twice is improper overall but fine if vertex 2 is
        // outside the domain.
        let colors = vec![0, 1, 0];
        let domain = BitSet::from_iter_with_capacity(3, [0, 1]);
        assert!(is_proper_coloring(&g, &colors, Some(&domain)));
        assert!(!is_proper_coloring(&g, &colors, None));
    }

    #[test]
    fn exact_coloring_finds_or_refutes() {
        // C5 is 3-chromatic.
        let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let all = BitSet::full(5);
        assert!(exact_coloring(&c5, &all, 2).is_none());
        let w = exact_coloring(&c5, &all, 3).unwrap();
        assert!(is_proper_coloring(&c5, &w, None));
    }

    #[test]
    fn exact_coloring_empty_domain() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        assert!(exact_coloring(&g, &BitSet::new(2), 0).is_some());
    }

    #[test]
    fn greedy_general_order_is_proper() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let colors = greedy_coloring_in_order(&g, g.vertices());
        assert!(is_proper_coloring(&g, &colors, None));
    }
}
