//! Graphviz (DOT) export for debugging and documentation figures.

use crate::bitset::BitSet;
use crate::weights::WeightedGraph;
use std::fmt::Write as _;

/// Renders `wg` in Graphviz DOT syntax.
///
/// Vertices are labelled `name (weight)`. Vertices in `highlight` (the
/// allocated set, say) are drawn dashed, matching the figures of the
/// paper where dashed nodes are the selected stable set.
///
/// `names` may be empty, in which case vertices are labelled `v0, v1, …`.
///
/// # Examples
///
/// ```
/// use lra_graph::{Graph, WeightedGraph, dot};
/// let wg = WeightedGraph::new(Graph::from_edges(2, &[(0, 1)]), vec![1, 2]);
/// let s = dot::to_dot(&wg, &[], None);
/// assert!(s.contains("graph"));
/// assert!(s.contains("v0 -- v1"));
/// ```
pub fn to_dot(wg: &WeightedGraph, names: &[&str], highlight: Option<&BitSet>) -> String {
    let g = wg.graph();
    let mut out = String::from("graph interference {\n  node [shape=circle];\n");
    for v in 0..g.vertex_count() {
        let name = names.get(v).copied().unwrap_or("");
        let label = if name.is_empty() {
            format!("v{v} ({})", wg.weight(v))
        } else {
            format!("{name} ({})", wg.weight(v))
        };
        let style = if highlight.is_some_and(|h| h.contains(v)) {
            ", style=dashed"
        } else {
            ""
        };
        let _ = writeln!(out, "  v{v} [label=\"{label}\"{style}];");
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  v{} -- v{};", u.index(), v.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn renders_nodes_edges_and_highlight() {
        let wg = WeightedGraph::new(Graph::from_edges(3, &[(0, 1), (1, 2)]), vec![5, 1, 2]);
        let hl = BitSet::from_iter_with_capacity(3, [0]);
        let s = to_dot(&wg, &["a", "b", "c"], Some(&hl));
        assert!(s.contains("a (5)"));
        assert!(s.contains("style=dashed"));
        assert!(s.contains("v0 -- v1"));
        assert!(s.contains("v1 -- v2"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn falls_back_to_index_names() {
        let wg = WeightedGraph::new(Graph::empty(1), vec![7]);
        let s = to_dot(&wg, &[], None);
        assert!(s.contains("v0 (7)"));
    }
}
