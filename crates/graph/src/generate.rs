//! Seeded random graph generators.
//!
//! The evaluation of the paper runs on interference graphs produced by
//! real compilers. The generators here produce the same graph *classes*
//! with controllable size, density and register-pressure profiles:
//!
//! * [`random_chordal`] — intersection graphs of random subtrees of a
//!   random tree. By Gavril's theorem these are exactly the chordal
//!   graphs; SSA live ranges are subtrees of the dominance tree, so this
//!   is the natural model of SSA interference graphs.
//! * [`random_interval_set`] — random live intervals over a linear code
//!   order with a target register-pressure profile (the linear-scan
//!   view of a function).
//! * [`random_ktree_subgraph`] — partial k-trees, chordal graphs of
//!   bounded clique size.
//! * [`random_general`] — Erdős–Rényi graphs, generally non-chordal, as
//!   produced by non-SSA (JIT) interference.
//! * [`random_weights`] — skewed spill costs mimicking
//!   `frequency × accesses` estimates with loop nesting.
//!
//! All generators are deterministic given the RNG state, so every
//! experiment in the paper reproduction is reproducible from a seed.

use crate::graph::{Graph, GraphBuilder};
use crate::interval::Interval;
use crate::weights::Cost;
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates a random chordal graph on `n` vertices as the intersection
/// graph of `n` random subtrees of a random host tree on `tree_size`
/// nodes.
///
/// `subtree_nodes` controls the expected subtree size (and therefore
/// density): each subtree is grown by randomised BFS from a random root
/// to roughly that many host nodes.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let g = lra_graph::generate::random_chordal(&mut rng, 30, 40, 5);
/// assert!(lra_graph::peo::is_chordal(&g));
/// ```
pub fn random_chordal(
    rng: &mut impl Rng,
    n: usize,
    tree_size: usize,
    subtree_nodes: usize,
) -> Graph {
    let tree_size = tree_size.max(1);
    // Random host tree: parent of node i is uniform in 0..i.
    let mut tree_adj: Vec<Vec<usize>> = vec![Vec::new(); tree_size];
    for i in 1..tree_size {
        let p = rng.gen_range(0..i);
        tree_adj[i].push(p);
        tree_adj[p].push(i);
    }

    // Grow each subtree by randomised BFS.
    let mut membership: Vec<Vec<usize>> = Vec::with_capacity(n); // subtree -> host nodes
    for _ in 0..n {
        let target = rng.gen_range(1..=subtree_nodes.max(1));
        let root = rng.gen_range(0..tree_size);
        let mut nodes = vec![root];
        let mut frontier: Vec<usize> = tree_adj[root].clone();
        let mut in_subtree = vec![false; tree_size];
        in_subtree[root] = true;
        while nodes.len() < target && !frontier.is_empty() {
            let k = rng.gen_range(0..frontier.len());
            let next = frontier.swap_remove(k);
            if in_subtree[next] {
                continue;
            }
            in_subtree[next] = true;
            nodes.push(next);
            frontier.extend(tree_adj[next].iter().filter(|&&x| !in_subtree[x]));
        }
        membership.push(nodes);
    }

    // Two subtrees of a tree intersect iff they share a node.
    let mut holders: Vec<Vec<usize>> = vec![Vec::new(); tree_size]; // host node -> subtrees
    for (s, nodes) in membership.iter().enumerate() {
        for &t in nodes {
            holders[t].push(s);
        }
    }
    let mut b = GraphBuilder::new(n);
    for hs in &holders {
        for (i, &u) in hs.iter().enumerate() {
            for &v in &hs[i + 1..] {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Configuration for [`random_interval_set`].
#[derive(Clone, Debug)]
pub struct IntervalProfile {
    /// Number of intervals (variables).
    pub n: usize,
    /// Length of the linearised code, in program points.
    pub points: u32,
    /// Mean live-range length in program points.
    pub mean_len: u32,
    /// Fraction (0..=100) of long-lived ranges spanning most of the code
    /// (globals, loop-carried values).
    pub long_lived_percent: u32,
}

/// Generates random live intervals over a linear code order.
///
/// Most intervals are short and local (length geometric around
/// `mean_len`); a `long_lived_percent` fraction spans a large part of the
/// function, which is what creates high-pressure regions.
pub fn random_interval_set(rng: &mut impl Rng, profile: &IntervalProfile) -> Vec<Interval> {
    let IntervalProfile {
        n,
        points,
        mean_len,
        long_lived_percent,
    } = *profile;
    let points = points.max(2);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.gen_range(0..100) < long_lived_percent {
            // Long-lived: covers 40–95% of the code.
            let len = points * rng.gen_range(40..=95) / 100;
            let start = rng.gen_range(0..=points - len.max(1));
            out.push(Interval::new(start, (start + len.max(1)).min(points)));
        } else {
            // Short: geometric-ish around mean_len.
            let mut len = 1;
            let cont = 100 - (100 / mean_len.max(1)).min(99);
            while len < points / 2 && rng.gen_range(0..100) < cont {
                len += 1;
            }
            let start = rng.gen_range(0..points - len.min(points - 1));
            out.push(Interval::new(start, (start + len).min(points)));
        }
    }
    out
}

/// Generates a partial k-tree: starts from a (k+1)-clique, attaches each
/// new vertex to a random k-clique, then deletes each edge with
/// probability `drop_percent`/100 (which keeps the graph chordal only
/// for `drop_percent == 0`; use 0 for guaranteed chordality).
pub fn random_ktree_subgraph(rng: &mut impl Rng, n: usize, k: usize, drop_percent: u32) -> Graph {
    let k = k.max(1).min(n.saturating_sub(1)).max(1);
    let mut b = GraphBuilder::new(n.max(1));
    if n <= 1 {
        return b.build();
    }
    let base = (k + 1).min(n);
    let mut cliques: Vec<Vec<usize>> = Vec::new();
    let first: Vec<usize> = (0..base).collect();
    b.add_clique(&first);
    // Record all k-subsets of the base clique.
    for skip in 0..base {
        let c: Vec<usize> = first.iter().copied().filter(|&x| x != skip).collect();
        if c.len() == k {
            cliques.push(c);
        }
    }
    if cliques.is_empty() {
        cliques.push(first.clone());
    }
    for v in base..n {
        let host = cliques[rng.gen_range(0..cliques.len())].clone();
        for &u in &host {
            b.add_edge(v, u);
        }
        // New k-cliques: v plus each (k-1)-subset of host.
        for skip in 0..host.len() {
            let mut c: Vec<usize> = host
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, x)| x)
                .collect();
            c.push(v);
            cliques.push(c);
        }
    }
    let g = b.build();
    if drop_percent == 0 {
        return g;
    }
    let kept: Vec<(usize, usize)> = g
        .edges()
        .filter(|_| rng.gen_range(0..100) >= drop_percent)
        .map(|(u, v)| (u.index(), v.index()))
        .collect();
    Graph::from_edges(n, &kept)
}

/// Erdős–Rényi random graph `G(n, p)` with edge probability
/// `edge_percent`/100. Typically non-chordal for moderate densities —
/// the model for non-SSA (JikesRVM-style) interference graphs.
pub fn random_general(rng: &mut impl Rng, n: usize, edge_percent: u32) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_range(0..100) < edge_percent {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Generates skewed spill costs for `n` variables.
///
/// Each variable receives `accesses × 10^depth` where `depth` is a
/// loop-nesting depth in `0..=max_depth` (deep nests are rarer) and
/// `accesses` is small — the standard static spill-cost estimate.
pub fn random_weights(rng: &mut impl Rng, n: usize, max_depth: u32) -> Vec<Cost> {
    (0..n)
        .map(|_| {
            // Geometric depth: each extra level with probability 1/3.
            let mut depth = 0;
            while depth < max_depth && rng.gen_range(0..3) == 0 {
                depth += 1;
            }
            let accesses = rng.gen_range(1..=6) as Cost;
            accesses * (10 as Cost).pow(depth)
        })
        .collect()
}

/// Shuffles vertex identities of `g`, returning the isomorphic graph and
/// the permutation used (`perm[old] = new`). Useful for order-robustness
/// property tests.
pub fn shuffle_vertices(rng: &mut impl Rng, g: &Graph) -> (Graph, Vec<usize>) {
    let n = g.vertex_count();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    let edges: Vec<(usize, usize)> = g
        .edges()
        .map(|(u, v)| (perm[u.index()], perm[v.index()]))
        .collect();
    (Graph::from_edges(n, &edges), perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{interval_graph, max_overlap};
    use crate::peo;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn chordal_generator_is_chordal() {
        for seed in 0..20 {
            let g = random_chordal(&mut rng(seed), 40, 60, 6);
            assert!(
                peo::is_chordal(&g),
                "seed {seed} produced non-chordal graph"
            );
        }
    }

    #[test]
    fn chordal_generator_is_deterministic() {
        let g1 = random_chordal(&mut rng(7), 25, 30, 4);
        let g2 = random_chordal(&mut rng(7), 25, 30, 4);
        assert_eq!(g1, g2);
    }

    #[test]
    fn ktree_without_drops_is_chordal() {
        for seed in 0..10 {
            let g = random_ktree_subgraph(&mut rng(seed), 30, 4, 0);
            assert!(peo::is_chordal(&g));
        }
    }

    #[test]
    fn ktree_max_clique_bounded() {
        let g = random_ktree_subgraph(&mut rng(3), 50, 5, 0);
        let order = peo::perfect_elimination_order(&g).unwrap();
        assert!(crate::cliques::max_clique_size(&g, &order) <= 6);
    }

    #[test]
    fn interval_profile_roughly_respected() {
        let profile = IntervalProfile {
            n: 200,
            points: 300,
            mean_len: 8,
            long_lived_percent: 10,
        };
        let ivs = random_interval_set(&mut rng(11), &profile);
        assert_eq!(ivs.len(), 200);
        assert!(ivs.iter().all(|iv| iv.end <= 300));
        let g = interval_graph(&ivs);
        assert!(peo::is_chordal(&g));
        assert!(max_overlap(&ivs) > 2);
    }

    #[test]
    fn general_generator_density() {
        let g = random_general(&mut rng(5), 40, 20);
        let possible = 40 * 39 / 2;
        let density = g.edge_count() * 100 / possible;
        assert!(
            (10..=30).contains(&density),
            "density {density}% out of band"
        );
    }

    #[test]
    fn weights_are_positive_and_skewed() {
        let ws = random_weights(&mut rng(9), 500, 3);
        assert!(ws.iter().all(|&w| w >= 1));
        assert!(
            ws.iter().any(|&w| w >= 100),
            "some deep-loop weights expected"
        );
    }

    #[test]
    fn shuffle_preserves_structure() {
        let g = random_chordal(&mut rng(2), 20, 25, 4);
        let (h, perm) = shuffle_vertices(&mut rng(3), &g);
        assert_eq!(g.edge_count(), h.edge_count());
        for (u, v) in g.edges() {
            assert!(h.has_edge(perm[u.index()], perm[v.index()]));
        }
        assert!(peo::is_chordal(&h));
    }
}
