//! Undirected graphs with compact adjacency storage.
//!
//! Interference graphs are simple undirected graphs. We store sorted
//! adjacency vectors (for cache-friendly iteration and O(log d) edge
//! queries) plus per-vertex adjacency bit rows (for O(1) edge queries and
//! O(n/64) neighbourhood algebra, used heavily by clique enumeration and
//! the allocation verifier).

use crate::bitset::BitSet;

/// An index identifying a vertex (a variable) of a [`Graph`].
///
/// `Vertex` is a newtype over `u32`; use [`Vertex::index`] to index into
/// side tables.
///
/// # Examples
///
/// ```
/// use lra_graph::Vertex;
/// let v = Vertex::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vertex(u32);

impl Vertex {
    /// Creates a vertex from its index.
    pub fn new(index: usize) -> Self {
        Vertex(u32::try_from(index).expect("vertex index fits in u32"))
    }

    /// The index of this vertex, usable into side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Vertex {
    fn from(index: usize) -> Self {
        Vertex::new(index)
    }
}

impl From<Vertex> for usize {
    fn from(v: Vertex) -> usize {
        v.index()
    }
}

impl std::fmt::Debug for Vertex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Display for Vertex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Incrementally builds a [`Graph`] from edges.
///
/// Duplicate edges and self-loops are ignored, so callers can add
/// interferences without deduplicating first.
///
/// # Examples
///
/// ```
/// use lra_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, ignored
/// b.add_edge(2, 2); // self-loop, ignored
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    rows: Vec<BitSet>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            rows: vec![BitSet::new(n); n],
        }
    }

    /// Adds the undirected edge `(u, v)`. Self-loops and duplicates are
    /// silently ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> &mut Self {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range for {} vertices",
            self.n
        );
        if u != v {
            self.rows[u].insert(v);
            self.rows[v].insert(u);
        }
        self
    }

    /// Returns `true` if the edge `(u, v)` has been added.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.rows[u].contains(v)
    }

    /// Adds every edge of the clique over `members`.
    pub fn add_clique(&mut self, members: &[usize]) -> &mut Self {
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                self.add_edge(u, v);
            }
        }
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Graph {
        Graph::from_bit_rows(self.rows)
    }
}

/// A simple undirected graph with vertices `0..n`.
///
/// Construct with [`GraphBuilder`] or [`Graph::from_edges`].
///
/// # Examples
///
/// ```
/// use lra_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(g.vertex_count(), 4);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(2, 1));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    rows: Vec<BitSet>,
    edge_count: usize,
}

impl Graph {
    /// Builds a graph directly from per-vertex adjacency bit rows,
    /// taking their **symmetric closure**: an edge exists when either
    /// endpoint's row names the other. Self-loops are dropped.
    ///
    /// This is the fast path for interference construction: callers
    /// union whole live sets into a definition's row with word-level
    /// [`BitSet::union_with`] — O(n/64) per definition instead of one
    /// `add_edge` call per live value — and this constructor mirrors
    /// the edges and derives the sorted adjacency vectors in one final
    /// O(V + E) pass.
    ///
    /// # Panics
    ///
    /// Panics if any row's capacity differs from the number of rows.
    pub fn from_bit_rows(mut rows: Vec<BitSet>) -> Self {
        let n = rows.len();
        for (v, row) in rows.iter_mut().enumerate() {
            assert_eq!(
                row.capacity(),
                n,
                "row {v} capacity must equal the vertex count {n}"
            );
            row.remove(v);
        }
        // Mirror the edges recorded in one direction only.
        let mut missing: Vec<(usize, usize)> = Vec::new();
        for u in 0..n {
            for v in rows[u].iter() {
                if !rows[v].contains(u) {
                    missing.push((v, u));
                }
            }
        }
        for (v, u) in missing {
            rows[v].insert(u);
        }
        let adj: Vec<Vec<u32>> = rows
            .iter()
            .map(|row| row.iter().map(|v| v as u32).collect())
            .collect();
        let edge_count = adj.iter().map(Vec::len).sum::<usize>() / 2;
        Graph {
            adj,
            rows,
            edge_count,
        }
    }

    /// Creates a graph on `n` vertices from an edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Creates the empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// The number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// The number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all vertices in index order.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        (0..self.adj.len()).map(Vertex::new)
    }

    /// Iterates over every edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&&v| (v as usize) > u)
                .map(move |&v| (Vertex::new(u), Vertex::new(v as usize)))
        })
    }

    /// Returns `true` if `(u, v)` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.rows[u].contains(v)
    }

    /// The degree (number of neighbours) of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// The neighbours of `v` in increasing index order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = Vertex> + '_ {
        self.adj[v].iter().map(|&u| Vertex::new(u as usize))
    }

    /// The neighbours of `v` as a raw sorted slice of indices.
    pub fn neighbor_indices(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// The neighbourhood of `v` as a bit set over vertex indices.
    pub fn neighbor_row(&self, v: usize) -> &BitSet {
        &self.rows[v]
    }

    /// Returns `true` if `vs` induces a clique (every two members adjacent).
    pub fn is_clique(&self, vs: &[usize]) -> bool {
        vs.iter()
            .enumerate()
            .all(|(i, &u)| vs[i + 1..].iter().all(|&v| self.has_edge(u, v)))
    }

    /// Returns `true` if `vs` is a stable (independent) set.
    pub fn is_stable_set(&self, vs: &[usize]) -> bool {
        vs.iter()
            .enumerate()
            .all(|(i, &u)| vs[i + 1..].iter().all(|&v| !self.has_edge(u, v)))
    }

    /// The subgraph induced by `keep`, together with the mapping from new
    /// vertex index to original index.
    ///
    /// Vertices keep their relative order.
    pub fn induced_subgraph(&self, keep: &BitSet) -> (Graph, Vec<usize>) {
        let old_of_new: Vec<usize> = keep.iter().collect();
        let mut new_of_old = vec![usize::MAX; self.vertex_count()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old] = new;
        }
        let mut b = GraphBuilder::new(old_of_new.len());
        for (new_u, &old_u) in old_of_new.iter().enumerate() {
            for &old_v in &self.adj[old_u] {
                let old_v = old_v as usize;
                if keep.contains(old_v) && old_v > old_u {
                    b.add_edge(new_u, new_of_old[old_v]);
                }
            }
        }
        (b.build(), old_of_new)
    }

    /// The maximum size of a set of vertices in `subset` that are all in
    /// one clique with vertex `v` — used by verifiers. Returns the number
    /// of members of `subset` adjacent to `v`.
    pub fn adjacent_count_in(&self, v: usize, subset: &BitSet) -> usize {
        self.rows[v].intersection_len(subset)
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("vertices", &self.vertex_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn counts_and_queries() {
        let g = path4();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn edges_listed_once() {
        let g = path4();
        let e: Vec<(usize, usize)> = g.edges().map(|(u, v)| (u.index(), v.index())).collect();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 0), (1, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn clique_and_stable_checks() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2)]);
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
        assert!(g.is_stable_set(&[0, 3]));
        assert!(!g.is_stable_set(&[0, 1]));
        assert!(g.is_stable_set(&[]));
        assert!(g.is_clique(&[]));
    }

    #[test]
    fn add_clique_builder() {
        let mut b = GraphBuilder::new(5);
        b.add_clique(&[0, 2, 4]);
        let g = b.build();
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_clique(&[0, 2, 4]));
    }

    #[test]
    fn induced_subgraph_keeps_structure() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
        let keep = BitSet::from_iter_with_capacity(5, [1, 2, 3]);
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(map, vec![1, 2, 3]);
        // Edges among {1,2,3}: (1,2),(2,3),(1,3) -> triangle.
        assert_eq!(sub.edge_count(), 3);
        assert!(sub.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn from_bit_rows_symmetrizes_and_drops_self_loops() {
        // Rows recorded in one direction only (as interference
        // construction produces them), plus a self-loop.
        let mut rows = vec![BitSet::new(4); 4];
        rows[0].insert(0); // self-loop, dropped
        rows[0].insert(1);
        rows[0].insert(3);
        rows[2].insert(1);
        let g = Graph::from_bit_rows(rows);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(1, 0) && g.has_edge(0, 1));
        assert!(g.has_edge(3, 0));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 0));
        // Sorted adjacency derived consistently with the rows.
        assert_eq!(g.neighbor_indices(1), &[0, 2]);
        assert_eq!(g.neighbor_row(1).iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn from_bit_rows_matches_builder_output() {
        let edges = [(0usize, 1usize), (1, 2), (2, 3), (0, 3), (1, 3)];
        let via_builder = Graph::from_edges(5, &edges);
        let mut rows = vec![BitSet::new(5); 5];
        for &(u, v) in &edges {
            rows[u].insert(v); // one direction only
        }
        assert_eq!(Graph::from_bit_rows(rows), via_builder);
    }

    #[test]
    #[should_panic(expected = "capacity must equal the vertex count")]
    fn from_bit_rows_rejects_mismatched_rows() {
        let _ = Graph::from_bit_rows(vec![BitSet::new(3), BitSet::new(3)]);
    }

    #[test]
    fn neighbor_row_matches_adjacency() {
        let g = path4();
        let row = g.neighbor_row(1);
        assert_eq!(row.iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn vertex_display_and_conversion() {
        let v = Vertex::new(7);
        assert_eq!(format!("{v}"), "v7");
        assert_eq!(format!("{v:?}"), "v7");
        assert_eq!(usize::from(v), 7);
        assert_eq!(Vertex::from(7usize), v);
    }
}
