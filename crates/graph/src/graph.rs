//! Undirected graphs with compact adjacency storage.
//!
//! Interference graphs are simple undirected graphs. We store the
//! adjacency twice, both forms packed into single contiguous arenas:
//!
//! * a **CSR neighbor arena** — one `Vec<u32>` of sorted neighbour
//!   indices plus a `Vec<u32>` of per-vertex offsets — for
//!   cache-friendly iteration ([`Graph::neighbor_indices`] is a slice
//!   into the arena, no per-vertex `Vec`s anywhere), and
//! * a [`BitMatrix`] of adjacency bit rows for O(1) edge queries and
//!   O(n/64) neighbourhood algebra, used heavily by clique enumeration
//!   and the allocation verifier. The matrix is the canonical form:
//!   every constructor funnels into [`Graph::from_bit_matrix`], which
//!   derives the CSR arena in one O(V + E) pass.

use crate::bitset::{BitMatrix, BitRow, BitSet};

/// An index identifying a vertex (a variable) of a [`Graph`].
///
/// `Vertex` is a newtype over `u32`; use [`Vertex::index`] to index into
/// side tables.
///
/// # Examples
///
/// ```
/// use lra_graph::Vertex;
/// let v = Vertex::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vertex(u32);

impl Vertex {
    /// Creates a vertex from its index.
    pub fn new(index: usize) -> Self {
        Vertex(u32::try_from(index).expect("vertex index fits in u32"))
    }

    /// The index of this vertex, usable into side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Vertex {
    fn from(index: usize) -> Self {
        Vertex::new(index)
    }
}

impl From<Vertex> for usize {
    fn from(v: Vertex) -> usize {
        v.index()
    }
}

impl std::fmt::Debug for Vertex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Display for Vertex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Incrementally builds a [`Graph`] from edges.
///
/// Duplicate edges and self-loops are ignored, so callers can add
/// interferences without deduplicating first.
///
/// # Examples
///
/// ```
/// use lra_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, ignored
/// b.add_edge(2, 2); // self-loop, ignored
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    rows: BitMatrix,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            rows: BitMatrix::new(n, n),
        }
    }

    /// Adds the undirected edge `(u, v)`. Self-loops and duplicates are
    /// silently ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> &mut Self {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range for {} vertices",
            self.n
        );
        if u != v {
            self.rows.insert(u, v);
            self.rows.insert(v, u);
        }
        self
    }

    /// Returns `true` if the edge `(u, v)` has been added.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.rows.contains(u, v)
    }

    /// Adds every edge of the clique over `members`.
    pub fn add_clique(&mut self, members: &[usize]) -> &mut Self {
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                self.add_edge(u, v);
            }
        }
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Graph {
        Graph::from_bit_matrix(self.rows)
    }
}

/// A simple undirected graph with vertices `0..n`.
///
/// Construct with [`GraphBuilder`] or [`Graph::from_edges`].
///
/// # Examples
///
/// ```
/// use lra_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(g.vertex_count(), 4);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(2, 1));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR neighbor arena: sorted neighbour indices of vertex `v` live
    /// at `nbrs[offsets[v]..offsets[v + 1]]`.
    nbrs: Vec<u32>,
    offsets: Vec<u32>,
    rows: BitMatrix,
    edge_count: usize,
}

impl Graph {
    /// Builds a graph directly from an adjacency bit matrix, taking its
    /// **symmetric closure**: an edge exists when either endpoint's row
    /// names the other. Self-loops are dropped.
    ///
    /// This is the fast path for interference construction: callers
    /// union whole live sets into a definition's row with word-level
    /// [`BitMatrix::union_row_with`] — O(n/64) per definition instead
    /// of one `add_edge` call per live value — and this constructor
    /// mirrors the edges and derives the CSR neighbor arena in one
    /// final O(V + E) pass. The matrix is retained as the graph's
    /// canonical adjacency; no per-vertex edge list is ever
    /// materialized.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square (`capacity != row_count`).
    pub fn from_bit_matrix(mut rows: BitMatrix) -> Self {
        let n = rows.row_count();
        assert_eq!(
            rows.capacity(),
            n,
            "matrix capacity must equal the vertex count {n}"
        );
        let wpr = rows.words_per_row();
        for v in 0..n {
            rows.remove(v, v);
        }
        // Mirror the edges recorded in one direction only. Words are
        // copied out before mutating so row `u` can be walked while
        // other rows gain bits; insertion is idempotent, so mirroring
        // an already-symmetric edge is harmless.
        for u in 0..n {
            for wi in 0..wpr {
                let mut w = rows.words()[u * wpr + wi];
                while w != 0 {
                    let v = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    rows.insert(v, u);
                }
            }
        }
        let total = rows.count_ones();
        let mut nbrs: Vec<u32> = Vec::with_capacity(total);
        let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
        offsets.push(0);
        for v in 0..n {
            nbrs.extend(rows.row(v).iter().map(|u| u as u32));
            offsets.push(u32::try_from(nbrs.len()).expect("neighbor arena fits in u32"));
        }
        Graph {
            nbrs,
            offsets,
            rows,
            edge_count: total / 2,
        }
    }

    /// Builds a graph from per-vertex adjacency bit rows (symmetric
    /// closure, self-loops dropped) — a compatibility wrapper that
    /// packs the rows into a [`BitMatrix`] and delegates to
    /// [`Graph::from_bit_matrix`]. New code should build the matrix
    /// directly and skip the copy.
    ///
    /// # Panics
    ///
    /// Panics if any row's capacity differs from the number of rows.
    pub fn from_bit_rows(rows: Vec<BitSet>) -> Self {
        let n = rows.len();
        let mut m = BitMatrix::new(n, n);
        for (v, row) in rows.iter().enumerate() {
            assert_eq!(
                row.capacity(),
                n,
                "row {v} capacity must equal the vertex count {n}"
            );
            m.union_row_with(v, row);
        }
        Graph::from_bit_matrix(m)
    }

    /// Creates a graph on `n` vertices from an edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Creates the empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// The number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all vertices in index order.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        (0..self.vertex_count()).map(Vertex::new)
    }

    /// Iterates over every edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        (0..self.vertex_count()).flat_map(move |u| {
            self.neighbor_indices(u)
                .iter()
                .filter(move |&&v| (v as usize) > u)
                .map(move |&v| (Vertex::new(u), Vertex::new(v as usize)))
        })
    }

    /// Returns `true` if `(u, v)` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.rows.contains(u, v)
    }

    /// The degree (number of neighbours) of `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The neighbours of `v` in increasing index order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = Vertex> + '_ {
        self.neighbor_indices(v)
            .iter()
            .map(|&u| Vertex::new(u as usize))
    }

    /// The neighbours of `v` as a raw sorted slice of indices — a view
    /// into the shared CSR arena, not a per-vertex allocation.
    pub fn neighbor_indices(&self, v: usize) -> &[u32] {
        &self.nbrs[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The neighbourhood of `v` as a borrowed bit row over vertex
    /// indices.
    pub fn neighbor_row(&self, v: usize) -> BitRow<'_> {
        self.rows.row(v)
    }

    /// The packed adjacency matrix words: vertex 0's row words, then
    /// vertex 1's, and so on — `vertex_count().div_ceil(64)` words per
    /// row. Exposed so cache keys and fingerprints can copy or hash the
    /// whole adjacency in one O(words) pass.
    pub fn adjacency_words(&self) -> &[u64] {
        self.rows.words()
    }

    /// An estimate of the heap bytes resident in this graph's packed
    /// arenas (CSR neighbours + offsets + adjacency bit matrix).
    pub fn resident_bytes(&self) -> usize {
        self.nbrs.capacity() * std::mem::size_of::<u32>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.rows.resident_bytes()
    }

    /// Returns `true` if `vs` induces a clique (every two members adjacent).
    pub fn is_clique(&self, vs: &[usize]) -> bool {
        vs.iter()
            .enumerate()
            .all(|(i, &u)| vs[i + 1..].iter().all(|&v| self.has_edge(u, v)))
    }

    /// Returns `true` if `vs` is a stable (independent) set.
    pub fn is_stable_set(&self, vs: &[usize]) -> bool {
        vs.iter()
            .enumerate()
            .all(|(i, &u)| vs[i + 1..].iter().all(|&v| !self.has_edge(u, v)))
    }

    /// The subgraph induced by `keep`, together with the mapping from new
    /// vertex index to original index.
    ///
    /// Vertices keep their relative order.
    pub fn induced_subgraph(&self, keep: &BitSet) -> (Graph, Vec<usize>) {
        let old_of_new: Vec<usize> = keep.iter().collect();
        let mut new_of_old = vec![usize::MAX; self.vertex_count()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old] = new;
        }
        let k = old_of_new.len();
        let mut m = BitMatrix::new(k, k);
        for (new_u, &old_u) in old_of_new.iter().enumerate() {
            for &old_v in self.neighbor_indices(old_u) {
                let old_v = old_v as usize;
                if keep.contains(old_v) && old_v > old_u {
                    m.insert(new_u, new_of_old[old_v]);
                }
            }
        }
        (Graph::from_bit_matrix(m), old_of_new)
    }

    /// The maximum size of a set of vertices in `subset` that are all in
    /// one clique with vertex `v` — used by verifiers. Returns the number
    /// of members of `subset` adjacent to `v`.
    pub fn adjacent_count_in(&self, v: usize, subset: &BitSet) -> usize {
        self.rows.row(v).intersection_len(subset)
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("vertices", &self.vertex_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn counts_and_queries() {
        let g = path4();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn edges_listed_once() {
        let g = path4();
        let e: Vec<(usize, usize)> = g.edges().map(|(u, v)| (u.index(), v.index())).collect();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 0), (1, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn clique_and_stable_checks() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2)]);
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
        assert!(g.is_stable_set(&[0, 3]));
        assert!(!g.is_stable_set(&[0, 1]));
        assert!(g.is_stable_set(&[]));
        assert!(g.is_clique(&[]));
    }

    #[test]
    fn add_clique_builder() {
        let mut b = GraphBuilder::new(5);
        b.add_clique(&[0, 2, 4]);
        let g = b.build();
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_clique(&[0, 2, 4]));
    }

    #[test]
    fn induced_subgraph_keeps_structure() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
        let keep = BitSet::from_iter_with_capacity(5, [1, 2, 3]);
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(map, vec![1, 2, 3]);
        // Edges among {1,2,3}: (1,2),(2,3),(1,3) -> triangle.
        assert_eq!(sub.edge_count(), 3);
        assert!(sub.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn from_bit_rows_symmetrizes_and_drops_self_loops() {
        // Rows recorded in one direction only (as interference
        // construction produces them), plus a self-loop.
        let mut rows = vec![BitSet::new(4); 4];
        rows[0].insert(0); // self-loop, dropped
        rows[0].insert(1);
        rows[0].insert(3);
        rows[2].insert(1);
        let g = Graph::from_bit_rows(rows);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(1, 0) && g.has_edge(0, 1));
        assert!(g.has_edge(3, 0));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 0));
        // Sorted adjacency derived consistently with the rows.
        assert_eq!(g.neighbor_indices(1), &[0, 2]);
        assert_eq!(g.neighbor_row(1).iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn from_bit_rows_matches_builder_output() {
        let edges = [(0usize, 1usize), (1, 2), (2, 3), (0, 3), (1, 3)];
        let via_builder = Graph::from_edges(5, &edges);
        let mut rows = vec![BitSet::new(5); 5];
        for &(u, v) in &edges {
            rows[u].insert(v); // one direction only
        }
        assert_eq!(Graph::from_bit_rows(rows), via_builder);
    }

    #[test]
    #[should_panic(expected = "capacity must equal the vertex count")]
    fn from_bit_rows_rejects_mismatched_rows() {
        let _ = Graph::from_bit_rows(vec![BitSet::new(3), BitSet::new(3)]);
    }

    #[test]
    fn from_bit_matrix_matches_from_bit_rows() {
        // Same one-directional edges through both constructors.
        let mut m = BitMatrix::new(4, 4);
        m.insert(0, 0); // self-loop, dropped
        m.insert(0, 1);
        m.insert(0, 3);
        m.insert(2, 1);
        let mut rows = vec![BitSet::new(4); 4];
        rows[0].insert(0);
        rows[0].insert(1);
        rows[0].insert(3);
        rows[2].insert(1);
        assert_eq!(Graph::from_bit_matrix(m), Graph::from_bit_rows(rows));
    }

    #[test]
    #[should_panic(expected = "capacity must equal the vertex count")]
    fn from_bit_matrix_rejects_non_square() {
        let _ = Graph::from_bit_matrix(BitMatrix::new(2, 3));
    }

    #[test]
    fn adjacency_words_concatenate_rows() {
        let g = path4();
        let words = g.adjacency_words();
        // 4 vertices → 1 word per row.
        assert_eq!(words.len(), 4);
        for (v, &word) in words.iter().enumerate() {
            assert_eq!(word, g.neighbor_row(v).words()[0]);
        }
        assert!(g.resident_bytes() > 0);
    }

    #[test]
    fn neighbor_indices_are_csr_slices() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
        for v in 0..5 {
            assert_eq!(g.neighbor_indices(v).len(), g.degree(v));
            let from_row: Vec<u32> = g.neighbor_row(v).iter().map(|u| u as u32).collect();
            assert_eq!(g.neighbor_indices(v), from_row.as_slice());
        }
    }

    #[test]
    fn neighbor_row_matches_adjacency() {
        let g = path4();
        let row = g.neighbor_row(1);
        assert_eq!(row.iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn vertex_display_and_conversion() {
        let v = Vertex::new(7);
        assert_eq!(format!("{v}"), "v7");
        assert_eq!(format!("{v:?}"), "v7");
        assert_eq!(usize::from(v), 7);
        assert_eq!(Vertex::from(7usize), v);
    }
}
