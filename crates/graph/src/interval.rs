//! Interval graphs: live ranges over a linearised program order.
//!
//! Linear-scan style frameworks approximate each live range by one
//! interval `[start, end)` over a linearisation of the program. The
//! intersection graph of intervals is an **interval graph** — a subclass
//! of chordal graphs — and its maximal cliques correspond exactly to
//! program points, which makes register pressure (`MaxLive`) explicit.
//! The exact spill-everywhere solver for interval instances reduces to a
//! min-cost flow over interval endpoints (see `lra-core`).

use crate::graph::{Graph, GraphBuilder, Vertex};

/// A half-open interval `[start, end)` of program points.
///
/// Zero-length intervals (`start == end`) are legal and overlap nothing.
///
/// # Examples
///
/// ```
/// use lra_graph::Interval;
/// let a = Interval::new(0, 4);
/// let b = Interval::new(3, 6);
/// assert!(a.overlaps(&b));
/// assert!(!a.overlaps(&Interval::new(4, 5)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    /// First program point covered.
    pub start: u32,
    /// One past the last program point covered.
    pub end: u32,
}

impl Interval {
    /// Creates `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "interval start {start} exceeds end {end}");
        Interval { start, end }
    }

    /// Returns `true` if the two half-open intervals intersect.
    /// Empty intervals overlap nothing.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// The number of program points covered.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Returns `true` if the interval covers no program point.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns `true` if `point` lies inside the interval.
    pub fn contains_point(&self, point: u32) -> bool {
        self.start <= point && point < self.end
    }
}

/// Builds the intersection graph of `intervals` (vertex `i` ↔
/// `intervals[i]`).
///
/// Runs a sweep over sorted endpoints, O(n log n + |E|).
///
/// # Examples
///
/// ```
/// use lra_graph::interval::{interval_graph, Interval};
/// let g = interval_graph(&[Interval::new(0, 3), Interval::new(2, 5), Interval::new(4, 6)]);
/// assert!(g.has_edge(0, 1));
/// assert!(g.has_edge(1, 2));
/// assert!(!g.has_edge(0, 2));
/// ```
pub fn interval_graph(intervals: &[Interval]) -> Graph {
    let n = intervals.len();
    let mut b = GraphBuilder::new(n);
    // Sweep: sort by start; active list pruned by end.
    let mut by_start: Vec<usize> = (0..n).collect();
    by_start.sort_by_key(|&i| intervals[i].start);
    let mut active: Vec<usize> = Vec::new();
    for &i in &by_start {
        active.retain(|&j| intervals[j].end > intervals[i].start);
        for &j in &active {
            if intervals[j].overlaps(&intervals[i]) {
                b.add_edge(i, j);
            }
        }
        if !intervals[i].is_empty() {
            active.push(i);
        }
    }
    b.build()
}

/// The maximum number of intervals simultaneously overlapping a point —
/// the `MaxLive` of the linearised program.
pub fn max_overlap(intervals: &[Interval]) -> usize {
    let mut events: Vec<(u32, i32)> = Vec::with_capacity(intervals.len() * 2);
    for iv in intervals {
        if !iv.is_empty() {
            events.push((iv.start, 1));
            events.push((iv.end, -1));
        }
    }
    events.sort();
    let mut live = 0i32;
    let mut max = 0i32;
    for (_, d) in events {
        live += d;
        max = max.max(live);
    }
    max as usize
}

/// An interval-order PEO: sorting vertices by **increasing end point**
/// yields a perfect elimination order of the interval graph.
///
/// (A vertex's later neighbours all contain its end point, hence mutually
/// overlap.)
pub fn interval_peo(intervals: &[Interval]) -> Vec<Vertex> {
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_by_key(|&i| (intervals[i].end, intervals[i].start));
    order.into_iter().map(Vertex::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peo;

    #[test]
    fn overlap_semantics_half_open() {
        let a = Interval::new(0, 2);
        assert!(!a.overlaps(&Interval::new(2, 4)));
        assert!(a.overlaps(&Interval::new(1, 2)));
        assert!(!a.overlaps(&Interval::new(1, 1))); // empty interval
        assert!(a.contains_point(0));
        assert!(!a.contains_point(2));
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds end")]
    fn backwards_interval_panics() {
        let _ = Interval::new(3, 2);
    }

    #[test]
    fn graph_matches_pairwise_overlap() {
        let ivs = [
            Interval::new(0, 5),
            Interval::new(3, 8),
            Interval::new(8, 10),
            Interval::new(4, 9),
            Interval::new(2, 2),
        ];
        let g = interval_graph(&ivs);
        for i in 0..ivs.len() {
            for j in i + 1..ivs.len() {
                assert_eq!(
                    g.has_edge(i, j),
                    ivs[i].overlaps(&ivs[j]),
                    "edge ({i},{j}) mismatch"
                );
            }
        }
    }

    #[test]
    fn interval_graphs_are_chordal() {
        let ivs = [
            Interval::new(0, 4),
            Interval::new(1, 6),
            Interval::new(5, 9),
            Interval::new(2, 8),
            Interval::new(7, 12),
        ];
        let g = interval_graph(&ivs);
        assert!(peo::is_chordal(&g));
        let order = interval_peo(&ivs);
        assert!(peo::is_perfect_elimination_order(&g, &order));
    }

    #[test]
    fn max_overlap_counts_pressure() {
        let ivs = [
            Interval::new(0, 10),
            Interval::new(2, 5),
            Interval::new(3, 4),
            Interval::new(6, 8),
        ];
        assert_eq!(max_overlap(&ivs), 3); // at point 3: all of 0,1,2
        assert_eq!(max_overlap(&[]), 0);
        assert_eq!(max_overlap(&[Interval::new(1, 1)]), 0);
    }

    #[test]
    fn max_overlap_touching_endpoints_do_not_stack() {
        let ivs = [Interval::new(0, 3), Interval::new(3, 6)];
        assert_eq!(max_overlap(&ivs), 1);
    }
}
