//! Weighted interference-graph substrate for layered register allocation.
//!
//! This crate implements the graph-theoretic machinery that the layered
//! spilling heuristic of Diouf, Cohen & Rastello (*A Polynomial Spilling
//! Heuristic: Layered Allocation*, CGO 2013) is built on:
//!
//! * undirected [`Graph`]s and [`WeightedGraph`]s with spill costs
//!   ([`graph`], [`weights`]),
//! * perfect elimination orders via maximum-cardinality search and
//!   lexicographic BFS, and chordality testing ([`peo`]),
//! * Frank's linear-time **maximum weighted stable set** algorithm on
//!   chordal graphs — the engine of each allocation layer ([`stable`]),
//! * maximal-clique enumeration and **clique trees** of chordal graphs,
//!   used by the fixed-point improvement and by the exact solver
//!   ([`cliques`]),
//! * greedy elimination-order colouring (the *tree-scan* assignment
//!   stage) ([`coloring`]),
//! * interval graphs, the subclass produced by linearised live ranges
//!   ([`interval`]),
//! * seeded random generators for chordal, interval and general graphs
//!   ([`generate`]),
//! * Graphviz export ([`dot`]).
//!
//! # Example
//!
//! Find the maximum weighted stable set of the chordal graph from Figure 4
//! of the paper:
//!
//! ```
//! use lra_graph::{GraphBuilder, WeightedGraph, peo, stable};
//!
//! // Vertices: a=0, b=1, c=2, d=3, e=4, f=5, g=6 (Figure 4 / 5 of the paper).
//! let mut b = GraphBuilder::new(7);
//! for &(u, v) in &[(0, 3), (0, 5), (3, 5), (3, 4), (4, 5), (2, 3), (2, 4), (1, 2), (1, 6), (2, 6)] {
//!     b.add_edge(u, v);
//! }
//! let g = b.build();
//! let wg = WeightedGraph::new(g, vec![1, 2, 2, 5, 2, 6, 1]);
//! let order = peo::perfect_elimination_order(wg.graph()).expect("graph is chordal");
//! let set = stable::max_weight_stable_set(&wg, &order);
//! assert_eq!(set.weight, 8); // {b, f} as in Figure 5
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod cliques;
pub mod coloring;
pub mod dot;
pub mod generate;
pub mod graph;
pub mod interval;
pub mod peo;
pub mod stable;
pub mod weights;

pub use bitset::{BitMatrix, BitRow, BitSet};
pub use cliques::{maximal_cliques, CliqueTree};
pub use graph::{Graph, GraphBuilder, Vertex};
pub use interval::Interval;
pub use weights::{Cost, WeightedGraph};
