//! Perfect elimination orders and chordality testing.
//!
//! A graph is *chordal* iff it admits a **perfect elimination order**
//! (PEO): an ordering `v1, …, vn` such that each `vi` is simplicial in the
//! subgraph induced by `{vi, …, vn}` (its later neighbours form a clique).
//! Interference graphs of strict-SSA programs are chordal (Hack et al.),
//! which is the structural fact the layered allocator exploits.
//!
//! Two classic linear-time orderings are provided:
//!
//! * **Maximum cardinality search** (MCS, Tarjan & Yannakakis): repeatedly
//!   visit the unvisited vertex with the most visited neighbours. The
//!   *reverse* of the visit order is a PEO iff the graph is chordal.
//! * **Lexicographic BFS** (Rose, Tarjan & Lueker): partition-refinement
//!   search whose reverse visit order is likewise a PEO iff chordal.
//!
//! [`is_perfect_elimination_order`] verifies a candidate order using the
//! Golumbic check, and [`is_chordal`] combines MCS with that check.

use crate::graph::{Graph, Vertex};

/// Computes a maximum-cardinality-search order of `g`.
///
/// The returned vector lists vertices in *visit* order. If `g` is
/// chordal, the reverse of this order is a perfect elimination order.
/// Runs in O(|V| + |E|).
///
/// # Examples
///
/// ```
/// use lra_graph::{Graph, peo};
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
/// let order = peo::mcs_order(&g);
/// assert_eq!(order.len(), 3);
/// ```
pub fn mcs_order(g: &Graph) -> Vec<Vertex> {
    let n = g.vertex_count();
    let mut weight = vec![0usize; n];
    let mut visited = vec![false; n];
    // Buckets of vertices by current weight, with lazy deletion.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
    for v in 0..n {
        buckets[0].push(v as u32);
    }
    let mut max_weight = 0usize;
    let mut order = Vec::with_capacity(n);

    for _ in 0..n {
        // Find the unvisited vertex of maximal current weight.
        let v = loop {
            match buckets[max_weight].pop() {
                Some(c) => {
                    let c = c as usize;
                    if !visited[c] && weight[c] == max_weight {
                        break c;
                    }
                }
                None => {
                    debug_assert!(max_weight > 0, "bucket scan ran past weight 0");
                    max_weight -= 1;
                }
            }
        };
        visited[v] = true;
        order.push(Vertex::new(v));
        for u in g.neighbor_indices(v) {
            let u = *u as usize;
            if !visited[u] {
                weight[u] += 1;
                buckets[weight[u]].push(u as u32);
                if weight[u] > max_weight {
                    max_weight = weight[u];
                }
            }
        }
    }
    order
}

/// Computes a lexicographic-BFS order of `g`, in visit order.
///
/// Like [`mcs_order`], the reverse visit order is a PEO iff `g` is
/// chordal. This implementation uses label lists and runs in
/// O(|V| + |E| log |V|) — comfortably fast for interference graphs.
pub fn lex_bfs_order(g: &Graph) -> Vec<Vertex> {
    let n = g.vertex_count();
    // labels[v] = decreasing list of visit positions of v's visited
    // neighbours; compare lexicographically.
    let mut labels: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);

    for step in 0..n {
        let v = (0..n)
            .filter(|&v| !visited[v])
            .max_by(|&a, &b| labels[a].cmp(&labels[b]).then(b.cmp(&a)))
            .expect("an unvisited vertex remains");
        visited[v] = true;
        order.push(Vertex::new(v));
        for u in g.neighbor_indices(v) {
            let u = *u as usize;
            if !visited[u] {
                // Positions only grow, so pushing keeps labels sorted
                // decreasingly if we store n - step.
                labels[u].push((n - step) as u32);
            }
        }
    }
    order
}

/// Checks whether `order` (elimination order: first vertex eliminated
/// first) is a perfect elimination order of `g`.
///
/// Uses the standard single-pass check: for every vertex `v`, let `u` be
/// its earliest-eliminated later neighbour; then all other later
/// neighbours of `v` must be adjacent to `u`. Runs in O(|V| + |E|)
/// amortised bit-set operations.
///
/// Returns `false` (rather than panicking) if `order` is not a
/// permutation of the vertices.
pub fn is_perfect_elimination_order(g: &Graph, order: &[Vertex]) -> bool {
    let n = g.vertex_count();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, v) in order.iter().enumerate() {
        if v.index() >= n || pos[v.index()] != usize::MAX {
            return false;
        }
        pos[v.index()] = i;
    }
    for &v in order {
        let v = v.index();
        // Later neighbours of v in elimination order.
        let mut later: Vec<usize> = g
            .neighbor_indices(v)
            .iter()
            .map(|&u| u as usize)
            .filter(|&u| pos[u] > pos[v])
            .collect();
        if later.len() <= 1 {
            continue;
        }
        later.sort_by_key(|&u| pos[u]);
        let first = later[0];
        let row = g.neighbor_row(first);
        if !later[1..].iter().all(|&u| row.contains(u)) {
            return false;
        }
    }
    true
}

/// Returns a perfect elimination order of `g` if one exists.
///
/// Computes an MCS order and verifies it: the reverse MCS order is a PEO
/// exactly when `g` is chordal, so `None` means *not chordal*.
///
/// # Examples
///
/// ```
/// use lra_graph::{Graph, peo};
/// // A 4-cycle has no chord, hence no PEO.
/// let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert!(peo::perfect_elimination_order(&c4).is_none());
/// ```
pub fn perfect_elimination_order(g: &Graph) -> Option<Vec<Vertex>> {
    let mut order = mcs_order(g);
    order.reverse();
    is_perfect_elimination_order(g, &order).then_some(order)
}

/// Returns `true` if `g` is chordal (every cycle of length ≥ 4 has a
/// chord).
pub fn is_chordal(g: &Graph) -> bool {
    perfect_elimination_order(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// The chordal graph of Figure 4 in the paper:
    /// a=0, b=1, c=2, d=3, e=4, f=5, g=6.
    ///
    /// Edges reconstructed from the worked trace of Figure 5(b): `a` is
    /// adjacent to `{d, f}`, `f` to `{a, d, e}`, marking `b` red reduces
    /// both `g` and `c`, and the paper's order `[a, f, d, e, b, g, c]` is
    /// a PEO — which forces edges `b–c`, `b–g` and `c–g`.
    pub(crate) fn figure4() -> Graph {
        let mut b = GraphBuilder::new(7);
        for &(u, v) in &[
            (0, 3),
            (0, 5),
            (3, 5),
            (3, 4),
            (4, 5),
            (2, 3),
            (2, 4),
            (1, 2),
            (1, 6),
            (2, 6),
        ] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn figure4_is_chordal() {
        assert!(is_chordal(&figure4()));
    }

    #[test]
    fn paper_peo_of_figure4_validates() {
        // The paper states [a, f, d, e, b, g, c] is a PEO of Figure 4.
        let order: Vec<Vertex> = [0, 5, 3, 4, 1, 6, 2].map(Vertex::new).to_vec();
        assert!(is_perfect_elimination_order(&figure4(), &order));
    }

    #[test]
    fn non_peo_order_rejected() {
        // Eliminating d (=3) first: its later neighbours a, c, e, f are
        // not a clique (a and c are not adjacent).
        let order: Vec<Vertex> = [3, 0, 5, 4, 1, 6, 2].map(Vertex::new).to_vec();
        assert!(!is_perfect_elimination_order(&figure4(), &order));
    }

    #[test]
    fn cycles_are_not_chordal() {
        for n in 4..9 {
            let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            let g = Graph::from_edges(n, &edges);
            assert!(!is_chordal(&g), "C{n} must not be chordal");
        }
    }

    #[test]
    fn chorded_cycle_is_chordal() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert!(is_chordal(&g));
    }

    #[test]
    fn trees_and_cliques_are_chordal() {
        let tree = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        assert!(is_chordal(&tree));
        let mut b = GraphBuilder::new(5);
        b.add_clique(&[0, 1, 2, 3, 4]);
        assert!(is_chordal(&b.build()));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(is_chordal(&Graph::empty(0)));
        assert!(is_chordal(&Graph::empty(1)));
        assert_eq!(
            perfect_elimination_order(&Graph::empty(3)).unwrap().len(),
            3
        );
    }

    #[test]
    fn lex_bfs_reverse_is_peo_on_chordal() {
        let g = figure4();
        let mut order = lex_bfs_order(&g);
        order.reverse();
        assert!(is_perfect_elimination_order(&g, &order));
    }

    #[test]
    fn mcs_order_is_permutation() {
        let g = figure4();
        let mut seen = [false; 7];
        for v in mcs_order(&g) {
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn wrong_length_order_rejected() {
        let g = figure4();
        assert!(!is_perfect_elimination_order(&g, &[Vertex::new(0)]));
        let dup = vec![Vertex::new(0); 7];
        assert!(!is_perfect_elimination_order(&g, &dup));
    }

    #[test]
    fn disconnected_chordal() {
        // Two triangles, disconnected.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        assert!(is_chordal(&g));
    }
}
