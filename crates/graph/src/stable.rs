//! Frank's maximum weighted stable set algorithm on chordal graphs.
//!
//! This is Algorithm 1 of the paper (due to Frank, 1975): two passes over
//! a perfect elimination order compute a **maximum weighted stable set**
//! of a chordal graph in O(|V| + |E|).
//!
//! The first pass scans the PEO; each vertex whose *residual* weight is
//! still positive is marked **red** and its residual weight is subtracted
//! from all neighbours (clamped at zero). The second pass pops red
//! vertices in reverse (LIFO) order and greedily keeps those not adjacent
//! to an already-kept (**blue**) vertex. The blue set is a stable set of
//! maximum total weight.
//!
//! In the layered allocator each *layer* is one such stable set: a set of
//! variables that can all be given the same register.

use crate::bitset::BitSet;
use crate::graph::Vertex;
use crate::weights::{Cost, WeightedGraph};

/// A stable set together with its total weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StableSet {
    /// Members of the stable set, in increasing vertex order.
    pub vertices: Vec<Vertex>,
    /// Total weight of the members.
    pub weight: Cost,
}

/// Computes a maximum weighted stable set of the chordal graph `wg`.
///
/// `order` must be a perfect elimination order of `wg.graph()` (see
/// [`crate::peo::perfect_elimination_order`]). Vertices of zero weight
/// are never selected — in allocation terms, a variable with zero spill
/// cost gains nothing from a register, which mirrors the `w' > 0` test in
/// the paper's Algorithm 1.
///
/// Runs in O(|V| + |E|).
///
/// # Panics
///
/// Panics if `order` is not a permutation of the vertices. The result is
/// only guaranteed optimal when `order` is a genuine PEO.
///
/// # Examples
///
/// ```
/// use lra_graph::{Graph, WeightedGraph, peo, stable};
///
/// // Path a—b—c with weights 1, 5, 1: the best stable set is {b}.
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let wg = WeightedGraph::new(g, vec![1, 5, 1]);
/// let order = peo::perfect_elimination_order(wg.graph()).unwrap();
/// let s = stable::max_weight_stable_set(&wg, &order);
/// assert_eq!(s.weight, 5);
/// ```
pub fn max_weight_stable_set(wg: &WeightedGraph, order: &[Vertex]) -> StableSet {
    max_weight_stable_set_restricted(wg, order, None)
}

/// Like [`max_weight_stable_set`], but restricted to the sub-universe
/// `candidates` (vertices outside it are ignored entirely).
///
/// The restriction of a PEO to an induced subgraph is still a PEO, so
/// passing the full-graph order with a candidate filter stays optimal.
/// This is the form the layered allocator uses: after each layer the
/// allocated vertices leave the candidate set, but the graph and its PEO
/// are computed once.
pub fn max_weight_stable_set_restricted(
    wg: &WeightedGraph,
    order: &[Vertex],
    candidates: Option<&BitSet>,
) -> StableSet {
    let g = wg.graph();
    let n = g.vertex_count();
    assert_eq!(order.len(), n, "order must cover all vertices");

    let in_universe = |v: usize| candidates.is_none_or(|c| c.contains(v));

    // Pass 1: residual weights along the PEO; mark red.
    let mut residual: Vec<Cost> = (0..n).map(|v| wg.weight(v)).collect();
    let mut red_stack: Vec<u32> = Vec::new();
    for &v in order {
        let v = v.index();
        if !in_universe(v) {
            continue;
        }
        let rv = residual[v];
        if rv > 0 {
            red_stack.push(v as u32);
            for &u in g.neighbor_indices(v) {
                let u = u as usize;
                if in_universe(u) {
                    residual[u] = residual[u].saturating_sub(rv);
                }
            }
            residual[v] = 0;
        }
    }

    // Pass 2: pop red vertices LIFO; keep (mark blue) those not adjacent
    // to an already-blue vertex.
    let mut blue = BitSet::new(n);
    let mut vertices = Vec::new();
    let mut weight: Cost = 0;
    for &v in red_stack.iter().rev() {
        let v = v as usize;
        if g.neighbor_row(v).is_disjoint(&blue) {
            blue.insert(v);
            vertices.push(Vertex::new(v));
            weight += wg.weight(v);
        }
    }
    vertices.sort();
    StableSet { vertices, weight }
}

/// Exhaustively computes a maximum weighted stable set of **any** graph.
///
/// Exponential-time reference implementation used by tests and by the
/// exact solver on tiny graphs; works on non-chordal graphs too.
///
/// # Panics
///
/// Panics if the (candidate-restricted) universe exceeds 63 vertices.
pub fn max_weight_stable_set_brute(wg: &WeightedGraph, candidates: Option<&BitSet>) -> StableSet {
    let g = wg.graph();
    let universe: Vec<usize> = match candidates {
        Some(c) => c.iter().collect(),
        None => (0..g.vertex_count()).collect(),
    };
    assert!(universe.len() <= 63, "brute force limited to 63 vertices");

    // Branch-and-bound over the universe ordered by decreasing weight.
    let mut by_weight = universe.clone();
    by_weight.sort_by_key(|&v| std::cmp::Reverse(wg.weight(v)));
    let suffix_weight: Vec<Cost> = {
        let mut s = vec![0; by_weight.len() + 1];
        for i in (0..by_weight.len()).rev() {
            s[i] = s[i + 1] + wg.weight(by_weight[i]);
        }
        s
    };

    struct Search<'a> {
        wg: &'a WeightedGraph,
        vs: Vec<usize>,
        suffix: Vec<Cost>,
        best: Cost,
        best_set: Vec<usize>,
    }
    impl Search<'_> {
        fn go(&mut self, i: usize, picked: &mut Vec<usize>, w: Cost) {
            if w > self.best {
                self.best = w;
                self.best_set = picked.clone();
            }
            if i == self.vs.len() || w + self.suffix[i] <= self.best {
                return;
            }
            let v = self.vs[i];
            let compatible = picked.iter().all(|&p| !self.wg.graph().has_edge(p, v));
            if compatible {
                picked.push(v);
                self.go(i + 1, picked, w + self.wg.weight(v));
                picked.pop();
            }
            self.go(i + 1, picked, w);
        }
    }

    let mut s = Search {
        wg,
        vs: by_weight,
        suffix: suffix_weight,
        best: 0,
        best_set: Vec::new(),
    };
    s.go(0, &mut Vec::new(), 0);
    let mut vertices: Vec<Vertex> = s.best_set.iter().map(|&v| Vertex::new(v)).collect();
    vertices.sort();
    StableSet {
        vertices,
        weight: s.best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphBuilder};
    use crate::peo;

    /// The weighted chordal graph of Figure 5(a): vertices a..g = 0..6
    /// with weights a=1, b=2, c=2, d=5, e=2, f=6, g=1.
    ///
    /// Edges reconstructed from the Figure 5(b) trace (see
    /// `peo::tests::figure4`): marking `b` red reduces `g` and `c`, and
    /// the paper's PEO forces `c–g`.
    fn figure5() -> WeightedGraph {
        let mut b = GraphBuilder::new(7);
        for &(u, v) in &[
            (0, 3),
            (0, 5),
            (3, 5),
            (3, 4),
            (4, 5),
            (2, 3),
            (2, 4),
            (1, 2),
            (1, 6),
            (2, 6),
        ] {
            b.add_edge(u, v);
        }
        WeightedGraph::new(b.build(), vec![1, 2, 2, 5, 2, 6, 1])
    }

    /// The paper's PEO for Figure 4/5: [a, f, d, e, b, g, c].
    fn paper_order() -> Vec<Vertex> {
        [0, 5, 3, 4, 1, 6, 2].map(Vertex::new).to_vec()
    }

    #[test]
    fn frank_fig5_weight_and_set() {
        let wg = figure5();
        let s = max_weight_stable_set(&wg, &paper_order());
        // The paper finds {b, f} with weight 8.
        assert_eq!(s.weight, 8);
        assert_eq!(s.vertices, vec![Vertex::new(1), Vertex::new(5)]);
        assert!(wg.graph().is_stable_set(&[1, 5]));
    }

    #[test]
    fn frank_fig5_red_then_blue_trace() {
        // With the paper's PEO the red stack is [a, f, b]; popping LIFO
        // keeps b, then f (a is rejected: adjacent to f). Verified by the
        // final set in `frank_fig5_weight_and_set`; here we check the
        // weight equals the brute-force optimum.
        let wg = figure5();
        let brute = max_weight_stable_set_brute(&wg, None);
        assert_eq!(brute.weight, 8);
    }

    #[test]
    fn frank_matches_brute_on_any_peo() {
        let wg = figure5();
        let order = peo::perfect_elimination_order(wg.graph()).unwrap();
        let s = max_weight_stable_set(&wg, &order);
        assert_eq!(s.weight, 8);
    }

    #[test]
    fn restricted_universe() {
        let wg = figure5();
        let order = paper_order();
        // Remove f (5) and b (1) from the universe. Stable sets on
        // {a,c,d,e,g}: {d,g}=6, {a,e,g}=4, {a,c}=3 — optimum is {d,g}=6.
        let mut cand = BitSet::full(7);
        cand.remove(5);
        cand.remove(1);
        let s = max_weight_stable_set_restricted(&wg, &order, Some(&cand));
        assert_eq!(s.weight, 6);
        assert_eq!(s.vertices, vec![Vertex::new(3), Vertex::new(6)]);
        let brute = max_weight_stable_set_brute(&wg, Some(&cand));
        assert_eq!(brute.weight, 6);
    }

    #[test]
    fn zero_weight_vertices_ignored() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let wg = WeightedGraph::new(g, vec![0, 0]);
        let order = peo::perfect_elimination_order(wg.graph()).unwrap();
        let s = max_weight_stable_set(&wg, &order);
        assert_eq!(s.weight, 0);
        assert!(s.vertices.is_empty());
    }

    #[test]
    fn empty_graph() {
        let wg = WeightedGraph::new(Graph::empty(0), vec![]);
        let s = max_weight_stable_set(&wg, &[]);
        assert_eq!(s.weight, 0);
        assert!(s.vertices.is_empty());
    }

    #[test]
    fn stable_set_on_clique_is_single_heaviest() {
        let mut b = GraphBuilder::new(4);
        b.add_clique(&[0, 1, 2, 3]);
        let wg = WeightedGraph::new(b.build(), vec![3, 9, 2, 7]);
        let order = peo::perfect_elimination_order(wg.graph()).unwrap();
        let s = max_weight_stable_set(&wg, &order);
        assert_eq!(s.weight, 9);
        assert_eq!(s.vertices, vec![Vertex::new(1)]);
    }

    #[test]
    fn stable_set_on_edgeless_graph_is_everything() {
        let wg = WeightedGraph::new(Graph::empty(5), vec![1, 2, 3, 4, 5]);
        let order = peo::perfect_elimination_order(wg.graph()).unwrap();
        let s = max_weight_stable_set(&wg, &order);
        assert_eq!(s.weight, 15);
        assert_eq!(s.vertices.len(), 5);
    }

    #[test]
    fn brute_force_respects_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]); // C4, non-chordal
        let wg = WeightedGraph::new(g, vec![3, 4, 3, 4]);
        let s = max_weight_stable_set_brute(&wg, None);
        assert_eq!(s.weight, 8); // {1, 3}
        assert_eq!(s.vertices, vec![Vertex::new(1), Vertex::new(3)]);
    }
}
