//! Weighted graphs: spill costs attached to vertices.
//!
//! Every variable carries an estimated **spill cost** — in the paper, the
//! access frequency of the variable (high when frequently accessed). The
//! allocation problem maximises the total weight of allocated vertices,
//! equivalently minimises the total weight of spilled ones.

use crate::bitset::BitSet;
use crate::graph::Graph;

/// A spill cost (access-frequency estimate) in abstract cost units.
///
/// Costs are integers: frequency estimates of the form `10^loop_depth ×
/// accesses` are integral, and integer arithmetic keeps the optimal
/// solvers exact. Keep individual costs below `2^40` so that the biased
/// weight `w·|V| + deg` of the BL allocator cannot overflow.
pub type Cost = u64;

/// A [`Graph`] whose vertices carry spill costs.
///
/// # Examples
///
/// ```
/// use lra_graph::{Graph, WeightedGraph};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let wg = WeightedGraph::new(g, vec![5, 1, 5]);
/// assert_eq!(wg.weight(0), 5);
/// assert_eq!(wg.total_weight(), 11);
/// ```
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    graph: Graph,
    weights: Vec<Cost>,
}

impl WeightedGraph {
    /// Associates `weights` with the vertices of `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != graph.vertex_count()`.
    pub fn new(graph: Graph, weights: Vec<Cost>) -> Self {
        assert_eq!(
            weights.len(),
            graph.vertex_count(),
            "one weight per vertex required"
        );
        WeightedGraph { graph, weights }
    }

    /// Gives every vertex of `graph` unit weight.
    pub fn unit(graph: Graph) -> Self {
        let n = graph.vertex_count();
        WeightedGraph::new(graph, vec![1; n])
    }

    /// The underlying unweighted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The spill cost of vertex `v`.
    pub fn weight(&self, v: usize) -> Cost {
        self.weights[v]
    }

    /// All weights, indexed by vertex.
    pub fn weights(&self) -> &[Cost] {
        &self.weights
    }

    /// Replaces the weight of `v`.
    pub fn set_weight(&mut self, v: usize, w: Cost) {
        self.weights[v] = w;
    }

    /// The number of vertices (variables).
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Sum of all vertex weights.
    pub fn total_weight(&self) -> Cost {
        self.weights.iter().sum()
    }

    /// Sum of the weights of the vertices in `set`.
    pub fn weight_of_set(&self, set: &BitSet) -> Cost {
        set.iter().map(|v| self.weights[v]).sum()
    }

    /// Sum of the weights of the vertices in `vs`.
    pub fn weight_of_slice(&self, vs: &[usize]) -> Cost {
        vs.iter().map(|&v| self.weights[v]).sum()
    }

    /// Splits into the underlying graph and the weight vector.
    pub fn into_parts(self) -> (Graph, Vec<Cost>) {
        (self.graph, self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_accessors() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let mut wg = WeightedGraph::new(g, vec![2, 3, 4]);
        assert_eq!(wg.weight(1), 3);
        assert_eq!(wg.total_weight(), 9);
        wg.set_weight(1, 10);
        assert_eq!(wg.total_weight(), 16);
        assert_eq!(wg.weights(), &[2, 10, 4]);
    }

    #[test]
    fn unit_weights() {
        let wg = WeightedGraph::unit(Graph::empty(4));
        assert_eq!(wg.total_weight(), 4);
    }

    #[test]
    fn set_and_slice_weights() {
        let g = Graph::empty(4);
        let wg = WeightedGraph::new(g, vec![1, 2, 4, 8]);
        let s = BitSet::from_iter_with_capacity(4, [0, 2]);
        assert_eq!(wg.weight_of_set(&s), 5);
        assert_eq!(wg.weight_of_slice(&[1, 3]), 10);
    }

    #[test]
    #[should_panic(expected = "one weight per vertex")]
    fn mismatched_weights_panic() {
        let _ = WeightedGraph::new(Graph::empty(3), vec![1]);
    }
}
