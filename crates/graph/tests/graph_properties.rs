//! Property-based tests of the graph substrate.

use lra_graph::{
    cliques, coloring, generate, interval, peo, stable, BitMatrix, BitSet, Graph, WeightedGraph,
};
use proptest::prelude::*;
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Subtree-intersection graphs are chordal, and the PEO the MCS
    /// produces passes the independent Golumbic check.
    #[test]
    fn generated_chordal_graphs_have_valid_peos(seed in 0u64..10_000, n in 2usize..60) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::random_chordal(&mut rng, n, n + 10, 4);
        let order = peo::perfect_elimination_order(&g).expect("chordal");
        prop_assert!(peo::is_perfect_elimination_order(&g, &order));
        // Lex-BFS agrees on chordality.
        let mut lex = peo::lex_bfs_order(&g);
        lex.reverse();
        prop_assert!(peo::is_perfect_elimination_order(&g, &lex));
    }

    /// Maximal cliques are cliques, are maximal, and cover every edge.
    #[test]
    fn maximal_cliques_cover_edges(seed in 0u64..10_000, n in 2usize..50) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::random_chordal(&mut rng, n, n + 8, 4);
        let order = peo::perfect_elimination_order(&g).expect("chordal");
        let cs = cliques::maximal_cliques(&g, &order);
        for c in &cs {
            let idx: Vec<usize> = c.iter().map(|v| v.index()).collect();
            prop_assert!(g.is_clique(&idx));
            for v in 0..n {
                if !idx.contains(&v) {
                    prop_assert!(!idx.iter().all(|&u| g.has_edge(u, v)), "not maximal");
                }
            }
        }
        for (u, v) in g.edges() {
            prop_assert!(
                cs.iter().any(|c| c.contains(&u) && c.contains(&v)),
                "edge ({u},{v}) not covered by any maximal clique"
            );
        }
        // A chordal graph has at most n maximal cliques.
        prop_assert!(cs.len() <= n);
    }

    /// The clique tree satisfies the junction property and its largest
    /// bag equals the chromatic number found by PEO colouring.
    #[test]
    fn clique_tree_consistent_with_coloring(seed in 0u64..10_000, n in 2usize..40) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::random_chordal(&mut rng, n, n + 8, 4);
        let order = peo::perfect_elimination_order(&g).expect("chordal");
        let t = cliques::CliqueTree::build(&g, &order);
        prop_assert!(t.junction_property_holds());
        let colors = coloring::greedy_peo_coloring(&g, &order);
        prop_assert!(coloring::is_proper_coloring(&g, &colors, None));
        prop_assert_eq!(coloring::color_count(&colors), t.max_bag_size());
        prop_assert_eq!(t.max_bag_size(), cliques::max_clique_size(&g, &order));
    }

    /// Frank's stable set is stable and weight-maximal (vs brute force).
    #[test]
    fn frank_stable_and_optimal(seed in 0u64..10_000, n in 2usize..16) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::random_chordal(&mut rng, n, n + 6, 3);
        let w = generate::random_weights(&mut rng, n, 2);
        let wg = WeightedGraph::new(g, w);
        let order = peo::perfect_elimination_order(wg.graph()).expect("chordal");
        let fast = stable::max_weight_stable_set(&wg, &order);
        let idx: Vec<usize> = fast.vertices.iter().map(|v| v.index()).collect();
        prop_assert!(wg.graph().is_stable_set(&idx));
        prop_assert_eq!(fast.weight, wg.weight_of_slice(&idx));
        let brute = stable::max_weight_stable_set_brute(&wg, None);
        prop_assert_eq!(fast.weight, brute.weight);
    }

    /// Interval graphs: edges are exactly pairwise overlaps, MaxLive
    /// equals the max clique, and the end-point order is a PEO.
    #[test]
    fn interval_graph_consistency(seed in 0u64..10_000, n in 1usize..50) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let profile = generate::IntervalProfile {
            n,
            points: (n as u32) * 3 + 2,
            mean_len: 5,
            long_lived_percent: 20,
        };
        let ivs = generate::random_interval_set(&mut rng, &profile);
        let g = interval::interval_graph(&ivs);
        for i in 0..n {
            for j in i + 1..n {
                prop_assert_eq!(g.has_edge(i, j), ivs[i].overlaps(&ivs[j]));
            }
        }
        let order = interval::interval_peo(&ivs);
        prop_assert!(peo::is_perfect_elimination_order(&g, &order));
        prop_assert_eq!(
            interval::max_overlap(&ivs),
            cliques::max_clique_size(&g, &order)
        );
    }

    /// BitSet behaves like a reference BTreeSet under a random op
    /// sequence.
    #[test]
    fn bitset_matches_reference(seed in 0u64..10_000, ops in 1usize..200) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cap = 100;
        let mut bs = BitSet::new(cap);
        let mut reference = std::collections::BTreeSet::new();
        for _ in 0..ops {
            let k = rng.gen_range(0..cap);
            match rng.gen_range(0..3) {
                0 => {
                    prop_assert_eq!(bs.insert(k), reference.insert(k));
                }
                1 => {
                    prop_assert_eq!(bs.remove(k), reference.remove(&k));
                }
                _ => {
                    prop_assert_eq!(bs.contains(k), reference.contains(&k));
                }
            }
        }
        prop_assert_eq!(bs.len(), reference.len());
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(), reference.iter().copied().collect::<Vec<_>>());
    }

    /// Every constructor lands on the same CSR graph: `from_edges`,
    /// `from_bit_rows` and `from_bit_matrix` built from the same edge
    /// set agree on edges, degrees and (sorted) neighbor order, with
    /// self-loops dropped and the symmetric closure taken.
    #[test]
    fn csr_constructors_agree(seed in 0u64..10_000, n in 1usize..40) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = rng.gen_range(0..n * 2 + 1);
        // Directed, possibly duplicated, possibly self-looped raw pairs:
        // construction must canonicalise all of that away.
        let edges: Vec<(usize, usize)> = (0..m)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();

        let from_edges = Graph::from_edges(n, &edges);

        let mut row_sets = vec![BitSet::new(n); n];
        let mut matrix = BitMatrix::new(n, n);
        for &(u, v) in &edges {
            if u != v {
                row_sets[u].insert(v);
                row_sets[v].insert(u);
            }
            // The matrix path gets only the one direction (and the
            // self-loops): from_bit_matrix owes us the closure.
            matrix.insert(u, v);
        }
        let from_rows = Graph::from_bit_rows(row_sets);
        let from_matrix = Graph::from_bit_matrix(matrix);

        prop_assert_eq!(&from_edges, &from_rows);
        prop_assert_eq!(&from_edges, &from_matrix);
        for g in [&from_edges, &from_rows, &from_matrix] {
            for v in 0..n {
                let nbrs = g.neighbor_indices(v);
                prop_assert_eq!(nbrs.len(), g.degree(v));
                prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
                prop_assert!(!nbrs.contains(&(v as u32)), "no self-loop survives");
                // The bit rows are the canonical adjacency the CSR
                // arena was unpacked from: they must agree bit for bit.
                prop_assert_eq!(
                    g.neighbor_row(v).iter().map(|u| u as u32).collect::<Vec<_>>(),
                    nbrs.to_vec()
                );
            }
        }
    }

    /// An induced subgraph holds exactly the original edges between
    /// kept vertices, reindexed by keep-order, in sorted CSR order.
    #[test]
    fn induced_subgraph_matches_edge_filter(seed in 0u64..10_000, n in 1usize..30) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = rng.gen_range(0..n * 2 + 1);
        let edges: Vec<(usize, usize)> = (0..m)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        let g = Graph::from_edges(n, &edges);
        let keep_set =
            BitSet::from_iter_with_capacity(n, (0..n).filter(|_| rng.gen_bool(0.6)));
        let (sub, keep) = g.induced_subgraph(&keep_set);
        prop_assert_eq!(keep.to_vec(), keep_set.iter().collect::<Vec<_>>());
        prop_assert_eq!(sub.vertex_count(), keep.len());
        for (i, &u) in keep.iter().enumerate() {
            for (j, &v) in keep.iter().enumerate() {
                prop_assert_eq!(sub.has_edge(i, j), g.has_edge(u, v));
            }
            prop_assert!(sub
                .neighbor_indices(i)
                .windows(2)
                .all(|w| w[0] < w[1]));
        }
    }
}
