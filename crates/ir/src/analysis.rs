//! Shared per-round function analysis.
//!
//! The spill-then-reanalyse loop (§4.3) needs the same three analyses
//! in every round — liveness, loop frequencies and the block
//! linearisation — and historically each consumer recomputed its own
//! copy: instance construction, the driver's stall check and the
//! spill-cost estimator all ran [`liveness::analyze`] separately.
//! [`FunctionAnalysis`] computes each analysis **once per round** and
//! is threaded through all of them.
//!
//! Across rounds the work shrinks further: spill-code insertion never
//! touches the CFG, so [`FunctionAnalysis::after_spill`] carries the
//! loop analysis over verbatim and re-solves liveness incrementally
//! from the rewrite's [`SpillDelta`] instead of starting from scratch.
//! The result is identical to a fresh [`FunctionAnalysis::compute`];
//! the `LRA_FULL_REANALYSIS` environment variable (see
//! [`full_reanalysis_forced`]) forces the full recomputation so CI can
//! diff the two paths byte for byte.

use crate::cfg::Function;
use crate::dom::DomTree;
use crate::interference::{self, Linearization};
use crate::liveness::{self, Liveness};
use crate::loops::LoopInfo;
use crate::scratch::AnalysisScratch;
use crate::spill_code::SpillDelta;

/// Everything one allocation round needs to know about a function:
/// block-level liveness (with `MaxLive`), natural-loop frequencies and
/// the reverse-postorder linearisation.
#[derive(Clone, Debug)]
pub struct FunctionAnalysis {
    /// Backward liveness with per-block pressure summaries.
    pub liveness: Liveness,
    /// Natural-loop nesting and static block frequencies.
    pub loops: LoopInfo,
    /// Reverse-postorder block layout with program-point bases.
    pub linearization: Linearization,
}

impl FunctionAnalysis {
    /// Analyses `f` from scratch: liveness, dominators → loops, and
    /// the linearisation.
    pub fn compute(f: &Function) -> Self {
        Self::compute_in(f, &mut AnalysisScratch::new())
    }

    /// [`FunctionAnalysis::compute`] with caller-provided scratch
    /// buffers (see [`AnalysisScratch`]); identical output.
    pub fn compute_in(f: &Function, scratch: &mut AnalysisScratch) -> Self {
        let liveness = liveness::analyze_in(f, scratch);
        let dom = DomTree::compute(f);
        let loops = LoopInfo::compute(f, &dom);
        let linearization = interference::linearize(f);
        FunctionAnalysis {
            liveness,
            loops,
            linearization,
        }
    }

    /// Re-analyses `f` after a spill rewrite described by `delta`,
    /// reusing this (pre-rewrite) analysis.
    ///
    /// Spill insertion changes instructions, never control flow, so the
    /// loop analysis carries over unchanged; liveness is re-solved only
    /// from the rewrite's dirty frontier
    /// ([`liveness::analyze_incremental`]); the linearisation is
    /// re-laid-out over the same block order because instruction counts
    /// shifted. The result equals [`FunctionAnalysis::compute`]`(f)`.
    pub fn after_spill(&self, f: &Function, delta: &SpillDelta) -> Self {
        self.after_spill_in(f, delta, &mut AnalysisScratch::new())
    }

    /// [`FunctionAnalysis::after_spill`] with caller-provided scratch
    /// buffers; identical output.
    pub fn after_spill_in(
        &self,
        f: &Function,
        delta: &SpillDelta,
        scratch: &mut AnalysisScratch,
    ) -> Self {
        FunctionAnalysis {
            liveness: liveness::analyze_incremental_in(
                f,
                &self.liveness,
                &delta.dirty_blocks,
                &delta.changed_values,
                scratch,
            ),
            loops: self.loops.clone(),
            linearization: interference::linearize(f),
        }
    }
}

/// `true` when the `LRA_FULL_REANALYSIS` environment variable demands
/// the pre-incremental behaviour: every analysis recomputed from
/// scratch every round. Any non-empty value other than `0` counts.
/// CI runs one batch under this flag and diffs it against the default
/// incremental path for byte-identity.
pub fn full_reanalysis_forced() -> bool {
    std::env::var_os("LRA_FULL_REANALYSIS").is_some_and(|v| !v.is_empty() && v != "0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::spill_code;
    use lra_graph::BitSet;

    /// A loopy function with a φ, calls and enough pressure to spill.
    fn loopy_function() -> Function {
        let mut b = FunctionBuilder::new("loopy");
        let e = b.entry_block();
        let init = b.op(e, &[]);
        let other = b.op(e, &[]);
        let h = b.block();
        let body = b.block();
        let exit = b.block();
        b.set_succs(e, &[h]);
        b.set_succs(h, &[body, exit]);
        b.set_succs(body, &[h]);
        let carried = b.phi(h, &[init, init]);
        let t = b.op(body, &[carried, other]);
        let next = b.op(body, &[t, carried]);
        b.patch_phi_arg(h, carried, 1, next);
        b.call(exit, &[carried]);
        b.op(exit, &[other, carried]);
        b.finish()
    }

    #[test]
    fn after_spill_matches_fresh_compute() {
        let f = loopy_function();
        let analysis = FunctionAnalysis::compute(&f);
        for victim in 0..f.value_count as usize {
            let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [victim]);
            for optimized in [false, true] {
                let rewrite = if optimized {
                    spill_code::rewrite_spill_code_optimized(&f, &spilled)
                } else {
                    spill_code::rewrite_spill_code(&f, &spilled)
                };
                let incremental = analysis.after_spill(&rewrite.function, &rewrite.delta);
                let fresh = FunctionAnalysis::compute(&rewrite.function);
                assert_eq!(
                    incremental.liveness, fresh.liveness,
                    "victim {victim}, optimized {optimized}"
                );
                assert_eq!(incremental.linearization.base, fresh.linearization.base);
                assert_eq!(incremental.linearization.order, fresh.linearization.order);
            }
        }
    }

    #[test]
    fn after_spill_chains_across_rounds() {
        // Two consecutive rewrites, each incrementally re-analysed from
        // the previous round's result.
        let f = loopy_function();
        let analysis = FunctionAnalysis::compute(&f);
        let spilled1 = BitSet::from_iter_with_capacity(f.value_count as usize, [0]);
        let r1 = spill_code::rewrite_spill_code(&f, &spilled1);
        let a1 = analysis.after_spill(&r1.function, &r1.delta);

        let spilled2 = BitSet::from_iter_with_capacity(r1.function.value_count as usize, [1, 2]);
        let r2 = spill_code::rewrite_spill_code_optimized(&r1.function, &spilled2);
        let a2 = a1.after_spill(&r2.function, &r2.delta);
        assert_eq!(
            a2.liveness,
            FunctionAnalysis::compute(&r2.function).liveness
        );
    }

    #[test]
    fn full_reanalysis_flag_parses_conventionally() {
        // The variable is read from the process environment by the
        // driver; here we only pin the parsing convention (unset/empty/
        // "0" = off) via the same predicate the driver uses.
        fn forced(v: Option<&str>) -> bool {
            v.is_some_and(|v| !v.is_empty() && v != "0")
        }
        assert!(!forced(None));
        assert!(!forced(Some("")));
        assert!(!forced(Some("0")));
        assert!(forced(Some("1")));
        assert!(forced(Some("yes")));
    }
}
