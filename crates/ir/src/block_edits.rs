//! Recycled per-block instruction-edit buffers for IR rewrites.
//!
//! The spill rewrites ([`crate::spill_code`], [`crate::remat`]) and the
//! live-range splitter ([`crate::split`]) all follow the same shape:
//! walk every block, emit a new instruction body, and append reloads /
//! copies to the *tails* of predecessor blocks (φ operands materialise
//! at the end of the incoming edge). Each used to allocate its own
//! `Vec<Vec<Instr>>` body and tail spines — plus a φ-store staging
//! buffer and a per-block availability map — fresh on every call,
//! which in the spill-then-reanalyse loop means fresh allocations
//! every round.
//!
//! [`BlockEdits`] is the one shared, scratch-backed version of that
//! pattern. It lives inside [`crate::AnalysisScratch`]; every rewrite
//! resets it to the function at hand (`reset` keeps all inner
//! allocations), pushes instructions into `bodies`/`tails`, and drains
//! the buffers into exact-capacity block bodies with `finish` — so the
//! buffers are warm again for the next round. Results are
//! byte-identical to the old fresh-allocation paths: `finish` emits
//! each block as body-then-tail in block order, exactly as the
//! rewrites used to splice them.

use crate::cfg::{Block, Function, Instr, Value};
use std::collections::HashMap;

/// Recyclable per-block edit buffers shared by every IR rewrite. See
/// the [module docs](self).
#[derive(Default)]
pub struct BlockEdits {
    /// New instruction body of each block, in block order.
    pub(crate) bodies: Vec<Vec<Instr>>,
    /// Instructions appended after each block's body (φ-edge reloads,
    /// copies, materializations landing in predecessors).
    pub(crate) tails: Vec<Vec<Instr>>,
    /// Stores for spilled φ defs, staged until the φ run of the
    /// current block ends (φs are parallel and must stay first).
    pub(crate) phi_stores: Vec<Instr>,
    /// Per-block map from a spilled value to the replacement already
    /// materialised in the block (shared reloads, §2.1). Cleared at
    /// each block boundary by the rewrites that use it.
    pub(crate) avail: HashMap<Value, Value>,
}

impl BlockEdits {
    /// An empty edit buffer. Grows to the sizes of the functions
    /// rewritten through it and is then reused.
    pub fn new() -> Self {
        BlockEdits::default()
    }

    /// Empties every buffer and re-sizes the block spines to `n`
    /// blocks, keeping inner allocations for reuse.
    pub(crate) fn reset(&mut self, n: usize) {
        for v in &mut self.bodies {
            v.clear();
        }
        for v in &mut self.tails {
            v.clear();
        }
        self.bodies.truncate(n);
        self.tails.truncate(n);
        self.bodies.resize_with(n, Vec::new);
        self.tails.resize_with(n, Vec::new);
        self.phi_stores.clear();
        self.avail.clear();
    }

    /// Appends the staged φ-def stores to block `b`'s body, leaving
    /// the staging buffer empty.
    pub(crate) fn flush_phi_stores(&mut self, b: usize) {
        self.bodies[b].append(&mut self.phi_stores);
    }

    /// Drains the buffers into one [`Block`] per block of `f`: body
    /// first, then the tail, each with an exact-capacity instruction
    /// vector. Successor lists are copied from `f`; predecessor lists
    /// are left for `recompute_preds`. The spines and inner
    /// allocations stay warm for the next rewrite.
    pub(crate) fn finish(&mut self, f: &Function) -> Vec<Block> {
        self.bodies
            .iter_mut()
            .zip(self.tails.iter_mut())
            .enumerate()
            .map(|(b, (body, tail))| {
                let mut instrs = Vec::with_capacity(body.len() + tail.len());
                instrs.append(body);
                instrs.append(tail);
                Block {
                    instrs,
                    succs: f.blocks[b].succs.clone(),
                    preds: Vec::new(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::cfg::Opcode;

    #[test]
    fn reset_recycles_across_size_swings() {
        let mut e = BlockEdits::new();
        e.reset(3);
        e.bodies[2].push(Instr::new(Opcode::Op, None, vec![]));
        e.tails[0].push(Instr::new(Opcode::Load, None, vec![]));
        e.phi_stores.push(Instr::new(Opcode::Store, None, vec![]));
        e.avail.insert(Value(1), Value(2));
        e.reset(1);
        assert_eq!(e.bodies.len(), 1);
        assert_eq!(e.tails.len(), 1);
        assert!(e.bodies[0].is_empty());
        assert!(e.phi_stores.is_empty());
        assert!(e.avail.is_empty());
        e.reset(4);
        assert!(e.bodies.iter().all(Vec::is_empty));
        assert!(e.tails.iter().all(Vec::is_empty));
    }

    #[test]
    fn finish_emits_body_then_tail_and_leaves_buffers_empty() {
        let mut b = FunctionBuilder::new("f");
        let e0 = b.entry_block();
        let n1 = b.block();
        b.set_succs(e0, &[n1]);
        let f = b.finish();

        let mut e = BlockEdits::new();
        e.reset(2);
        let body = Instr::new(Opcode::Op, Some(Value(0)), vec![]);
        let tail = Instr::new(Opcode::Load, Some(Value(1)), vec![]);
        e.bodies[0].push(body.clone());
        e.tails[0].push(tail.clone());
        let blocks = e.finish(&f);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].instrs, vec![body, tail]);
        assert_eq!(blocks[0].succs, f.blocks[0].succs);
        assert!(blocks[0].preds.is_empty());
        assert!(blocks[1].instrs.is_empty());
        assert!(e.bodies.iter().all(Vec::is_empty));
        assert!(e.tails.iter().all(Vec::is_empty));
    }

    #[test]
    fn flush_phi_stores_appends_in_order() {
        let mut e = BlockEdits::new();
        e.reset(1);
        e.bodies[0].push(Instr::new(Opcode::Phi, Some(Value(0)), vec![]));
        e.phi_stores
            .push(Instr::new(Opcode::Store, None, vec![Value(0)]));
        e.flush_phi_stores(0);
        assert_eq!(e.bodies[0].len(), 2);
        assert_eq!(e.bodies[0][1].opcode, Opcode::Store);
        assert!(e.phi_stores.is_empty());
    }
}
