//! Convenience builder for [`Function`]s.
//!
//! Tests, examples and the program generators construct functions
//! through this builder, which hands out fresh [`Value`]s, keeps
//! successor lists, and finishes with predecessor computation plus
//! structural validation.

use crate::cfg::{Block, BlockId, Function, Instr, Opcode, Value};

/// Incrementally builds a [`Function`].
///
/// # Examples
///
/// ```
/// use lra_ir::builder::FunctionBuilder;
///
/// let mut b = FunctionBuilder::new("max");
/// let entry = b.entry_block();
/// let x = b.param();
/// let y = b.param();
/// let then_b = b.block();
/// let else_b = b.block();
/// let join = b.block();
/// b.op(entry, &[x, y]); // compare
/// b.set_succs(entry, &[then_b, else_b]);
/// b.set_succs(then_b, &[join]);
/// b.set_succs(else_b, &[join]);
/// let m = b.phi(join, &[x, y]);
/// b.op(join, &[m]);
/// let f = b.finish();
/// assert_eq!(f.block_count(), 4);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    f: Function,
    next_value: u32,
}

impl FunctionBuilder {
    /// Starts a function with an (empty) entry block.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            f: Function {
                name: name.into(),
                blocks: vec![Block::default()],
                entry: BlockId(0),
                value_count: 0,
                params: vec![],
            },
            next_value: 0,
        }
    }

    /// The entry block id.
    pub fn entry_block(&self) -> BlockId {
        self.f.entry
    }

    /// Appends a fresh empty block.
    pub fn block(&mut self) -> BlockId {
        self.f.blocks.push(Block::default());
        BlockId(self.f.blocks.len() as u32 - 1)
    }

    /// Mints a fresh value without defining it anywhere (used for
    /// forward references; ensure it gets a definition).
    pub fn fresh_value(&mut self) -> Value {
        let v = Value(self.next_value);
        self.next_value += 1;
        v
    }

    /// Declares a function parameter (defined at entry).
    pub fn param(&mut self) -> Value {
        let v = self.fresh_value();
        self.f.params.push(v);
        v
    }

    /// Appends an [`Opcode::Op`] defining a fresh value that uses `uses`.
    pub fn op(&mut self, b: BlockId, uses: &[Value]) -> Value {
        self.defining(b, Opcode::Op, uses)
    }

    /// Appends an [`Opcode::Call`] defining a fresh value.
    pub fn call(&mut self, b: BlockId, uses: &[Value]) -> Value {
        self.defining(b, Opcode::Call, uses)
    }

    /// Appends a copy of `from` into a fresh value.
    pub fn copy(&mut self, b: BlockId, from: Value) -> Value {
        self.defining(b, Opcode::Copy, &[from])
    }

    /// Appends an instruction of `opcode` defining a fresh value.
    pub fn defining(&mut self, b: BlockId, opcode: Opcode, uses: &[Value]) -> Value {
        let v = self.fresh_value();
        self.f.blocks[b.index()]
            .instrs
            .push(Instr::new(opcode, Some(v), uses.to_vec()));
        v
    }

    /// Appends an instruction with an explicit (pre-minted) def.
    pub fn define_existing(&mut self, b: BlockId, opcode: Opcode, def: Value, uses: &[Value]) {
        self.f.blocks[b.index()]
            .instrs
            .push(Instr::new(opcode, Some(def), uses.to_vec()));
    }

    /// Appends an effect-only instruction (no def), e.g. a store or a
    /// use-only terminator computation.
    pub fn effect(&mut self, b: BlockId, opcode: Opcode, uses: &[Value]) {
        self.f.blocks[b.index()]
            .instrs
            .push(Instr::new(opcode, None, uses.to_vec()));
    }

    /// Prepends a φ to `b` (φs must precede the body), defining a fresh
    /// value. `args` must be parallel to the predecessors of `b` *at
    /// [`finish`](Self::finish) time*.
    pub fn phi(&mut self, b: BlockId, args: &[Value]) -> Value {
        let v = self.fresh_value();
        let block = &mut self.f.blocks[b.index()];
        let at = block.instrs.iter().take_while(|i| i.is_phi()).count();
        block
            .instrs
            .insert(at, Instr::new(Opcode::Phi, Some(v), args.to_vec()));
        v
    }

    /// Rewrites the `i`-th operand of the φ defining `phi_def` in `b`.
    /// Used to patch loop-carried values after the body is generated.
    ///
    /// # Panics
    ///
    /// Panics if no φ in `b` defines `phi_def` or `i` is out of range.
    pub fn patch_phi_arg(&mut self, b: BlockId, phi_def: Value, i: usize, arg: Value) {
        let block = &mut self.f.blocks[b.index()];
        let phi = block
            .instrs
            .iter_mut()
            .take_while(|ins| ins.is_phi())
            .find(|ins| ins.def == Some(phi_def))
            .expect("phi with the given def exists");
        phi.uses[i] = arg;
    }

    /// Sets the successor list of `b`.
    pub fn set_succs(&mut self, b: BlockId, succs: &[BlockId]) {
        self.f.blocks[b.index()].succs = succs.to_vec();
    }

    /// The number of values minted so far.
    pub fn value_count(&self) -> u32 {
        self.next_value
    }

    /// Finishes the function: computes predecessors and validates.
    ///
    /// # Panics
    ///
    /// Panics if the constructed function violates an invariant (see
    /// [`Function::validate`]); builder misuse is a programming error.
    pub fn finish(mut self) -> Function {
        self.f.value_count = self.next_value;
        self.f.recompute_preds();
        if let Err(e) = self.f.validate() {
            panic!("FunctionBuilder produced an invalid function: {e}");
        }
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        let y = b.op(e, &[x]);
        b.effect(e, Opcode::Store, &[y]);
        let f = b.finish();
        assert_eq!(f.block_count(), 1);
        assert_eq!(f.instr_count(), 3);
        assert_eq!(f.value_count, 2);
    }

    #[test]
    fn phi_goes_first() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.param();
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        b.op(j, &[x]); // body first ...
        let m = b.phi(j, &[x, x]); // ... then a phi is still inserted first
        let f = b.finish();
        assert!(f.block(j).instrs[0].is_phi());
        assert_eq!(f.block(j).instrs[0].def, Some(m));
    }

    #[test]
    fn patch_phi_arg_rewrites_operand() {
        let mut b = FunctionBuilder::new("loop");
        let e = b.entry_block();
        let init = b.op(e, &[]);
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.set_succs(e, &[header]);
        b.set_succs(header, &[body, exit]);
        b.set_succs(body, &[header]);
        // preds(header) = [e, body]; placeholder second arg patched later.
        let carried = b.phi(header, &[init, init]);
        let next = b.op(body, &[carried]);
        b.patch_phi_arg(header, carried, 1, next);
        b.op(exit, &[carried]);
        let f = b.finish();
        let phi = &f.block(header).instrs[0];
        assert_eq!(phi.uses, vec![init, next]);
    }

    #[test]
    #[should_panic(expected = "invalid function")]
    fn finish_panics_on_bad_phi_arity() {
        let mut b = FunctionBuilder::new("bad");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        b.phi(e, &[x, x]); // entry has no preds; arity mismatch
        let _ = b.finish();
    }

    #[test]
    fn params_are_recorded() {
        let mut b = FunctionBuilder::new("f");
        let p = b.param();
        let q = b.param();
        let f = b.finish();
        assert_eq!(f.params, vec![p, q]);
    }
}
