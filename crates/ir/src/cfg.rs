//! The intermediate representation: functions, blocks and instructions.
//!
//! The IR is deliberately small — just enough structure for register
//! allocation research: virtual registers ([`Value`]), basic blocks with
//! explicit successor lists, φ-instructions for SSA form, and opcodes
//! distinguished only where the allocator cares (calls clobber
//! caller-saved registers; loads/stores are spill code).

/// A virtual register (an SSA value or, in non-SSA functions, a mutable
/// temporary).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(pub u32);

impl Value {
    /// Index into side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Identifies a basic block within its [`Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into the function's block vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Instruction kinds. Only distinctions relevant to allocation exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// An ordinary computation (constant, arithmetic, compare, …).
    Op,
    /// SSA φ: selects among `uses` according to the incoming edge; the
    /// i-th use corresponds to the i-th predecessor of the block.
    Phi,
    /// A call site: values live across it are ABI-penalised.
    Call,
    /// A spill reload (inserted by spill-everywhere rewriting).
    Load,
    /// A spill store (inserted by spill-everywhere rewriting).
    Store,
    /// A register-to-register copy.
    Copy,
}

/// One instruction: at most one defined value plus a list of used values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instr {
    /// What kind of instruction this is.
    pub opcode: Opcode,
    /// The value defined, if any (stores and pure effects define none).
    pub def: Option<Value>,
    /// The values read. For [`Opcode::Phi`], parallel to the block's
    /// predecessor list.
    pub uses: Vec<Value>,
}

impl Instr {
    /// Creates an ordinary instruction.
    pub fn new(opcode: Opcode, def: Option<Value>, uses: Vec<Value>) -> Self {
        Instr { opcode, def, uses }
    }

    /// Returns `true` for φ-instructions.
    pub fn is_phi(&self) -> bool {
        self.opcode == Opcode::Phi
    }
}

/// A basic block: φs first, then ordinary instructions; control flow is
/// expressed by the successor list.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Block {
    /// Instructions in program order (φs must come first).
    pub instrs: Vec<Instr>,
    /// Successor blocks (0 = return block, 1 = jump, 2 = branch, …).
    pub succs: Vec<BlockId>,
    /// Predecessor blocks; filled in by [`Function::recompute_preds`].
    pub preds: Vec<BlockId>,
}

impl Block {
    /// Iterates over the φ-instructions at the top of the block.
    pub fn phis(&self) -> impl Iterator<Item = &Instr> {
        self.instrs.iter().take_while(|i| i.is_phi())
    }

    /// Iterates over the non-φ instructions.
    pub fn body(&self) -> impl Iterator<Item = &Instr> {
        self.instrs.iter().skip_while(|i| i.is_phi())
    }
}

/// A function: a CFG over [`Block`]s with a distinguished entry.
///
/// Invariants (checked by [`Function::validate`]):
/// * successor/predecessor lists are consistent,
/// * φs appear only at block tops, with one use per predecessor,
/// * every used `Value` index is below `value_count`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Human-readable name (benchmark::function).
    pub name: String,
    /// Blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The entry block (no predecessors).
    pub entry: BlockId,
    /// Number of distinct `Value`s; values are `0..value_count`.
    pub value_count: u32,
    /// Parameters, defined on entry.
    pub params: Vec<Value>,
}

impl Function {
    /// The number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// The block with id `b`.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Recomputes every predecessor list from the successor lists.
    pub fn recompute_preds(&mut self) {
        for b in &mut self.blocks {
            b.preds.clear();
        }
        let edges: Vec<(BlockId, BlockId)> = self
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(i, b)| b.succs.iter().map(move |&s| (BlockId(i as u32), s)))
            .collect();
        for (from, to) in edges {
            self.blocks[to.index()].preds.push(from);
        }
    }

    /// A reverse postorder of the blocks reachable from the entry.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit phase marker.
        let mut stack = vec![(self.entry, 0usize)];
        visited[self.entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = &self.blocks[b.index()].succs;
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Checks structural invariants, returning a description of the
    /// first violation.
    ///
    /// # Errors
    ///
    /// Returns `Err` if an edge is dangling, preds/succs disagree, a φ
    /// is misplaced or mis-sized, or a value index is out of range.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.blocks.len();
        if self.entry.index() >= n {
            return Err(format!("entry {} out of range", self.entry));
        }
        for (i, b) in self.blocks.iter().enumerate() {
            let id = BlockId(i as u32);
            for &s in &b.succs {
                if s.index() >= n {
                    return Err(format!("{id}: successor {s} out of range"));
                }
                if !self.blocks[s.index()].preds.contains(&id) {
                    return Err(format!("{id}: missing back-pointer from {s}"));
                }
            }
            for &p in &b.preds {
                if p.index() >= n || !self.blocks[p.index()].succs.contains(&id) {
                    return Err(format!("{id}: stale predecessor {p}"));
                }
            }
            let mut body_seen = false;
            for (j, instr) in b.instrs.iter().enumerate() {
                if instr.is_phi() {
                    if body_seen {
                        return Err(format!("{id}: φ at position {j} after body"));
                    }
                    if instr.uses.len() != b.preds.len() {
                        return Err(format!(
                            "{id}: φ has {} uses for {} predecessors",
                            instr.uses.len(),
                            b.preds.len()
                        ));
                    }
                    if instr.def.is_none() {
                        return Err(format!("{id}: φ without def"));
                    }
                } else {
                    body_seen = true;
                }
                for v in instr.def.iter().chain(instr.uses.iter()) {
                    if v.0 >= self.value_count {
                        return Err(format!("{id}: value {v} out of range"));
                    }
                }
            }
        }
        for p in &self.params {
            if p.0 >= self.value_count {
                return Err(format!("parameter {p} out of range"));
            }
        }
        Ok(())
    }

    /// Total number of instructions.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Function {
        // bb0 -> bb1, bb2; bb1 -> bb3; bb2 -> bb3.
        let mut f = Function {
            name: "diamond".into(),
            blocks: vec![
                Block::default(),
                Block::default(),
                Block::default(),
                Block::default(),
            ],
            entry: BlockId(0),
            value_count: 0,
            params: vec![],
        };
        f.blocks[0].succs = vec![BlockId(1), BlockId(2)];
        f.blocks[1].succs = vec![BlockId(3)];
        f.blocks[2].succs = vec![BlockId(3)];
        f.recompute_preds();
        f
    }

    #[test]
    fn preds_follow_succs() {
        let f = diamond();
        assert_eq!(f.block(BlockId(3)).preds, vec![BlockId(1), BlockId(2)]);
        assert!(f.block(BlockId(0)).preds.is_empty());
        assert!(f.validate().is_ok());
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let f = diamond();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
    }

    #[test]
    fn rpo_ignores_unreachable_blocks() {
        let mut f = diamond();
        f.blocks.push(Block::default()); // unreachable bb4
        f.recompute_preds();
        assert_eq!(f.reverse_postorder().len(), 4);
    }

    #[test]
    fn validate_rejects_misplaced_phi() {
        let mut f = diamond();
        f.value_count = 2;
        f.blocks[3].instrs = vec![
            Instr::new(Opcode::Op, Some(Value(0)), vec![]),
            Instr::new(Opcode::Phi, Some(Value(1)), vec![Value(0), Value(0)]),
        ];
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_phi_arity_mismatch() {
        let mut f = diamond();
        f.value_count = 1;
        f.blocks[3].instrs = vec![Instr::new(Opcode::Phi, Some(Value(0)), vec![Value(0)])];
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_value() {
        let mut f = diamond();
        f.value_count = 1;
        f.blocks[1].instrs = vec![Instr::new(Opcode::Op, Some(Value(5)), vec![])];
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_stale_pred() {
        let mut f = diamond();
        f.blocks[3].preds.push(BlockId(0)); // bb0 is not actually a pred
        assert!(f.validate().is_err());
    }

    #[test]
    fn block_phi_and_body_split() {
        let mut f = diamond();
        f.value_count = 3;
        f.blocks[3].instrs = vec![
            Instr::new(Opcode::Phi, Some(Value(0)), vec![Value(1), Value(1)]),
            Instr::new(Opcode::Op, Some(Value(2)), vec![Value(0)]),
        ];
        let b = f.block(BlockId(3));
        assert_eq!(b.phis().count(), 1);
        assert_eq!(b.body().count(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Value(3)), "%3");
        assert_eq!(format!("{}", BlockId(2)), "bb2");
        assert_eq!(format!("{:?}", Value(3)), "%3");
    }
}
