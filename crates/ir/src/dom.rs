//! Dominator trees (Cooper–Harvey–Kennedy).
//!
//! Strict SSA requires definitions to dominate uses; live ranges are
//! then subtrees of the dominance tree, which is why SSA interference
//! graphs are chordal. The iterative algorithm of Cooper, Harvey &
//! Kennedy ("A Simple, Fast Dominance Algorithm") computes immediate
//! dominators over the reverse postorder.

#![allow(clippy::needless_range_loop)] // parallel arrays indexed by block id

use crate::cfg::{BlockId, Function};

/// The dominator tree of a [`Function`].
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator of each block (`idom[entry] == entry`);
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// DFS entry/exit times on the dominator tree, for O(1)
    /// `dominates` queries.
    tin: Vec<u32>,
    tout: Vec<u32>,
}

impl DomTree {
    /// Computes the dominator tree of `f`.
    pub fn compute(f: &Function) -> Self {
        let n = f.block_count();
        let rpo = f.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry.index()] = Some(f.entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_index[a.index()] > rpo_index[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while rpo_index[b.index()] > rpo_index[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &f.block(b).preds {
                    if rpo_index[p.index()] == usize::MAX || idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }

        // DFS times over the dominator tree for O(1) dominance queries.
        let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for b in 0..n {
            if let Some(d) = idom[b] {
                if d.index() != b {
                    children[d.index()].push(BlockId(b as u32));
                }
            }
        }
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut clock = 1u32;
        let mut stack = vec![(f.entry, false)];
        while let Some((b, done)) = stack.pop() {
            if done {
                tout[b.index()] = clock;
                clock += 1;
            } else {
                tin[b.index()] = clock;
                clock += 1;
                stack.push((b, true));
                for &c in &children[b.index()] {
                    stack.push((c, false));
                }
            }
        }

        DomTree { idom, tin, tout }
    }

    /// The immediate dominator of `b` (`b` itself for the entry), or
    /// `None` if `b` is unreachable.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[a.index()].is_none() || self.idom[b.index()].is_none() {
            return false;
        }
        self.tin[a.index()] <= self.tin[b.index()] && self.tout[b.index()] <= self.tout[a.index()]
    }

    /// Returns `true` if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Reference check by set intersection over all paths — O(n²·E),
    /// used by tests to validate the fast algorithm.
    pub fn dominates_naive(f: &Function, a: BlockId, b: BlockId) -> bool {
        // a dominates b iff removing a makes b unreachable from entry
        // (or a == b == reachable).
        let n = f.block_count();
        let mut reach = vec![false; n];
        if f.entry != a {
            let mut stack = vec![f.entry];
            reach[f.entry.index()] = true;
            while let Some(x) = stack.pop() {
                for &s in &f.block(x).succs {
                    if s != a && !reach[s.index()] {
                        reach[s.index()] = true;
                        stack.push(s);
                    }
                }
            }
        }
        // b unreachable without a, and b reachable at all.
        let mut reach_all = vec![false; n];
        let mut stack = vec![f.entry];
        reach_all[f.entry.index()] = true;
        while let Some(x) = stack.pop() {
            for &s in &f.block(x).succs {
                if !reach_all[s.index()] {
                    reach_all[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        reach_all[b.index()] && (a == b || !reach[b.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Block;

    fn function_with_edges(n: usize, edges: &[(u32, u32)]) -> Function {
        let mut f = Function {
            name: "t".into(),
            blocks: (0..n).map(|_| Block::default()).collect(),
            entry: BlockId(0),
            value_count: 0,
            params: vec![],
        };
        for &(a, b) in edges {
            f.blocks[a as usize].succs.push(BlockId(b));
        }
        f.recompute_preds();
        f
    }

    #[test]
    fn diamond_idoms() {
        let f = function_with_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let d = DomTree::compute(&f);
        assert_eq!(d.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(3)), Some(BlockId(0))); // join dominated by fork
        assert!(d.dominates(BlockId(0), BlockId(3)));
        assert!(!d.dominates(BlockId(1), BlockId(3)));
        assert!(d.dominates(BlockId(3), BlockId(3)));
        assert!(!d.strictly_dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn loop_idoms() {
        // 0 -> 1 (header) -> 2 (body) -> 1; 1 -> 3 (exit).
        let f = function_with_edges(4, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let d = DomTree::compute(&f);
        assert_eq!(d.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(d.idom(BlockId(3)), Some(BlockId(1)));
        assert!(d.dominates(BlockId(1), BlockId(2)));
        assert!(!d.dominates(BlockId(2), BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let f = function_with_edges(3, &[(0, 1)]);
        let d = DomTree::compute(&f);
        assert_eq!(d.idom(BlockId(2)), None);
        assert!(!d.dominates(BlockId(0), BlockId(2)));
        assert!(!d.dominates(BlockId(2), BlockId(0)));
    }

    #[test]
    fn matches_naive_on_irreducible_cfg() {
        // Irreducible: 0 -> {1, 2}, 1 <-> 2, both -> 3.
        let f = function_with_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 1), (1, 3), (2, 3)]);
        let d = DomTree::compute(&f);
        for a in 0..4u32 {
            for b in 0..4u32 {
                assert_eq!(
                    d.dominates(BlockId(a), BlockId(b)),
                    DomTree::dominates_naive(&f, BlockId(a), BlockId(b)),
                    "dominates({a},{b}) mismatch"
                );
            }
        }
    }

    #[test]
    fn matches_naive_on_nested_loops() {
        let f = function_with_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 1),
                (4, 5),
                (5, 6),
            ],
        );
        let d = DomTree::compute(&f);
        for a in 0..7u32 {
            for b in 0..7u32 {
                assert_eq!(
                    d.dominates(BlockId(a), BlockId(b)),
                    DomTree::dominates_naive(&f, BlockId(a), BlockId(b)),
                    "dominates({a},{b}) mismatch"
                );
            }
        }
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let f = function_with_edges(5, &[(0, 1), (1, 2), (2, 3), (1, 4), (4, 3)]);
        let d = DomTree::compute(&f);
        for b in 0..5u32 {
            assert!(d.dominates(BlockId(0), BlockId(b)));
        }
    }
}
