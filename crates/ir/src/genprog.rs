//! Seeded random program generators.
//!
//! The evaluation needs thousands of interference-graph instances shaped
//! like real benchmark functions. Two generators cover the paper's two
//! tracks:
//!
//! * [`random_ssa_function`] builds structured, strict-SSA functions
//!   (sequences, if-else diamonds with φs, natural loops with
//!   loop-carried φs, call sites). Their precise interference graphs
//!   are chordal — the §6.1 (Open64) setting.
//! * [`random_jit_function`] builds unstructured non-SSA functions
//!   (mutable temporaries with multiple definitions, live ranges with
//!   holes, irregular control flow). Their interference graphs are
//!   general graphs — the §6.2 (JikesRVM) setting.
//!
//! Both are deterministic given the RNG, so whole benchmark suites are
//! reproducible from a seed.

#![allow(clippy::needless_range_loop)] // parallel arrays indexed by block id

use crate::builder::FunctionBuilder;
use crate::cfg::{BlockId, Function, Opcode, Value};
use crate::dom::DomTree;
use rand::Rng;

/// Shape parameters for [`random_ssa_function`].
#[derive(Clone, Debug)]
pub struct SsaConfig {
    /// Rough number of instructions to emit.
    pub target_instrs: usize,
    /// Maximum loop-nesting depth.
    pub max_loop_depth: u32,
    /// Percent chance of opening an if-else at each structural step.
    pub branch_percent: u32,
    /// Percent chance of opening a loop at each structural step.
    pub loop_percent: u32,
    /// Percent chance that an instruction is a call.
    pub call_percent: u32,
    /// Percent chance that an instruction is a register copy (feeds the
    /// coalescing passes). Zero keeps the RNG stream identical to
    /// configurations predating this knob.
    pub copy_percent: u32,
    /// Number of function parameters.
    pub params: usize,
    /// How far back an instruction may reach for operands; larger
    /// values stretch live ranges and raise MaxLive.
    pub liveness_window: usize,
}

impl Default for SsaConfig {
    fn default() -> Self {
        SsaConfig {
            target_instrs: 80,
            max_loop_depth: 2,
            branch_percent: 20,
            loop_percent: 12,
            call_percent: 6,
            copy_percent: 0,
            params: 3,
            liveness_window: 12,
        }
    }
}

struct SsaGen<'a, R: Rng> {
    b: FunctionBuilder,
    rng: &'a mut R,
    cfg: SsaConfig,
    budget: isize,
}

impl<R: Rng> SsaGen<'_, R> {
    /// Picks an operand from the tail of `scope` (the liveness window).
    fn pick(&mut self, scope: &[Value]) -> Option<Value> {
        if scope.is_empty() {
            return None;
        }
        let window = self.cfg.liveness_window.max(1).min(scope.len());
        let i = scope.len() - 1 - self.rng.gen_range(0..window);
        Some(scope[i])
    }

    fn emit_instr(&mut self, cur: BlockId, scope: &mut Vec<Value>) {
        // Copies are rolled first and only when enabled, keeping the
        // RNG stream stable for copy_percent == 0 configurations.
        if self.cfg.copy_percent > 0
            && !scope.is_empty()
            && self.rng.gen_range(0..100) < self.cfg.copy_percent
        {
            if let Some(src) = self.pick(scope) {
                let v = self.b.copy(cur, src);
                scope.push(v);
                self.budget -= 1;
                return;
            }
        }
        let n_uses = self.rng.gen_range(0..=2.min(scope.len()));
        let mut uses = Vec::with_capacity(n_uses);
        for _ in 0..n_uses {
            if let Some(v) = self.pick(scope) {
                uses.push(v);
            }
        }
        let v = if self.rng.gen_range(0..100) < self.cfg.call_percent {
            self.b.call(cur, &uses)
        } else {
            self.b.op(cur, &uses)
        };
        scope.push(v);
        self.budget -= 1;
    }

    /// Generates a region starting in `cur`; returns the block where
    /// control continues. `scope` holds values whose definitions
    /// dominate every point of the region.
    fn region(
        &mut self,
        mut cur: BlockId,
        depth: u32,
        mut budget: isize,
        scope: &mut Vec<Value>,
    ) -> BlockId {
        while budget > 0 && self.budget > 0 {
            let roll = self.rng.gen_range(0..100);
            if roll < self.cfg.branch_percent && budget > 6 {
                cur = self.if_else(cur, depth, budget / 2, scope);
                budget /= 2;
            } else if roll < self.cfg.branch_percent + self.cfg.loop_percent
                && depth < self.cfg.max_loop_depth
                && budget > 8
            {
                cur = self.loop_region(cur, depth + 1, budget / 2, scope);
                budget /= 2;
            } else {
                self.emit_instr(cur, scope);
                budget -= 1;
            }
        }
        cur
    }

    fn if_else(
        &mut self,
        cur: BlockId,
        depth: u32,
        budget: isize,
        scope: &mut Vec<Value>,
    ) -> BlockId {
        // Condition computation in the current block.
        self.emit_instr(cur, scope);
        let then_b = self.b.block();
        let else_b = self.b.block();
        let join = self.b.block();
        self.b.set_succs(cur, &[then_b, else_b]);

        let mut then_scope = scope.clone();
        let then_end = self.region(then_b, depth, budget / 2, &mut then_scope);
        let mut else_scope = scope.clone();
        let else_end = self.region(else_b, depth, budget / 2, &mut else_scope);
        self.b.set_succs(then_end, &[join]);
        self.b.set_succs(else_end, &[join]);

        // Merge a couple of arm-local values with φs; predecessors of
        // `join` will be ordered by block index at finish time.
        let n_phis = self.rng.gen_range(0..=2usize);
        for _ in 0..n_phis {
            let tv = *then_scope.last().unwrap_or(&then_scope[0]);
            let ev = *else_scope.last().unwrap_or(&else_scope[0]);
            let (first, second) = if then_end.index() < else_end.index() {
                (tv, ev)
            } else {
                (ev, tv)
            };
            let m = self.b.phi(join, &[first, second]);
            scope.push(m);
            // Rotate arm scopes so repeated φs merge different values.
            then_scope.rotate_right(1);
            else_scope.rotate_right(1);
        }
        join
    }

    fn loop_region(
        &mut self,
        cur: BlockId,
        depth: u32,
        budget: isize,
        scope: &mut Vec<Value>,
    ) -> BlockId {
        let header = self.b.block();
        let exit = self.b.block();
        self.b.set_succs(cur, &[header]);

        // Loop-carried φs: preds(header) = [cur, body_end] in index
        // order because every body block is created after `cur`.
        let n_carried = self.rng.gen_range(1..=2usize);
        let mut phis = Vec::with_capacity(n_carried);
        for _ in 0..n_carried {
            let init = self.pick(scope).unwrap_or_else(|| {
                let v = self.b.op(cur, &[]);
                self.budget -= 1;
                v
            });
            let phi = self.b.phi(header, &[init, init]); // second arg patched below
            phis.push(phi);
        }
        let mut body_scope = scope.clone();
        body_scope.extend(phis.iter().copied());
        // A little work in the header itself.
        self.emit_instr(header, &mut body_scope);

        let body = self.b.block();
        self.b.set_succs(header, &[body, exit]);
        let body_end = self.region(body, depth, budget, &mut body_scope);
        self.b.set_succs(body_end, &[header]);

        // Patch the back-edge φ operands with values from the body.
        for &phi in &phis {
            let next = self.pick(&body_scope).unwrap_or(phi);
            self.b.patch_phi_arg(header, phi, 1, next);
        }
        // After the loop, the carried values are available (the header
        // dominates the exit).
        scope.extend(phis);
        exit
    }
}

/// Generates a random structured strict-SSA function.
///
/// The result always validates ([`Function::validate`]) and satisfies
/// strict SSA ([`validate_strict_ssa`]).
pub fn random_ssa_function(
    rng: &mut impl Rng,
    cfg: &SsaConfig,
    name: impl Into<String>,
) -> Function {
    let mut g = SsaGen {
        b: FunctionBuilder::new(name),
        rng,
        cfg: cfg.clone(),
        budget: cfg.target_instrs as isize,
    };
    let entry = g.b.entry_block();
    let mut scope: Vec<Value> = (0..cfg.params.max(1)).map(|_| g.b.param()).collect();
    let budget = g.budget;
    let last = g.region(entry, 0, budget, &mut scope);
    // Keep a handful of values live to the end ("return" uses).
    let k = g.rng.gen_range(1..=3.min(scope.len()));
    let tail: Vec<Value> = (0..k).filter_map(|_| g.pick(&scope)).collect();
    g.b.effect(last, Opcode::Store, &tail);
    g.b.finish()
}

/// Shape parameters for [`random_jit_function`].
#[derive(Clone, Debug)]
pub struct JitConfig {
    /// Number of mutable temporaries (values with multiple defs).
    pub vars: usize,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Instructions per block.
    pub instrs_per_block: usize,
    /// Percent chance a block gets an extra forward edge.
    pub cross_percent: u32,
    /// Percent chance a block gets a back edge (loops).
    pub back_percent: u32,
    /// Percent chance an instruction is a call.
    pub call_percent: u32,
}

impl Default for JitConfig {
    fn default() -> Self {
        JitConfig {
            vars: 24,
            blocks: 10,
            instrs_per_block: 6,
            cross_percent: 35,
            back_percent: 25,
            call_percent: 8,
        }
    }
}

/// Generates a random **non-SSA** function: temporaries are redefined
/// freely, so live ranges have holes and the interference graph is a
/// general (usually non-chordal) graph.
pub fn random_jit_function(
    rng: &mut impl Rng,
    cfg: &JitConfig,
    name: impl Into<String>,
) -> Function {
    use crate::cfg::{Block, Instr};
    let nb = cfg.blocks.max(1);
    let nv = cfg.vars.max(2);
    let mut blocks: Vec<Block> = (0..nb).map(|_| Block::default()).collect();

    // Control flow: a chain with random forward and back edges.
    for i in 0..nb {
        let mut succs = Vec::new();
        if i + 1 < nb {
            succs.push(BlockId((i + 1) as u32));
        }
        if i + 2 < nb && rng.gen_range(0..100) < cfg.cross_percent {
            let t = rng.gen_range(i + 2..nb);
            succs.push(BlockId(t as u32));
        }
        if i > 0 && rng.gen_range(0..100) < cfg.back_percent {
            let t = rng.gen_range(0..i);
            succs.push(BlockId(t as u32));
        }
        succs.dedup();
        blocks[i].succs = succs;
    }

    // Instructions: read a few live vars, write one (killing its old
    // value) — classic three-address JIT IR.
    for block in blocks.iter_mut() {
        for _ in 0..cfg.instrs_per_block {
            let n_uses = rng.gen_range(1..=2usize);
            let uses: Vec<Value> = (0..n_uses)
                .map(|_| Value(rng.gen_range(0..nv) as u32))
                .collect();
            let def = Value(rng.gen_range(0..nv) as u32);
            let opcode = if rng.gen_range(0..100) < cfg.call_percent {
                Opcode::Call
            } else {
                Opcode::Op
            };
            block.instrs.push(Instr::new(opcode, Some(def), uses));
        }
    }

    let mut f = Function {
        name: name.into(),
        blocks,
        entry: BlockId(0),
        value_count: nv as u32,
        params: (0..3.min(nv)).map(|v| Value(v as u32)).collect(),
    };
    f.recompute_preds();
    debug_assert_eq!(f.validate(), Ok(()));
    f
}

/// Checks strict SSA: every value has at most one definition, and each
/// definition dominates all its uses (φ uses checked at the tail of the
/// incoming predecessor).
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_strict_ssa(f: &Function) -> Result<(), String> {
    let nv = f.value_count as usize;
    let mut def_site: Vec<Option<BlockId>> = vec![None; nv];
    let mut def_pos: Vec<usize> = vec![0; nv];
    for p in &f.params {
        if def_site[p.index()].is_some() {
            return Err(format!("parameter {p} defined twice"));
        }
        def_site[p.index()] = Some(f.entry);
    }
    for b in f.block_ids() {
        for (i, instr) in f.block(b).instrs.iter().enumerate() {
            if let Some(d) = instr.def {
                if def_site[d.index()].is_some() {
                    return Err(format!("value {d} has multiple definitions"));
                }
                def_site[d.index()] = Some(b);
                def_pos[d.index()] = i;
            }
        }
    }

    let dom = DomTree::compute(f);
    for b in f.block_ids() {
        let block = f.block(b);
        for (i, instr) in block.instrs.iter().enumerate() {
            if instr.is_phi() {
                for (k, u) in instr.uses.iter().enumerate() {
                    let site = def_site[u.index()]
                        .ok_or_else(|| format!("φ use of undefined value {u}"))?;
                    let pred = block.preds[k];
                    if !dom.dominates(site, pred) {
                        return Err(format!(
                            "φ use of {u} in {b}: def in {site} does not dominate pred {pred}"
                        ));
                    }
                }
            } else {
                for u in &instr.uses {
                    let site =
                        def_site[u.index()].ok_or_else(|| format!("use of undefined value {u}"))?;
                    if site == b {
                        // Same block: the def must come earlier (params
                        // count as position-before-0 in the entry).
                        let is_param = f.params.contains(u);
                        if !is_param && def_pos[u.index()] >= i {
                            return Err(format!("use of {u} before its def in {b}"));
                        }
                    } else if !dom.strictly_dominates(site, b) {
                        return Err(format!("def of {u} in {site} does not dominate use in {b}"));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{interference, liveness};
    use lra_graph::peo;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn ssa_functions_are_valid_strict_ssa() {
        for seed in 0..25 {
            let f = random_ssa_function(&mut rng(seed), &SsaConfig::default(), format!("f{seed}"));
            f.validate().expect("structurally valid");
            validate_strict_ssa(&f).expect("strict SSA");
        }
    }

    #[test]
    fn ssa_interference_graphs_are_chordal() {
        for seed in 0..25 {
            let f = random_ssa_function(&mut rng(seed), &SsaConfig::default(), "f");
            let live = liveness::analyze(&f);
            let g = interference::interference_graph(&f, &live);
            assert!(peo::is_chordal(&g), "seed {seed}: non-chordal SSA graph");
        }
    }

    #[test]
    fn ssa_generator_is_deterministic() {
        let a = random_ssa_function(&mut rng(3), &SsaConfig::default(), "f");
        let b = random_ssa_function(&mut rng(3), &SsaConfig::default(), "f");
        assert_eq!(a, b);
    }

    #[test]
    fn ssa_size_tracks_target() {
        let cfg = SsaConfig {
            target_instrs: 200,
            ..SsaConfig::default()
        };
        let f = random_ssa_function(&mut rng(1), &cfg, "big");
        assert!(f.instr_count() >= 100, "got {}", f.instr_count());
        assert!(f.value_count >= 100);
    }

    #[test]
    fn ssa_functions_contain_loops_and_branches() {
        let cfg = SsaConfig {
            target_instrs: 150,
            branch_percent: 30,
            loop_percent: 20,
            ..SsaConfig::default()
        };
        let mut saw_branch = false;
        let mut saw_phi = false;
        for seed in 0..10 {
            let f = random_ssa_function(&mut rng(seed), &cfg, "f");
            saw_branch |= f.blocks.iter().any(|b| b.succs.len() > 1);
            saw_phi |= f.blocks.iter().any(|b| b.instrs.iter().any(|i| i.is_phi()));
        }
        assert!(saw_branch);
        assert!(saw_phi);
    }

    #[test]
    fn jit_functions_are_non_ssa() {
        let f = random_jit_function(&mut rng(4), &JitConfig::default(), "jit");
        f.validate().expect("structurally valid");
        assert!(
            validate_strict_ssa(&f).is_err(),
            "JIT code should not be SSA"
        );
    }

    #[test]
    fn jit_graphs_are_often_non_chordal() {
        let mut non_chordal = 0;
        for seed in 0..20 {
            let f = random_jit_function(&mut rng(seed), &JitConfig::default(), "jit");
            let live = liveness::analyze(&f);
            let g = interference::interference_graph(&f, &live);
            if !peo::is_chordal(&g) {
                non_chordal += 1;
            }
        }
        assert!(
            non_chordal >= 5,
            "only {non_chordal}/20 JIT graphs were non-chordal"
        );
    }

    #[test]
    fn jit_generator_is_deterministic() {
        let a = random_jit_function(&mut rng(9), &JitConfig::default(), "f");
        let b = random_jit_function(&mut rng(9), &JitConfig::default(), "f");
        assert_eq!(a, b);
    }

    #[test]
    fn validate_strict_ssa_rejects_double_def() {
        use crate::cfg::{Block, Instr};
        let mut f = Function {
            name: "bad".into(),
            blocks: vec![Block::default()],
            entry: BlockId(0),
            value_count: 1,
            params: vec![],
        };
        f.blocks[0].instrs = vec![
            Instr::new(Opcode::Op, Some(Value(0)), vec![]),
            Instr::new(Opcode::Op, Some(Value(0)), vec![]),
        ];
        f.recompute_preds();
        assert!(validate_strict_ssa(&f)
            .unwrap_err()
            .contains("multiple definitions"));
    }

    #[test]
    fn validate_strict_ssa_rejects_use_before_def() {
        use crate::cfg::{Block, Instr};
        let mut f = Function {
            name: "bad".into(),
            blocks: vec![Block::default()],
            entry: BlockId(0),
            value_count: 2,
            params: vec![],
        };
        f.blocks[0].instrs = vec![
            Instr::new(Opcode::Op, Some(Value(1)), vec![Value(0)]),
            Instr::new(Opcode::Op, Some(Value(0)), vec![]),
        ];
        f.recompute_preds();
        assert!(validate_strict_ssa(&f).is_err());
    }
}
