//! Interference-graph construction and linearised live intervals.
//!
//! Two views of the same function feed the allocators:
//!
//! * [`interference_graph`] — the precise graph: a definition interferes
//!   with every value live just after it. For strict-SSA functions live
//!   ranges are subtrees of the dominance tree, so this graph is
//!   **chordal**; for non-SSA functions (multiple defs per value, live
//!   ranges with holes) it is a general graph — the JikesRVM setting of
//!   the paper's §6.2.
//! * [`live_intervals`] — the linear-scan view: each value is
//!   over-approximated by one interval over a reverse-postorder
//!   linearisation of the code. The intersection graph of these
//!   intervals is an interval graph (hence chordal), and its maximal
//!   cliques are program points, so the exact spill-everywhere optimum
//!   is computable in polynomial time by min-cost flow (see
//!   `lra-core::optimal::flow`).

use crate::cfg::{Function, Opcode};
use crate::liveness::Liveness;
use crate::scratch::AnalysisScratch;
use lra_graph::{BitMatrix, Graph, Interval};

/// Builds the precise interference graph of `f` (one vertex per value).
///
/// A def interferes with every value live immediately after it; φ defs
/// of the same block interfere pairwise (they exist simultaneously at
/// block entry); function parameters interfere pairwise when live.
///
/// Construction works directly on a packed adjacency [`BitMatrix`]:
/// each definition unions the current live set into its own row with
/// one word-level [`BitMatrix::union_row_with`] — O(n/64) per
/// definition instead of one `add_edge` call per live value — and
/// [`Graph::from_bit_matrix`] mirrors the edges and derives the CSR
/// neighbor arena in a single final pass. The whole adjacency is **one
/// allocation**, not one `BitSet` per value.
pub fn interference_graph(f: &Function, live: &Liveness) -> Graph {
    interference_graph_in(f, live, &mut AnalysisScratch::new())
}

/// [`interference_graph`] with caller-provided scratch for the
/// backward live-set sweep; identical output. The adjacency matrix
/// itself is *not* recycled — [`Graph::from_bit_matrix`] retains it
/// inside the returned graph, so it is output, not scratch.
pub fn interference_graph_in(
    f: &Function,
    live: &Liveness,
    scratch: &mut AnalysisScratch,
) -> Graph {
    let nv = f.value_count as usize;
    let mut rows = BitMatrix::new(nv, nv);
    let live_set = scratch.live_for(nv);

    for blk in f.block_ids() {
        let bi = blk.index();
        live_set.copy_from(&live.live_out[bi]);
        for instr in f.blocks[bi].instrs.iter().rev() {
            if instr.opcode == Opcode::Phi {
                break; // φs handled below
            }
            if let Some(d) = instr.def {
                // d interferes with everything live after the def
                // (other than itself, for non-SSA redefinitions).
                live_set.remove(d.index());
                rows.union_row_with(d.index(), live_set);
            }
            for u in &instr.uses {
                live_set.insert(u.index());
            }
        }
        // φ defs: all live-in simultaneously — they interfere with
        // everything else live-in, which includes every other φ def of
        // the block.
        for instr in f.blocks[bi].phis() {
            if let Some(d) = instr.def {
                rows.union_row_with(d.index(), &live.live_in[bi]);
                rows.remove(d.index(), d.index());
            }
        }
    }

    // Parameters are defined simultaneously at function entry.
    let entry_in = &live.live_in[f.entry.index()];
    for (i, p) in f.params.iter().enumerate() {
        for q in &f.params[i + 1..] {
            if entry_in.contains(p.index()) && entry_in.contains(q.index()) {
                rows.insert(p.index(), q.index());
            }
        }
    }

    Graph::from_bit_matrix(rows)
}

/// A linearisation of `f`: block order plus the starting program point
/// of each block.
#[derive(Clone, Debug)]
pub struct Linearization {
    /// Blocks in layout (reverse-postorder) order.
    pub order: Vec<crate::cfg::BlockId>,
    /// Starting point of each block, indexed by block id.
    pub base: Vec<u32>,
    /// One past the last program point.
    pub end: u32,
}

/// Lays out the blocks of `f` in reverse postorder and assigns each
/// block a contiguous range of program points (one per instruction plus
/// a boundary point).
pub fn linearize(f: &Function) -> Linearization {
    let order = f.reverse_postorder();
    let mut base = vec![0u32; f.block_count()];
    let mut next = 0u32;
    for &b in &order {
        base[b.index()] = next;
        next += f.block(b).instrs.len() as u32 + 1;
    }
    Linearization {
        order,
        base,
        end: next,
    }
}

/// Computes one live interval per value over the linearisation `lin`,
/// using the block-level liveness `live`.
///
/// The interval spans from the value's definition (or the start of any
/// block where it is live-in) to one past its last use (or the boundary
/// of any block where it is live-out). Holes are *not* represented —
/// this is the deliberate over-approximation made by linear-scan
/// allocators, and it is what makes the intersection graph an interval
/// graph. Dead values get empty intervals.
pub fn live_intervals(f: &Function, live: &Liveness, lin: &Linearization) -> Vec<Interval> {
    live_intervals_in(f, live, lin, &mut AnalysisScratch::new())
}

/// [`live_intervals`] with caller-provided scratch for the endpoint
/// arrays; identical output.
pub fn live_intervals_in(
    f: &Function,
    live: &Liveness,
    lin: &Linearization,
    scratch: &mut AnalysisScratch,
) -> Vec<Interval> {
    let nv = f.value_count as usize;
    let start = &mut scratch.starts;
    start.clear();
    start.resize(nv, u32::MAX);
    let end = &mut scratch.ends;
    end.clear();
    end.resize(nv, 0);
    let mut touch = |v: usize, s: u32, e: u32| {
        start[v] = start[v].min(s);
        end[v] = end[v].max(e);
    };

    for &b in &lin.order {
        let bi = b.index();
        let b0 = lin.base[bi];
        let bend = b0 + f.blocks[bi].instrs.len() as u32 + 1;
        for v in live.live_in[bi].iter() {
            touch(v, b0, b0 + 1);
        }
        for v in live.live_out[bi].iter() {
            touch(v, bend - 1, bend);
        }
        for (i, instr) in f.blocks[bi].instrs.iter().enumerate() {
            let p = b0 + i as u32 + 1;
            if let Some(d) = instr.def {
                // A definition occupies its register for at least one
                // point, even if the value is never used — this keeps
                // the interval graph a supergraph of the precise one.
                touch(d.index(), p, p + 1);
            }
            if instr.opcode != Opcode::Phi {
                for u in &instr.uses {
                    touch(u.index(), p, p + 1);
                }
            }
        }
        // φ uses live out of the matching predecessor: already covered
        // by live_out of that pred via the liveness analysis.
    }

    // Parameters are defined at the function's first point.
    for p in &f.params {
        if end[p.index()] > 0 {
            start[p.index()] = 0;
        }
    }

    (0..nv)
        .map(|v| {
            if start[v] == u32::MAX || end[v] <= start[v] {
                // Dead or never-live value: empty interval at its def.
                let at = if start[v] == u32::MAX { 0 } else { start[v] };
                Interval::new(at, at)
            } else {
                Interval::new(start[v], end[v])
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::liveness;
    use lra_graph::interval::{interval_graph, max_overlap};
    use lra_graph::peo;

    #[test]
    fn straight_line_interference() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        let y = b.op(e, &[x]);
        let z = b.op(e, &[x, y]);
        b.op(e, &[z]);
        let f = b.finish();
        let live = liveness::analyze(&f);
        let g = interference_graph(&f, &live);
        // x-y interfere (x live across y's def); z kills both.
        assert!(g.has_edge(x.index(), y.index()));
        assert!(!g.has_edge(x.index(), z.index()));
        assert!(!g.has_edge(y.index(), z.index()));
    }

    #[test]
    fn ssa_graph_is_chordal() {
        // Diamond with a phi and a loop.
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let a = b.op(e, &[]);
        let c = b.op(e, &[a]);
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        let xl = b.op(l, &[a]);
        let xr = b.op(r, &[c]);
        let m = b.phi(j, &[xl, xr]);
        b.op(j, &[m, a]);
        let f = b.finish();
        let live = liveness::analyze(&f);
        let g = interference_graph(&f, &live);
        assert!(peo::is_chordal(&g));
    }

    #[test]
    fn phi_defs_in_same_block_interfere() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        let a1 = b.op(l, &[]);
        let a2 = b.op(l, &[]);
        let b1 = b.op(r, &[]);
        let b2 = b.op(r, &[]);
        let p = b.phi(j, &[a1, b1]);
        let q = b.phi(j, &[a2, b2]);
        b.op(j, &[p, q]);
        let f = b.finish();
        let live = liveness::analyze(&f);
        let g = interference_graph(&f, &live);
        assert!(g.has_edge(p.index(), q.index()));
        // Values flowing through different φ arms do not interfere.
        assert!(!g.has_edge(a1.index(), b1.index()));
    }

    #[test]
    fn params_interfere() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let p = b.param();
        let q = b.param();
        b.op(e, &[p, q]);
        let f = b.finish();
        let live = liveness::analyze(&f);
        let g = interference_graph(&f, &live);
        assert!(g.has_edge(p.index(), q.index()));
    }

    #[test]
    fn linearization_is_contiguous() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let n1 = b.block();
        b.set_succs(e, &[n1]);
        b.op(e, &[]);
        b.op(n1, &[]);
        let f = b.finish();
        let lin = linearize(&f);
        assert_eq!(lin.order.len(), 2);
        assert_eq!(lin.base[0], 0);
        assert_eq!(lin.base[1], 2); // entry has 1 instr + boundary
        assert_eq!(lin.end, 4);
    }

    #[test]
    fn intervals_cover_live_ranges() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let n1 = b.block();
        b.set_succs(e, &[n1]);
        let x = b.op(e, &[]);
        let y = b.op(e, &[x]);
        b.op(n1, &[x, y]);
        let f = b.finish();
        let live = liveness::analyze(&f);
        let lin = linearize(&f);
        let ivs = live_intervals(&f, &live, &lin);
        // x live from its def through the use in n1.
        assert!(ivs[x.index()].overlaps(&ivs[y.index()]));
        assert!(max_overlap(&ivs) >= 2);
        // The interval graph over-approximates the precise graph.
        let precise = interference_graph(&f, &live);
        let coarse = interval_graph(&ivs);
        for (u, v) in precise.edges() {
            assert!(coarse.has_edge(u.index(), v.index()));
        }
    }

    #[test]
    fn dead_defs_get_one_point_intervals() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let unused_param = b.param();
        let dead = b.op(e, &[]);
        let x = b.op(e, &[]);
        b.op(e, &[x]);
        let f = b.finish();
        let live = liveness::analyze(&f);
        let lin = linearize(&f);
        let ivs = live_intervals(&f, &live, &lin);
        // A dead def still occupies its register for one point.
        assert_eq!(ivs[dead.index()].len(), 1);
        assert!(!ivs[x.index()].is_empty());
        // An unused parameter is never materialised at all.
        assert!(ivs[unused_param.index()].is_empty());
    }

    #[test]
    fn interval_graphs_are_chordal_even_for_loopy_cfgs() {
        let mut b = FunctionBuilder::new("loop");
        let e = b.entry_block();
        let init = b.op(e, &[]);
        let h = b.block();
        let body = b.block();
        let exit = b.block();
        b.set_succs(e, &[h]);
        b.set_succs(h, &[body, exit]);
        b.set_succs(body, &[h]);
        let carried = b.phi(h, &[init, init]);
        let t = b.op(body, &[carried]);
        let next = b.op(body, &[t, carried]);
        b.patch_phi_arg(h, carried, 1, next);
        b.op(exit, &[carried]);
        let f = b.finish();
        let live = liveness::analyze(&f);
        let lin = linearize(&f);
        let ivs = live_intervals(&f, &live, &lin);
        assert!(peo::is_chordal(&interval_graph(&ivs)));
    }
}
