//! Compiler IR substrate for the layered-allocation reproduction.
//!
//! The paper evaluates its allocators on interference graphs produced by
//! real compilers (Open64 for ST231/ARMv7, JikesRVM for SPEC JVM98).
//! This crate rebuilds that pipeline from scratch:
//!
//! * a small SSA-capable IR: control-flow graph, blocks, instructions,
//!   virtual registers ([`mod@cfg`], [`builder`]),
//! * dominator trees (Cooper–Harvey–Kennedy) ([`dom`]),
//! * natural-loop detection and block frequency estimation ([`loops`]),
//! * backward liveness analysis with SSA φ semantics, per-point register
//!   pressure and `MaxLive` — worklist-solved, with an incremental
//!   re-analysis entry point for spill rounds ([`liveness`]),
//! * the shared per-round analysis bundle threaded through the
//!   allocation pipeline ([`analysis`]),
//! * interference-graph construction — **chordal** for strict-SSA
//!   functions, general for non-SSA functions — plus linearised live
//!   intervals as used by linear-scan allocators ([`interference`]),
//! * spill-cost estimation (`frequency × accesses`, ABI-aware)
//!   ([`spill_cost`]),
//! * spill-everywhere code insertion ([`spill_code`]) — stores after
//!   definitions, reloads before uses — plus live-range splitting at
//!   uses and at over-pressure boundaries ([`split`]) and
//!   rematerialization of constant-like values ([`remat`]),
//! * seeded random program generators shaped like the benchmark suites
//!   of the paper ([`genprog`]),
//! * a textual pretty-printer ([`pretty`]) and a canonical,
//!   round-trippable text codec for shipping functions across process
//!   boundaries ([`textio`]).
//!
//! # Example
//!
//! Build a tiny SSA function, compute liveness and the (chordal)
//! interference graph:
//!
//! ```
//! use lra_ir::builder::FunctionBuilder;
//! use lra_ir::{interference, liveness};
//!
//! let mut b = FunctionBuilder::new("demo");
//! let entry = b.entry_block();
//! let x = b.op(entry, &[]);          // x = const
//! let y = b.op(entry, &[x]);         // y = f(x)
//! let _z = b.op(entry, &[x, y]);     // z = g(x, y)
//! let f = b.finish();
//! let live = liveness::analyze(&f);
//! let ig = interference::interference_graph(&f, &live);
//! assert!(lra_graph::peo::is_chordal(&ig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod block_edits;
pub mod builder;
pub mod cfg;
pub mod dom;
pub mod genprog;
pub mod interference;
pub mod liveness;
pub mod loops;
pub mod pretty;
pub mod remat;
pub mod scratch;
pub mod spill_code;
pub mod spill_cost;
pub mod split;
pub mod ssa;
pub mod textio;

pub use analysis::FunctionAnalysis;
pub use block_edits::BlockEdits;
pub use cfg::{Block, BlockId, Function, Instr, Opcode, Value};
pub use scratch::AnalysisScratch;
