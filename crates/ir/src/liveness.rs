//! Backward liveness analysis with SSA φ semantics.
//!
//! The central quantity of decoupled register allocation is **MaxLive**:
//! the maximum number of variables simultaneously live at any program
//! point. If `MaxLive ≤ R` the assignment phase needs no spill, so the
//! spilling problem is exactly "lower MaxLive to R at minimum cost".
//!
//! φ conventions (standard for SSA-based allocation):
//! * a φ's *uses* are live at the end of the corresponding predecessor,
//! * a φ's *def* is live-in of its block,
//!
//! so φ-related values of different predecessors do not artificially
//! interfere.

use crate::cfg::{Function, Opcode};
use crate::scratch::{reset_local_table, AnalysisScratch};
use lra_graph::BitSet;

/// Per-block live sets plus register-pressure summaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Liveness {
    /// Values live at block entry (φ defs included), indexed by block.
    pub live_in: Vec<BitSet>,
    /// Values live at block exit (φ uses of successors included).
    pub live_out: Vec<BitSet>,
    /// Maximum pressure over every program point of the function.
    pub max_live: usize,
    /// Maximum pressure within each block.
    pub block_max_live: Vec<usize>,
}

/// Per-block transfer-function inputs of the backward dataflow
/// problem. `None` entries stand for the empty set (`no_keys`), so an
/// incremental scan of a few dirty blocks allocates a few sets, not
/// four per block.
struct LocalSets {
    nv: usize,
    /// The shared empty set returned for unmaterialised blocks.
    no_keys: BitSet,
    /// Upward-exposed uses (used before any def in the block).
    ue: Vec<Option<BitSet>>,
    /// Values defined by non-φ instructions.
    defs: Vec<Option<BitSet>>,
    /// Values defined by φs (live-in of the block, dead in preds).
    phi_defs: Vec<Option<BitSet>>,
    /// φ uses of successors, charged to this block's live-out.
    phi_out: Vec<Option<BitSet>>,
}

impl LocalSets {
    /// Sets are materialised per block only when a scan touches them,
    /// so the incremental path pays for the dirty frontier, not for
    /// every block of the function.
    ///
    /// The tables (and any set a previous function materialised) are
    /// borrowed from `scratch` and handed back by
    /// [`LocalSets::recycle`], so a long-lived worker re-fills the
    /// same allocations function after function. A recycled set is
    /// reset empty at the right capacity first, which the accessors
    /// below treat exactly like an unmaterialised `None`.
    fn from_scratch(n: usize, nv: usize, scratch: &mut AnalysisScratch) -> Self {
        let mut ue = std::mem::take(&mut scratch.ue);
        let mut defs = std::mem::take(&mut scratch.defs);
        let mut phi_defs = std::mem::take(&mut scratch.phi_defs);
        let mut phi_out = std::mem::take(&mut scratch.phi_out);
        reset_local_table(&mut ue, n, nv);
        reset_local_table(&mut defs, n, nv);
        reset_local_table(&mut phi_defs, n, nv);
        reset_local_table(&mut phi_out, n, nv);
        LocalSets {
            nv,
            no_keys: BitSet::new(nv),
            ue,
            defs,
            phi_defs,
            phi_out,
        }
    }

    /// Returns the tables to `scratch` for the next function.
    fn recycle(self, scratch: &mut AnalysisScratch) {
        scratch.ue = self.ue;
        scratch.defs = self.defs;
        scratch.phi_defs = self.phi_defs;
        scratch.phi_out = self.phi_out;
    }

    fn ue(&self, b: usize) -> &BitSet {
        self.ue[b].as_ref().unwrap_or(&self.no_keys)
    }

    fn defs(&self, b: usize) -> &BitSet {
        self.defs[b].as_ref().unwrap_or(&self.no_keys)
    }

    fn phi_defs(&self, b: usize) -> &BitSet {
        self.phi_defs[b].as_ref().unwrap_or(&self.no_keys)
    }

    fn phi_out(&self, b: usize) -> &BitSet {
        self.phi_out[b].as_ref().unwrap_or(&self.no_keys)
    }

    /// Scans `block` of `f` into the local sets. With `mask` set, only
    /// values in the mask are recorded — the restriction used by
    /// [`analyze_incremental`], sound because block-level liveness is
    /// independent per value.
    fn scan_block(&mut self, f: &Function, b: usize, mask: Option<&BitSet>) {
        let nv = self.nv;
        fn materialize(v: &mut [Option<BitSet>], b: usize, nv: usize) -> &mut BitSet {
            v[b].get_or_insert_with(|| BitSet::new(nv))
        }
        let keep = |v: usize| mask.is_none_or(|m| m.contains(v));
        let block = &f.blocks[b];
        for instr in block.instrs.iter().rev() {
            if instr.opcode == Opcode::Phi {
                if let Some(d) = instr.def {
                    if keep(d.index()) {
                        materialize(&mut self.phi_defs, b, nv).insert(d.index());
                    }
                }
                continue;
            }
            if let Some(d) = instr.def {
                if let Some(ue) = self.ue[b].as_mut() {
                    ue.remove(d.index());
                }
                if keep(d.index()) {
                    materialize(&mut self.defs, b, nv).insert(d.index());
                }
            }
            for u in &instr.uses {
                if keep(u.index()) {
                    materialize(&mut self.ue, b, nv).insert(u.index());
                }
            }
        }
        for instr in block.phis() {
            for (i, u) in instr.uses.iter().enumerate() {
                if keep(u.index()) {
                    let p = block.preds[i];
                    materialize(&mut self.phi_out, p.index(), nv).insert(u.index());
                }
            }
        }
    }
}

/// Solves the backward dataflow equations with a worklist, mutating
/// `live_in`/`live_out` in place from their current state (the bottom
/// element for a full analysis; empty partial sets for the masked
/// incremental solve). `seeds` must be given in reverse postorder:
/// the stack then pops blocks in postorder, the fast order for
/// backward problems. Only blocks with `reachable` set are processed —
/// unreachable blocks keep their (empty) sets, matching the full
/// analysis, which never visits them.
fn solve(
    f: &Function,
    local: &LocalSets,
    reachable: &[bool],
    seeds: &[usize],
    live_in: &mut [BitSet],
    live_out: &mut [BitSet],
    scratch: &mut AnalysisScratch,
) {
    let n = f.block_count();
    let on_list = &mut scratch.on_list;
    on_list.clear();
    on_list.resize(n, false);
    let stack = &mut scratch.stack;
    stack.clear();
    for &b in seeds {
        if reachable[b] && !on_list[b] {
            on_list[b] = true;
            stack.push(b);
        }
    }
    while let Some(bi) = stack.pop() {
        on_list[bi] = false;
        // live_out(b) = Σ_succ (live_in(s) \ phi_defs(s)) ∪ phi_out(b)
        let mut out = local.phi_out(bi).clone();
        for &s in &f.blocks[bi].succs {
            let mut from_s = live_in[s.index()].clone();
            from_s.difference_with(local.phi_defs(s.index()));
            out.union_with(&from_s);
        }
        // live_in(b) = phi_defs ∪ ue ∪ (out \ defs)
        let mut inn = out.clone();
        inn.difference_with(local.defs(bi));
        inn.union_with(local.ue(bi));
        inn.union_with(local.phi_defs(bi));
        if out != live_out[bi] {
            live_out[bi] = out;
        }
        if inn != live_in[bi] {
            live_in[bi] = inn;
            // Only a live-in change is visible to predecessors.
            for &p in &f.blocks[bi].preds {
                let pi = p.index();
                if reachable[pi] && !on_list[pi] {
                    on_list[pi] = true;
                    stack.push(pi);
                }
            }
        }
    }
}

/// Backward pressure sweep of one block: the maximum live-set size over
/// its program points. `live` is caller-provided sweep scratch (reset
/// to the value-space capacity); its contents on entry are ignored.
fn block_pressure(
    f: &Function,
    b: usize,
    live_in: &BitSet,
    live_out: &BitSet,
    live: &mut BitSet,
) -> usize {
    live.copy_from(live_out);
    let mut local_max = live.len();
    for instr in f.blocks[b].instrs.iter().rev() {
        if instr.opcode == Opcode::Phi {
            // φ defs are conceptually parallel at block entry; they
            // are all in live_in already. Stop the sweep here.
            break;
        }
        if let Some(d) = instr.def {
            live.remove(d.index());
        }
        for u in &instr.uses {
            live.insert(u.index());
        }
        local_max = local_max.max(live.len());
    }
    local_max.max(live_in.len())
}

fn reachable_and_rpo(f: &Function) -> (Vec<bool>, Vec<usize>) {
    let rpo: Vec<usize> = f.reverse_postorder().iter().map(|b| b.index()).collect();
    let mut reachable = vec![false; f.block_count()];
    for &b in &rpo {
        reachable[b] = true;
    }
    (reachable, rpo)
}

/// Runs liveness analysis over `f`.
///
/// Solves the backward dataflow equations with a worklist (seeded in
/// reverse postorder, so blocks are first processed in postorder and
/// re-processed only when a successor's live-in actually changes), then
/// sweeps each block once to measure per-point pressure.
pub fn analyze(f: &Function) -> Liveness {
    analyze_in(f, &mut AnalysisScratch::new())
}

/// [`analyze`] with caller-provided scratch buffers: identical output,
/// but a worker recycling one [`AnalysisScratch`] across functions
/// skips the per-function allocation of the transfer sets, the
/// worklist and the pressure-sweep live set.
pub fn analyze_in(f: &Function, scratch: &mut AnalysisScratch) -> Liveness {
    let n = f.block_count();
    let nv = f.value_count as usize;

    let mut local = LocalSets::from_scratch(n, nv, scratch);
    for b in 0..n {
        local.scan_block(f, b, None);
    }

    let mut live_in = vec![BitSet::new(nv); n];
    let mut live_out = vec![BitSet::new(nv); n];
    let (reachable, rpo) = reachable_and_rpo(f);
    solve(
        f,
        &local,
        &reachable,
        &rpo,
        &mut live_in,
        &mut live_out,
        scratch,
    );
    local.recycle(scratch);

    let mut block_max_live = vec![0usize; n];
    let mut max_live = 0usize;
    let sweep = scratch.live_for(nv);
    for b in 0..n {
        let local_max = block_pressure(f, b, &live_in[b], &live_out[b], sweep);
        block_max_live[b] = local_max;
        max_live = max_live.max(local_max);
    }

    Liveness {
        live_in,
        live_out,
        max_live,
        block_max_live,
    }
}

/// Re-solves liveness after a rewrite that changed instructions only in
/// `dirty_blocks` and live ranges only of `changed_values`, seeding
/// from the previous fixed point `prev` instead of starting over.
///
/// Spill-code insertion is exactly such a rewrite (see
/// [`crate::spill_code::SpillDelta`]): the CFG is untouched, every
/// occurrence of a changed value (the spilled originals and the fresh
/// reloads) sits in a dirty block, and block-level liveness is
/// independent per value — so the carried-over sets stay exact for
/// every unchanged value, and only the changed values need a (masked,
/// dirty-seeded) dataflow solve. The result is **identical** to a
/// fresh [`analyze`] of `f`; CI diffs the two paths end to end via the
/// `LRA_FULL_REANALYSIS` escape hatch.
///
/// # Panics
///
/// Panics if `prev` has a different block count than `f`, if
/// `changed_values`' capacity is not `f.value_count`, or if
/// `dirty_blocks`' capacity is not the block count.
pub fn analyze_incremental(
    f: &Function,
    prev: &Liveness,
    dirty_blocks: &BitSet,
    changed_values: &BitSet,
) -> Liveness {
    analyze_incremental_in(
        f,
        prev,
        dirty_blocks,
        changed_values,
        &mut AnalysisScratch::new(),
    )
}

/// [`analyze_incremental`] with caller-provided scratch buffers; same
/// output, recycled allocations (see [`analyze_in`]).
///
/// # Panics
///
/// Same contract as [`analyze_incremental`].
pub fn analyze_incremental_in(
    f: &Function,
    prev: &Liveness,
    dirty_blocks: &BitSet,
    changed_values: &BitSet,
    scratch: &mut AnalysisScratch,
) -> Liveness {
    let n = f.block_count();
    let nv = f.value_count as usize;
    assert_eq!(prev.live_in.len(), n, "block count changed across rounds");
    assert_eq!(changed_values.capacity(), nv, "changed-value mask capacity");
    assert_eq!(dirty_blocks.capacity(), n, "dirty-block mask capacity");

    // Masked local sets: changed values occur only in dirty blocks.
    let mut local = LocalSets::from_scratch(n, nv, scratch);
    for b in dirty_blocks.iter() {
        local.scan_block(f, b, Some(changed_values));
    }

    // Partial solve over the changed values only. Seeds: the dirty
    // blocks plus any block that picked up a φ-edge contribution, in
    // reverse postorder. The partial sets are dense on purpose: the
    // returned `Liveness` owns a full set per block anyway, so the
    // merge below is already O(blocks) word-level passes — the
    // incremental saving lives in the solver iterations and the
    // pressure sweeps, not here.
    let mut pin = vec![BitSet::new(nv); n];
    let mut pout = vec![BitSet::new(nv); n];
    let (reachable, rpo) = reachable_and_rpo(f);
    let seeds: Vec<usize> = rpo
        .iter()
        .copied()
        .filter(|&b| dirty_blocks.contains(b) || !local.phi_out(b).is_empty())
        .collect();
    solve(f, &local, &reachable, &seeds, &mut pin, &mut pout, scratch);
    local.recycle(scratch);

    // Merge: carry the previous sets (grown to the new value space,
    // changed values cleared) and union in the partial solution. A
    // block whose live-out kept every bit and whose instructions are
    // untouched reuses its recorded pressure; everything else is
    // re-swept.
    let mut live_in = Vec::with_capacity(n);
    let mut live_out = Vec::with_capacity(n);
    let mut out_carried_exactly = vec![false; n];
    for b in 0..n {
        let mut inn = prev.live_in[b].clone();
        inn.grow(nv);
        inn.difference_with(changed_values);
        inn.union_with(&pin[b]);
        live_in.push(inn);

        let mut out = prev.live_out[b].clone();
        out.grow(nv);
        let lost = out.intersection_len(changed_values) > 0;
        out.difference_with(changed_values);
        out.union_with(&pout[b]);
        out_carried_exactly[b] = !lost && pout[b].is_empty();
        live_out.push(out);
    }

    let mut block_max_live = vec![0usize; n];
    let mut max_live = 0usize;
    let sweep = scratch.live_for(nv);
    for b in 0..n {
        let local_max = if out_carried_exactly[b] && !dirty_blocks.contains(b) {
            prev.block_max_live[b]
        } else {
            block_pressure(f, b, &live_in[b], &live_out[b], sweep)
        };
        block_max_live[b] = local_max;
        max_live = max_live.max(local_max);
    }

    Liveness {
        live_in,
        live_out,
        max_live,
        block_max_live,
    }
}

/// Returns the values live across at least one [`Opcode::Call`] site —
/// candidates for the ABI call-crossing cost penalty.
pub fn live_across_calls(f: &Function, live: &Liveness) -> BitSet {
    let nv = f.value_count as usize;
    let mut crossing = BitSet::new(nv);
    // One scratch live set reused across blocks instead of a fresh
    // clone (and allocation) per block.
    let mut live_set = BitSet::new(nv);
    for b in f.block_ids() {
        let bi = b.index();
        live_set.copy_from(&live.live_out[bi]);
        for instr in f.blocks[bi].instrs.iter().rev() {
            if instr.opcode == Opcode::Phi {
                break;
            }
            if let Some(d) = instr.def {
                live_set.remove(d.index());
            }
            if instr.opcode == Opcode::Call {
                // Values live across the call (not its own operands'
                // last uses, which die at the call).
                crossing.union_with(&live_set);
            }
            for u in &instr.uses {
                live_set.insert(u.index());
            }
        }
    }
    crossing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    #[test]
    fn straight_line_liveness() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        let y = b.op(e, &[x]);
        let _z = b.op(e, &[x, y]);
        let f = b.finish();
        let live = analyze(&f);
        assert!(live.live_in[0].is_empty());
        assert!(live.live_out[0].is_empty());
        // x and y live simultaneously between y's def and z.
        assert_eq!(live.max_live, 2);
    }

    #[test]
    fn value_live_across_blocks() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let next = b.block();
        b.set_succs(e, &[next]);
        let x = b.op(e, &[]);
        b.op(next, &[x]);
        let f = b.finish();
        let live = analyze(&f);
        assert!(live.live_out[0].contains(x.index()));
        assert!(live.live_in[1].contains(x.index()));
    }

    #[test]
    fn phi_def_live_in_and_uses_live_out_of_preds() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        let xl = b.op(l, &[]);
        let xr = b.op(r, &[]);
        let m = b.phi(j, &[xl, xr]);
        b.op(j, &[m]);
        let f = b.finish();
        let live = analyze(&f);
        // φ uses live out of their own predecessor only.
        assert!(live.live_out[l.index()].contains(xl.index()));
        assert!(!live.live_out[l.index()].contains(xr.index()));
        assert!(live.live_out[r.index()].contains(xr.index()));
        // φ def live-in of join but NOT live-out of preds.
        assert!(live.live_in[j.index()].contains(m.index()));
        assert!(!live.live_out[l.index()].contains(m.index()));
    }

    #[test]
    fn loop_carried_value_live_around_backedge() {
        let mut b = FunctionBuilder::new("loop");
        let e = b.entry_block();
        let init = b.op(e, &[]);
        let h = b.block();
        let body = b.block();
        let exit = b.block();
        b.set_succs(e, &[h]);
        b.set_succs(h, &[body, exit]);
        b.set_succs(body, &[h]);
        let carried = b.phi(h, &[init, init]);
        let next = b.op(body, &[carried]);
        b.patch_phi_arg(h, carried, 1, next);
        b.op(exit, &[carried]);
        let f = b.finish();
        let live = analyze(&f);
        // carried is live everywhere in the loop.
        assert!(live.live_in[h.index()].contains(carried.index()));
        assert!(live.live_out[h.index()].contains(carried.index()));
        assert!(live.live_out[body.index()].contains(next.index()));
    }

    #[test]
    fn max_live_counts_peak_pressure() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let vs: Vec<_> = (0..5).map(|_| b.op(e, &[])).collect();
        b.op(e, &vs); // all five live here
        let f = b.finish();
        let live = analyze(&f);
        assert_eq!(live.max_live, 5);
        assert_eq!(live.block_max_live[0], 5);
    }

    #[test]
    fn dead_value_not_live_anywhere() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let _dead = b.op(e, &[]);
        let f = b.finish();
        let live = analyze(&f);
        assert!(live.live_in[0].is_empty());
        assert!(live.live_out[0].is_empty());
    }

    #[test]
    fn incremental_matches_fresh_analysis_after_spilling() {
        use crate::spill_code;
        use lra_graph::BitSet;
        // Loop-carried φ plus a long-lived value: spilling either
        // reshapes liveness across the whole loop.
        let mut b = FunctionBuilder::new("loop");
        let e = b.entry_block();
        let init = b.op(e, &[]);
        let long = b.op(e, &[]);
        let h = b.block();
        let body = b.block();
        let exit = b.block();
        b.set_succs(e, &[h]);
        b.set_succs(h, &[body, exit]);
        b.set_succs(body, &[h]);
        let carried = b.phi(h, &[init, init]);
        let next = b.op(body, &[carried, long]);
        b.patch_phi_arg(h, carried, 1, next);
        b.op(exit, &[carried, long]);
        let f = b.finish();
        let prev = analyze(&f);
        for victim in 0..f.value_count as usize {
            let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [victim]);
            let rw = spill_code::rewrite_spill_code(&f, &spilled);
            let inc = analyze_incremental(
                &rw.function,
                &prev,
                &rw.delta.dirty_blocks,
                &rw.delta.changed_values,
            );
            assert_eq!(inc, analyze(&rw.function), "victim {victim}");
        }
    }

    #[test]
    fn incremental_with_nothing_dirty_is_the_identity() {
        use lra_graph::BitSet;
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        let n1 = b.block();
        b.set_succs(e, &[n1]);
        b.op(n1, &[x]);
        let f = b.finish();
        let prev = analyze(&f);
        let inc = analyze_incremental(
            &f,
            &prev,
            &BitSet::new(f.block_count()),
            &BitSet::new(f.value_count as usize),
        );
        assert_eq!(inc, prev);
    }

    #[test]
    fn incremental_leaves_unreachable_blocks_empty() {
        use crate::cfg::{Block, BlockId, Instr};
        use lra_graph::BitSet;
        // An unreachable block that reads a value and branches into
        // the reachable CFG: the full analysis never visits it, so the
        // incremental one must not either.
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        b.op(e, &[x]);
        b.op(e, &[x]);
        let mut f = b.finish();
        f.blocks.push(Block {
            instrs: vec![Instr::new(Opcode::Op, None, vec![crate::cfg::Value(0)])],
            succs: vec![BlockId(0)],
            preds: Vec::new(),
        });
        f.recompute_preds();
        let prev = analyze(&f);
        assert!(prev.live_in[1].is_empty() && prev.live_out[1].is_empty());
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [x.index()]);
        let rw = crate::spill_code::rewrite_spill_code(&f, &spilled);
        let inc = analyze_incremental(
            &rw.function,
            &prev,
            &rw.delta.dirty_blocks,
            &rw.delta.changed_values,
        );
        assert_eq!(inc, analyze(&rw.function));
        assert!(inc.live_in[1].is_empty() && inc.live_out[1].is_empty());
    }

    #[test]
    fn live_across_calls_detects_crossing_values() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]); // live across the call
        let arg = b.op(e, &[]); // dies at the call
        let r = b.call(e, &[arg]);
        b.op(e, &[x, r]);
        let f = b.finish();
        let live = analyze(&f);
        let crossing = live_across_calls(&f, &live);
        assert!(crossing.contains(x.index()));
        assert!(!crossing.contains(arg.index()));
        // The call result is defined, not live across its own call.
        assert!(!crossing.contains(r.index()));
    }
}
