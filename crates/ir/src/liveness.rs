//! Backward liveness analysis with SSA φ semantics.
//!
//! The central quantity of decoupled register allocation is **MaxLive**:
//! the maximum number of variables simultaneously live at any program
//! point. If `MaxLive ≤ R` the assignment phase needs no spill, so the
//! spilling problem is exactly "lower MaxLive to R at minimum cost".
//!
//! φ conventions (standard for SSA-based allocation):
//! * a φ's *uses* are live at the end of the corresponding predecessor,
//! * a φ's *def* is live-in of its block,
//!
//! so φ-related values of different predecessors do not artificially
//! interfere.

use crate::cfg::{Function, Opcode};
use lra_graph::BitSet;

/// Per-block live sets plus register-pressure summaries.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Values live at block entry (φ defs included), indexed by block.
    pub live_in: Vec<BitSet>,
    /// Values live at block exit (φ uses of successors included).
    pub live_out: Vec<BitSet>,
    /// Maximum pressure over every program point of the function.
    pub max_live: usize,
    /// Maximum pressure within each block.
    pub block_max_live: Vec<usize>,
}

/// Runs liveness analysis over `f`.
///
/// Iterates the backward dataflow equations to a fixed point (postorder
/// for fast convergence), then sweeps each block once to measure
/// per-point pressure.
pub fn analyze(f: &Function) -> Liveness {
    let n = f.block_count();
    let nv = f.value_count as usize;

    // Per-block upward-exposed uses and defs (φs handled separately).
    let mut ue = vec![BitSet::new(nv); n];
    let mut defs = vec![BitSet::new(nv); n];
    let mut phi_defs = vec![BitSet::new(nv); n];
    for b in 0..n {
        let block = &f.blocks[b];
        for instr in block.instrs.iter().rev() {
            if instr.opcode == Opcode::Phi {
                if let Some(d) = instr.def {
                    phi_defs[b].insert(d.index());
                }
                continue;
            }
            if let Some(d) = instr.def {
                ue[b].remove(d.index());
                defs[b].insert(d.index());
            }
            for u in &instr.uses {
                ue[b].insert(u.index());
            }
        }
    }

    // φ uses contributed to each predecessor's live-out.
    let mut phi_out = vec![BitSet::new(nv); n];
    for b in 0..n {
        let block = &f.blocks[b];
        for instr in block.phis() {
            for (i, u) in instr.uses.iter().enumerate() {
                let p = block.preds[i];
                phi_out[p.index()].insert(u.index());
            }
        }
    }

    let mut live_in = vec![BitSet::new(nv); n];
    let mut live_out = vec![BitSet::new(nv); n];

    // Postorder = reverse of RPO; good order for backward problems.
    let mut order = f.reverse_postorder();
    order.reverse();

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let bi = b.index();
            // live_out(b) = Σ_succ (live_in(s) \ phi_defs(s)) ∪ phi_out(b)
            let mut out = phi_out[bi].clone();
            for &s in &f.blocks[bi].succs {
                let mut from_s = live_in[s.index()].clone();
                from_s.difference_with(&phi_defs[s.index()]);
                out.union_with(&from_s);
            }
            // live_in(b) = phi_defs ∪ ue ∪ (out \ defs)
            let mut inn = out.clone();
            inn.difference_with(&defs[bi]);
            inn.union_with(&ue[bi]);
            inn.union_with(&phi_defs[bi]);
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inn;
                changed = true;
            }
        }
    }

    // Pressure sweep: walk each block backward tracking the live set.
    let mut block_max_live = vec![0usize; n];
    let mut max_live = 0usize;
    for b in 0..n {
        let mut live = live_out[b].clone();
        let mut local_max = live.len();
        for instr in f.blocks[b].instrs.iter().rev() {
            if instr.opcode == Opcode::Phi {
                // φ defs are conceptually parallel at block entry; they
                // are all in live_in already. Stop the sweep here.
                break;
            }
            if let Some(d) = instr.def {
                live.remove(d.index());
            }
            for u in &instr.uses {
                live.insert(u.index());
            }
            local_max = local_max.max(live.len());
        }
        local_max = local_max.max(live_in[b].len());
        block_max_live[b] = local_max;
        max_live = max_live.max(local_max);
    }

    Liveness {
        live_in,
        live_out,
        max_live,
        block_max_live,
    }
}

/// Returns the values live across at least one [`Opcode::Call`] site —
/// candidates for the ABI call-crossing cost penalty.
pub fn live_across_calls(f: &Function, live: &Liveness) -> BitSet {
    let nv = f.value_count as usize;
    let mut crossing = BitSet::new(nv);
    for b in f.block_ids() {
        let bi = b.index();
        let mut live_set = live.live_out[bi].clone();
        for instr in f.blocks[bi].instrs.iter().rev() {
            if instr.opcode == Opcode::Phi {
                break;
            }
            if let Some(d) = instr.def {
                live_set.remove(d.index());
            }
            if instr.opcode == Opcode::Call {
                // Values live across the call (not its own operands'
                // last uses, which die at the call).
                crossing.union_with(&live_set);
            }
            for u in &instr.uses {
                live_set.insert(u.index());
            }
        }
    }
    crossing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    #[test]
    fn straight_line_liveness() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        let y = b.op(e, &[x]);
        let _z = b.op(e, &[x, y]);
        let f = b.finish();
        let live = analyze(&f);
        assert!(live.live_in[0].is_empty());
        assert!(live.live_out[0].is_empty());
        // x and y live simultaneously between y's def and z.
        assert_eq!(live.max_live, 2);
    }

    #[test]
    fn value_live_across_blocks() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let next = b.block();
        b.set_succs(e, &[next]);
        let x = b.op(e, &[]);
        b.op(next, &[x]);
        let f = b.finish();
        let live = analyze(&f);
        assert!(live.live_out[0].contains(x.index()));
        assert!(live.live_in[1].contains(x.index()));
    }

    #[test]
    fn phi_def_live_in_and_uses_live_out_of_preds() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        let xl = b.op(l, &[]);
        let xr = b.op(r, &[]);
        let m = b.phi(j, &[xl, xr]);
        b.op(j, &[m]);
        let f = b.finish();
        let live = analyze(&f);
        // φ uses live out of their own predecessor only.
        assert!(live.live_out[l.index()].contains(xl.index()));
        assert!(!live.live_out[l.index()].contains(xr.index()));
        assert!(live.live_out[r.index()].contains(xr.index()));
        // φ def live-in of join but NOT live-out of preds.
        assert!(live.live_in[j.index()].contains(m.index()));
        assert!(!live.live_out[l.index()].contains(m.index()));
    }

    #[test]
    fn loop_carried_value_live_around_backedge() {
        let mut b = FunctionBuilder::new("loop");
        let e = b.entry_block();
        let init = b.op(e, &[]);
        let h = b.block();
        let body = b.block();
        let exit = b.block();
        b.set_succs(e, &[h]);
        b.set_succs(h, &[body, exit]);
        b.set_succs(body, &[h]);
        let carried = b.phi(h, &[init, init]);
        let next = b.op(body, &[carried]);
        b.patch_phi_arg(h, carried, 1, next);
        b.op(exit, &[carried]);
        let f = b.finish();
        let live = analyze(&f);
        // carried is live everywhere in the loop.
        assert!(live.live_in[h.index()].contains(carried.index()));
        assert!(live.live_out[h.index()].contains(carried.index()));
        assert!(live.live_out[body.index()].contains(next.index()));
    }

    #[test]
    fn max_live_counts_peak_pressure() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let vs: Vec<_> = (0..5).map(|_| b.op(e, &[])).collect();
        b.op(e, &vs); // all five live here
        let f = b.finish();
        let live = analyze(&f);
        assert_eq!(live.max_live, 5);
        assert_eq!(live.block_max_live[0], 5);
    }

    #[test]
    fn dead_value_not_live_anywhere() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let _dead = b.op(e, &[]);
        let f = b.finish();
        let live = analyze(&f);
        assert!(live.live_in[0].is_empty());
        assert!(live.live_out[0].is_empty());
    }

    #[test]
    fn live_across_calls_detects_crossing_values() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]); // live across the call
        let arg = b.op(e, &[]); // dies at the call
        let r = b.call(e, &[arg]);
        b.op(e, &[x, r]);
        let f = b.finish();
        let live = analyze(&f);
        let crossing = live_across_calls(&f, &live);
        assert!(crossing.contains(x.index()));
        assert!(!crossing.contains(arg.index()));
        // The call result is defined, not live across its own call.
        assert!(!crossing.contains(r.index()));
    }
}
