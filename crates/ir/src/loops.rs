//! Natural-loop detection and static block-frequency estimation.
//!
//! Spill costs in the paper are computed "based on the basic blocks'
//! frequency and on the number of accesses to the variables within the
//! basic blocks". We estimate frequency statically as `10^depth` where
//! `depth` is the natural-loop nesting depth — the standard static
//! heuristic in the absence of profiles.

use crate::cfg::{BlockId, Function};
use crate::dom::DomTree;

/// Per-block loop-nesting information.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    depth: Vec<u32>,
}

/// The multiplier applied per loop level in [`LoopInfo::frequency`].
pub const FREQUENCY_BASE: u64 = 10;

impl LoopInfo {
    /// Detects natural loops of `f` (back edges `u → h` where `h`
    /// dominates `u`) and accumulates nesting depths.
    pub fn compute(f: &Function, dom: &DomTree) -> Self {
        let n = f.block_count();
        let mut depth = vec![0u32; n];
        for u in f.block_ids() {
            for &h in &f.block(u).succs {
                if dom.dominates(h, u) {
                    // Natural loop of back edge u -> h: h plus all blocks
                    // that reach u without passing through h.
                    let mut in_loop = vec![false; n];
                    in_loop[h.index()] = true;
                    let mut stack = vec![u];
                    if !in_loop[u.index()] {
                        in_loop[u.index()] = true;
                    }
                    while let Some(x) = stack.pop() {
                        for &p in &f.block(x).preds {
                            if !in_loop[p.index()] {
                                in_loop[p.index()] = true;
                                stack.push(p);
                            }
                        }
                    }
                    for (b, &inside) in in_loop.iter().enumerate() {
                        if inside {
                            depth[b] += 1;
                        }
                    }
                }
            }
        }
        LoopInfo { depth }
    }

    /// The loop-nesting depth of `b` (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Static execution-frequency estimate of `b`:
    /// `FREQUENCY_BASE ^ depth(b)`, saturating.
    pub fn frequency(&self, b: BlockId) -> u64 {
        FREQUENCY_BASE.saturating_pow(self.depth(b).min(12))
    }

    /// The deepest nesting level in the function.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Block;

    fn function_with_edges(n: usize, edges: &[(u32, u32)]) -> Function {
        let mut f = Function {
            name: "t".into(),
            blocks: (0..n).map(|_| Block::default()).collect(),
            entry: BlockId(0),
            value_count: 0,
            params: vec![],
        };
        for &(a, b) in edges {
            f.blocks[a as usize].succs.push(BlockId(b));
        }
        f.recompute_preds();
        f
    }

    #[test]
    fn straight_line_has_depth_zero() {
        let f = function_with_edges(3, &[(0, 1), (1, 2)]);
        let li = LoopInfo::compute(&f, &DomTree::compute(&f));
        for b in 0..3u32 {
            assert_eq!(li.depth(BlockId(b)), 0);
            assert_eq!(li.frequency(BlockId(b)), 1);
        }
        assert_eq!(li.max_depth(), 0);
    }

    #[test]
    fn single_loop() {
        // 0 -> 1(header) -> 2(body) -> 1, 1 -> 3(exit).
        let f = function_with_edges(4, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let li = LoopInfo::compute(&f, &DomTree::compute(&f));
        assert_eq!(li.depth(BlockId(0)), 0);
        assert_eq!(li.depth(BlockId(1)), 1);
        assert_eq!(li.depth(BlockId(2)), 1);
        assert_eq!(li.depth(BlockId(3)), 0);
        assert_eq!(li.frequency(BlockId(2)), 10);
    }

    #[test]
    fn nested_loops_stack_depth() {
        // 0 -> 1(outer h) -> 2(inner h) -> 3(inner body) -> 2; 2 -> 4 -> 1; 1 -> 5.
        let f = function_with_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 2), (2, 4), (4, 1), (1, 5)]);
        let li = LoopInfo::compute(&f, &DomTree::compute(&f));
        assert_eq!(li.depth(BlockId(1)), 1);
        assert_eq!(li.depth(BlockId(2)), 2);
        assert_eq!(li.depth(BlockId(3)), 2);
        assert_eq!(li.depth(BlockId(4)), 1);
        assert_eq!(li.depth(BlockId(5)), 0);
        assert_eq!(li.frequency(BlockId(3)), 100);
        assert_eq!(li.max_depth(), 2);
    }

    #[test]
    fn self_loop_counts() {
        let f = function_with_edges(3, &[(0, 1), (1, 1), (1, 2)]);
        let li = LoopInfo::compute(&f, &DomTree::compute(&f));
        assert_eq!(li.depth(BlockId(1)), 1);
        assert_eq!(li.depth(BlockId(2)), 0);
    }

    #[test]
    fn frequency_saturates() {
        let li = LoopInfo { depth: vec![40] };
        // Depth clamped to 12 -> 10^12, no overflow.
        assert_eq!(li.frequency(BlockId(0)), 1_000_000_000_000);
    }
}
