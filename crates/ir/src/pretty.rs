//! Textual pretty-printer for [`Function`]s.

use crate::cfg::{Function, Opcode};
use std::fmt::Write as _;

/// Renders `f` as readable pseudo-assembly.
///
/// # Examples
///
/// ```
/// use lra_ir::builder::FunctionBuilder;
/// use lra_ir::pretty;
///
/// let mut b = FunctionBuilder::new("demo");
/// let e = b.entry_block();
/// let x = b.op(e, &[]);
/// b.op(e, &[x]);
/// let f = b.finish();
/// let text = pretty::print(&f);
/// assert!(text.contains("fn demo"));
/// assert!(text.contains("%0 = op"));
/// ```
pub fn print(f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fn {}({}) {{",
        f.name,
        f.params
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    for b in f.block_ids() {
        let block = f.block(b);
        let preds = block
            .preds
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "{b}:{}",
            if preds.is_empty() {
                String::new()
            } else {
                format!(" ; preds: {preds}")
            }
        );
        for instr in &block.instrs {
            let mnemonic = match instr.opcode {
                Opcode::Op => "op",
                Opcode::Phi => "phi",
                Opcode::Call => "call",
                Opcode::Load => "load",
                Opcode::Store => "store",
                Opcode::Copy => "copy",
            };
            let uses = instr
                .uses
                .iter()
                .map(|u| u.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            match instr.def {
                Some(d) => {
                    let _ = writeln!(out, "  {d} = {mnemonic} {uses}");
                }
                None => {
                    let _ = writeln!(out, "  {mnemonic} {uses}");
                }
            }
        }
        if !block.succs.is_empty() {
            let succs = block
                .succs
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "  -> {succs}");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    #[test]
    fn prints_blocks_phis_and_edges() {
        let mut b = FunctionBuilder::new("g");
        let e = b.entry_block();
        let p = b.param();
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        let m = b.phi(j, &[p, p]);
        b.effect(j, crate::cfg::Opcode::Store, &[m]);
        let f = b.finish();
        let s = print(&f);
        assert!(s.contains("fn g(%0)"));
        assert!(s.contains("phi %0, %0"));
        assert!(s.contains("-> bb1, bb2"));
        assert!(s.contains("store %1"));
        assert!(s.contains("; preds: bb1, bb2"));
        assert!(s.ends_with("}\n"));
    }
}
