//! Rematerialization: recompute cheap values instead of reloading them.
//!
//! Spill-everywhere round-trips every spilled value through memory — a
//! store after the definition, a reload before each use. For values
//! whose definition is *cheaper to re-execute than to reload* (constants
//! and constant-like address arithmetic), classical rematerialization
//! (Chaitin et al.; Briggs–Cooper–Torczon) drops the memory traffic
//! entirely: the defining instruction is cloned right before each use
//! and no spill slot is allocated at all.
//!
//! [`RematTable::compute`] classifies every value of a function with a
//! [`RematClass`] derived from its defining instruction. The class is
//! deliberately conservative for this IR:
//!
//! * exactly **one** definition across the whole function (the corpora
//!   include non-SSA functions where temporaries are redefined freely —
//!   a multi-def value has no single recomputation),
//! * the defining opcode is a plain [`Opcode::Op`] with **no operands**
//!   (a constant: its result does not depend on any register state, so
//!   the clone is valid at any program point, even when the original
//!   definition does not dominate the use),
//! * not a function parameter (parameters have no defining instruction).
//!
//! [`rewrite_spill_code_remat`] is the remat-aware counterpart of
//! [`crate::spill_code::rewrite_spill_code`]: spilled values that carry
//! a [`RematClass::Const`] tag are materialized at each use instead of
//! stored and reloaded. It reports the same [`SpillDelta`] as the plain
//! rewrites so the incremental-liveness path works unchanged, and it
//! keeps the table in lockstep with the rewritten function's value
//! space — a materialized clone is itself rematerializable, so repeated
//! spill rounds never accumulate loads for constant values. Reloads the
//! rewrite inserts are tagged [`RematClass::Reload`]: their spill slot
//! is written exactly once, so evicting a reload in a later round
//! re-issues the load at each use instead of paying a second
//! store-and-reload round trip (and needs no callee-saved register
//! across calls — the slot outlives them).

#![allow(clippy::needless_range_loop)] // parallel arrays indexed by block id

use crate::cfg::{Function, Instr, Opcode, Value};
use crate::scratch::AnalysisScratch;
use crate::spill_code::{SpillDelta, SpillRewrite, SpillStats};
use lra_graph::BitSet;

/// How a value may leave the register file when the allocator evicts
/// it, derived from its defining instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RematClass {
    /// Not rematerializable: spilling stores the value and reloads it
    /// before each use (the default for multi-def values, parameters,
    /// φs, calls, loads and any computation with live operands).
    #[default]
    Spill,
    /// A single-definition, zero-operand computation (a constant or
    /// constant address): eviction re-executes the defining instruction
    /// before each use and never touches memory.
    Const,
    /// A reload inserted by a previous spill round: its value already
    /// sits in a spill slot that is written exactly once, so eviction
    /// re-issues the load before each use — no second store, and no
    /// callee-saved register across calls (the slot outlives them).
    /// Only rewriter-created reloads get this class; an
    /// [`Opcode::Load`] in the *source* program may read mutable
    /// memory and is classified [`RematClass::Spill`] by
    /// [`RematTable::compute`].
    Reload,
}

/// Per-value rematerialization classes and recomputation templates for
/// one function. Indexed by value; see the [module docs](self) for the
/// classification rules.
///
/// # Examples
///
/// ```
/// use lra_ir::builder::FunctionBuilder;
/// use lra_ir::remat::{RematClass, RematTable};
///
/// let mut b = FunctionBuilder::new("f");
/// let e = b.entry_block();
/// let k = b.op(e, &[]);      // k = const        → Const
/// let y = b.op(e, &[k]);     // y = f(k)         → Spill
/// let f = b.finish();
/// let table = RematTable::compute(&f);
/// assert_eq!(table.class(k.index()), RematClass::Const);
/// assert_eq!(table.class(y.index()), RematClass::Spill);
/// ```
#[derive(Clone, Debug)]
pub struct RematTable {
    classes: Vec<RematClass>,
    /// The defining instruction to clone at each use, for `Const`
    /// values (`None` for `Spill`).
    templates: Vec<Option<Instr>>,
}

impl RematTable {
    /// Classifies every value of `f`.
    pub fn compute(f: &Function) -> Self {
        let nv = f.value_count as usize;
        let mut def_count = vec![0u32; nv];
        let mut def_instr: Vec<Option<Instr>> = vec![None; nv];
        for block in &f.blocks {
            for instr in &block.instrs {
                if let Some(d) = instr.def {
                    def_count[d.index()] += 1;
                    def_instr[d.index()] = Some(instr.clone());
                }
            }
        }
        let mut table = RematTable {
            classes: vec![RematClass::Spill; nv],
            templates: vec![None; nv],
        };
        for v in 0..nv {
            if def_count[v] != 1 || f.params.iter().any(|p| p.index() == v) {
                continue;
            }
            let instr = def_instr[v].take().expect("counted def");
            if instr.opcode == Opcode::Op && instr.uses.is_empty() {
                table.classes[v] = RematClass::Const;
                table.templates[v] = Some(instr);
            }
        }
        table
    }

    /// The table for a [`crate::split::SplitFunction`] derived from the
    /// function this table was computed on: every split copy inherits
    /// the class of its origin (a copy of a constant is recomputed by
    /// materializing the constant itself).
    pub fn map_split(&self, origin: &[Value]) -> Self {
        let classes: Vec<RematClass> = origin.iter().map(|o| self.classes[o.index()]).collect();
        let templates = origin
            .iter()
            .enumerate()
            .map(|(v, o)| {
                self.templates[o.index()].clone().map(|mut t| {
                    // The clone must define the split value, not the
                    // origin, so materializations stay single-def.
                    t.def = Some(Value(v as u32));
                    t
                })
            })
            .collect();
        RematTable { classes, templates }
    }

    /// The class of value `v`.
    pub fn class(&self, v: usize) -> RematClass {
        self.classes.get(v).copied().unwrap_or(RematClass::Spill)
    }

    /// `true` when evicting `v` re-executes its definition instead of
    /// spilling it.
    pub fn is_remat(&self, v: usize) -> bool {
        self.class(v) != RematClass::Spill
    }

    /// Number of values the table covers.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` when the table covers no values.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Number of rematerializable values.
    pub fn remat_count(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| **c != RematClass::Spill)
            .count()
    }

    /// Registers a freshly created value: a materialized clone of
    /// `template_of` (inheriting its class), or a plain new value
    /// (reload, copy) when `template_of` is `None`.
    fn push(&mut self, v: Value, template_of: Option<usize>) {
        debug_assert_eq!(v.index(), self.classes.len());
        match template_of {
            Some(of) => {
                self.classes.push(self.classes[of]);
                let template = self.templates[of].clone().map(|mut t| {
                    t.def = Some(v);
                    t
                });
                self.templates.push(template);
            }
            None => {
                self.classes.push(RematClass::Spill);
                self.templates.push(None);
            }
        }
    }

    /// Registers a freshly created spill-slot reload as
    /// [`RematClass::Reload`]: the slot it reads is written exactly
    /// once, so a later eviction may re-issue the load at each use
    /// instead of storing the reloaded value a second time.
    fn push_reload(&mut self, v: Value) {
        debug_assert_eq!(v.index(), self.classes.len());
        self.classes.push(RematClass::Reload);
        self.templates
            .push(Some(Instr::new(Opcode::Load, Some(v), vec![])));
    }

    /// Upgrades copies that are backed by a spill slot to
    /// [`RematClass::Reload`]: a single-def [`Opcode::Copy`] holds
    /// exactly its operand's value, so once that operand has a
    /// write-once slot — it is being spilled in this round's `spilled`
    /// set, or it is itself a slot-backed [`RematClass::Reload`] value
    /// — evicting the copy may re-issue a load from the slot instead
    /// of paying a second store-and-reload round trip. The spill
    /// driver calls this after each allocation round, before costing
    /// and rewriting the round's evictions.
    ///
    /// Multi-def values (the non-SSA corpora redefine temporaries
    /// freely) and parameters are skipped on both sides of the copy:
    /// their slots are not write-once, so the slot's content at the
    /// copy's use is not guaranteed to be the copied value.
    pub fn upgrade_slot_copies(&mut self, f: &Function, spilled: &BitSet) {
        let nv = f.value_count as usize;
        let mut def_count = vec![0u8; nv];
        for block in &f.blocks {
            for instr in &block.instrs {
                if let Some(d) = instr.def {
                    def_count[d.index()] = def_count[d.index()].saturating_add(1);
                }
            }
        }
        let single = |v: usize| def_count[v] == 1 && !f.params.iter().any(|p| p.index() == v);
        // Program-order scan so copy-of-copy chains cascade forward
        // (a missed out-of-order chain link is merely a missed
        // discount, never an unsound upgrade).
        for block in &f.blocks {
            for instr in &block.instrs {
                if instr.opcode != Opcode::Copy {
                    continue;
                }
                let Some(d) = instr.def else { continue };
                let [u] = instr.uses[..] else { continue };
                if self.class(d.index()) != RematClass::Spill || !single(d.index()) {
                    continue;
                }
                let slot_backed = self.class(u.index()) == RematClass::Reload
                    || (spilled.contains(u.index())
                        && !self.is_remat(u.index())
                        && single(u.index()));
                if slot_backed {
                    self.classes[d.index()] = RematClass::Reload;
                    self.templates[d.index()] = Some(Instr::new(Opcode::Load, Some(d), vec![]));
                }
            }
        }
    }
}

/// Remat-aware spill rewriting: values in `spilled` that the table
/// classifies [`RematClass::Const`] are re-materialized before each use
/// (no store, no spill slot); every other spilled value takes the
/// store-plus-reload path of [`crate::spill_code::rewrite_spill_code`].
/// With `share_reloads`, consecutive uses in a block share one reload
/// (and one materialization) per value, mirroring
/// [`crate::spill_code::rewrite_spill_code_optimized`].
///
/// `table` must cover exactly the values of `f`; on return it covers
/// the rewritten function (clones inherit their origin's class, fresh
/// reloads become [`RematClass::Reload`] — their slot is written once,
/// so a later eviction re-issues the load instead of storing again),
/// so the caller can feed the result straight into the next spill
/// round.
///
/// # Panics
///
/// Panics if `table.len()` differs from `f.value_count`.
pub fn rewrite_spill_code_remat(
    f: &Function,
    spilled: &BitSet,
    table: &mut RematTable,
    share_reloads: bool,
) -> SpillRewrite {
    rewrite_spill_code_remat_in(
        f,
        spilled,
        table,
        share_reloads,
        &mut AnalysisScratch::new(),
    )
}

/// [`rewrite_spill_code_remat`] with caller-provided scratch for the
/// block-edit buffers; identical output.
pub fn rewrite_spill_code_remat_in(
    f: &Function,
    spilled: &BitSet,
    table: &mut RematTable,
    share_reloads: bool,
    scratch: &mut AnalysisScratch,
) -> SpillRewrite {
    assert_eq!(
        table.len(),
        f.value_count as usize,
        "remat table out of step with the function"
    );
    let mut next_value = f.value_count;
    let mut stats = SpillStats::default();
    let mut saved = 0usize;

    let n = f.block_count();
    let edits = scratch.edits_for(n);
    let mut dirty = BitSet::new(n);

    // One fresh value per reload *or* materialization, registered in
    // the table as it is created so value indices stay in lockstep.
    let mut fresh = |table: &mut RematTable, stats: &mut SpillStats, of: Value| -> (Value, Instr) {
        let v = Value(next_value);
        next_value += 1;
        match table.class(of.index()) {
            RematClass::Const => {
                table.push(v, Some(of.index()));
                stats.remats += 1;
            }
            // Evicting a reload re-issues the load (from the origin's
            // write-once slot) — a load instruction, so it counts as
            // one, but the origin needs no second store.
            RematClass::Reload => {
                table.push(v, Some(of.index()));
                stats.loads += 1;
            }
            // A first-time spill: the reload it creates is itself
            // re-issuable from the freshly written slot.
            RematClass::Spill => {
                table.push_reload(v);
                stats.loads += 1;
            }
        }
        let instr = table.templates[v.index()]
            .clone()
            .expect("remat-able values carry a template");
        (v, instr)
    };

    for b in 0..n {
        // value -> replacement already materialised in this block.
        edits.avail.clear();
        // Stores for spilled φ defs wait until after the φ run.
        for instr in &f.blocks[b].instrs {
            let mut instr = instr.clone();
            let is_phi = instr.opcode == Opcode::Phi;
            if is_phi {
                for (i, u) in instr.uses.iter_mut().enumerate() {
                    if spilled.contains(u.index()) {
                        let p = f.blocks[b].preds[i];
                        let (v, repl) = fresh(table, &mut stats, *u);
                        edits.tails[p.index()].push(repl);
                        *u = v;
                        dirty.insert(b);
                        dirty.insert(p.index());
                    }
                }
            } else {
                edits.flush_phi_stores(b);
                for u in instr.uses.iter_mut() {
                    if spilled.contains(u.index()) {
                        dirty.insert(b);
                        match edits.avail.get(u) {
                            Some(&v) if share_reloads => {
                                saved += 1;
                                *u = v;
                            }
                            _ => {
                                let key = *u;
                                let (v, repl) = fresh(table, &mut stats, *u);
                                edits.bodies[b].push(repl);
                                edits.avail.insert(key, v);
                                *u = v;
                            }
                        }
                    }
                }
            }
            let def = instr.def;
            let def_spilled = def.is_some_and(|d| spilled.contains(d.index()));
            if def_spilled && share_reloads {
                // The freshly computed value is itself usable until the
                // end of the block.
                edits
                    .avail
                    .insert(def.expect("spilled def"), def.expect("spilled def"));
            }
            edits.bodies[b].push(instr);
            // Rematerializable values are never stored: their spill
            // slot is the defining instruction itself.
            if def_spilled && !table.is_remat(def.expect("spilled def").index()) {
                stats.stores += 1;
                dirty.insert(b);
                let store = Instr::new(Opcode::Store, None, vec![def.expect("spilled def")]);
                if is_phi {
                    edits.phi_stores.push(store);
                } else {
                    edits.bodies[b].push(store);
                }
            }
        }
        edits.flush_phi_stores(b);
    }

    let blocks = edits.finish(f);
    let mut out = Function {
        name: f.name.clone(),
        blocks,
        entry: f.entry,
        value_count: next_value,
        params: f.params.clone(),
    };
    out.recompute_preds();
    debug_assert_eq!(out.validate(), Ok(()));
    SpillRewrite {
        stats,
        saved_loads: saved,
        delta: SpillDelta::new(f, spilled, next_value, dirty),
        function: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::liveness;
    use crate::spill_code;

    #[test]
    fn constants_classify_as_const() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let k = b.op(e, &[]);
        let y = b.op(e, &[k]);
        let c = b.call(e, &[]);
        let f = b.finish();
        let t = RematTable::compute(&f);
        assert_eq!(t.class(k.index()), RematClass::Const);
        assert_eq!(t.class(y.index()), RematClass::Spill, "has live operands");
        assert_eq!(t.class(c.index()), RematClass::Spill, "calls have effects");
        assert_eq!(t.remat_count(), 1);
    }

    #[test]
    fn params_and_multi_def_values_never_remat() {
        use crate::cfg::{Block, BlockId, Function, Instr};
        // Hand-built non-SSA function: value 1 defined twice.
        let mut blocks = vec![Block::default()];
        blocks[0]
            .instrs
            .push(Instr::new(Opcode::Op, Some(Value(1)), vec![]));
        blocks[0]
            .instrs
            .push(Instr::new(Opcode::Op, Some(Value(1)), vec![]));
        blocks[0]
            .instrs
            .push(Instr::new(Opcode::Op, Some(Value(2)), vec![]));
        let mut f = Function {
            name: "nonssa".into(),
            blocks,
            entry: BlockId(0),
            value_count: 3,
            params: vec![Value(0)],
        };
        f.recompute_preds();
        let t = RematTable::compute(&f);
        assert_eq!(t.class(0), RematClass::Spill, "params are not remat");
        assert_eq!(t.class(1), RematClass::Spill, "multi-def is not remat");
        assert_eq!(t.class(2), RematClass::Const);
    }

    #[test]
    fn remat_rewrite_inserts_no_memory_traffic_for_constants() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let k = b.op(e, &[]);
        b.op(e, &[k]);
        b.op(e, &[k]);
        let f = b.finish();
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [k.index()]);
        let mut t = RematTable::compute(&f);
        let rw = rewrite_spill_code_remat(&f, &spilled, &mut t, false);
        assert_eq!(rw.stats.stores, 0);
        assert_eq!(rw.stats.loads, 0);
        assert_eq!(rw.stats.remats, 2);
        // Each use now reads a fresh clone of the constant.
        assert_eq!(rw.function.value_count, f.value_count + 2);
        for v in f.value_count as usize..rw.function.value_count as usize {
            assert_eq!(t.class(v), RematClass::Const, "clones stay remat-able");
        }
        assert_eq!(t.len(), rw.function.value_count as usize);
        assert!(rw.function.validate().is_ok());
    }

    #[test]
    fn non_remat_values_still_store_and_reload() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let k = b.op(e, &[]);
        let y = b.op(e, &[k]);
        b.op(e, &[y]);
        b.op(e, &[y]);
        let f = b.finish();
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [y.index()]);
        let mut t = RematTable::compute(&f);
        let rw = rewrite_spill_code_remat(&f, &spilled, &mut t, false);
        assert_eq!(rw.stats.stores, 1);
        assert_eq!(rw.stats.loads, 2);
        assert_eq!(rw.stats.remats, 0);
        // Identical to the plain spill rewrite when nothing remats.
        let plain = spill_code::rewrite_spill_code(&f, &spilled);
        assert_eq!(rw.function, plain.function);
    }

    #[test]
    fn shared_materializations_mirror_shared_reloads() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let next = b.block();
        b.set_succs(e, &[next]);
        let k = b.op(e, &[]);
        b.op(next, &[k]);
        b.op(next, &[k]); // same block: materialization shared
        let f = b.finish();
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [k.index()]);
        let mut t = RematTable::compute(&f);
        let rw = rewrite_spill_code_remat(&f, &spilled, &mut t, true);
        assert_eq!(rw.stats.remats, 1);
        assert_eq!(rw.saved_loads, 1);
    }

    #[test]
    fn phi_uses_materialize_in_the_predecessor() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        let kl = b.op(l, &[]);
        let kr = b.op(r, &[]);
        let m = b.phi(j, &[kl, kr]);
        b.op(j, &[m]);
        let f = b.finish();
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [kl.index()]);
        let mut t = RematTable::compute(&f);
        let rw = rewrite_spill_code_remat(&f, &spilled, &mut t, false);
        assert_eq!(rw.stats.remats, 1);
        assert_eq!(rw.stats.loads, 0);
        let last_in_l = rw.function.blocks[l.index()].instrs.last().unwrap();
        assert_eq!(last_in_l.opcode, Opcode::Op);
        assert!(last_in_l.uses.is_empty());
    }

    #[test]
    fn remat_lowers_pressure_like_spilling() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let ks: Vec<Value> = (0..5).map(|_| b.op(e, &[])).collect();
        for k in &ks {
            b.op(e, &[*k]);
        }
        let f = b.finish();
        assert_eq!(liveness::analyze(&f).max_live, 5);
        let spilled = BitSet::from_iter_with_capacity(
            f.value_count as usize,
            ks[..3].iter().map(|v| v.index()),
        );
        let mut t = RematTable::compute(&f);
        let rw = rewrite_spill_code_remat(&f, &spilled, &mut t, false);
        assert!(liveness::analyze(&rw.function).max_live < 5);
        assert_eq!(rw.stats.remats, 3);
    }

    #[test]
    fn delta_contract_holds_for_remat_rewrites() {
        // Every occurrence of a changed value sits in a dirty block —
        // the invariant the incremental liveness pass consumes.
        use crate::genprog::{random_ssa_function, SsaConfig};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let f = random_ssa_function(&mut rng, &SsaConfig::default(), "f");
        let spilled = BitSet::from_iter_with_capacity(
            f.value_count as usize,
            (0..f.value_count as usize).filter(|v| v % 2 == 0),
        );
        let mut t = RematTable::compute(&f);
        let rw = rewrite_spill_code_remat(&f, &spilled, &mut t, false);
        for (b, blk) in rw.function.blocks.iter().enumerate() {
            if rw.delta.dirty_blocks.contains(b) {
                continue;
            }
            assert_eq!(blk.instrs, f.blocks[b].instrs, "block {b} silently changed");
            for instr in &blk.instrs {
                for v in instr.def.iter().chain(instr.uses.iter()) {
                    assert!(!rw.delta.changed_values.contains(v.index()));
                }
            }
        }
    }

    #[test]
    fn respilled_reloads_reissue_without_a_second_store() {
        // Round 1 spills y, creating a reload. Round 2 evicts the
        // reload: its slot already holds the value, so the rewrite
        // re-issues the load and must not store again.
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        let y = b.op(e, &[x]);
        b.op(e, &[y]);
        let f = b.finish();
        let mut t = RematTable::compute(&f);
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [y.index()]);
        let r1 = rewrite_spill_code_remat(&f, &spilled, &mut t, false);
        let reload = f.value_count as usize;
        assert_eq!(t.class(reload), RematClass::Reload);
        let respill = BitSet::from_iter_with_capacity(r1.function.value_count as usize, [reload]);
        let r2 = rewrite_spill_code_remat(&r1.function, &respill, &mut t, false);
        assert_eq!(r2.stats.stores, 0, "slot-backed values are never re-stored");
        assert_eq!(r2.stats.loads, 1, "the eviction re-issues one load");
        // The re-issue is itself slot-backed, so round 3 behaves the same.
        assert_eq!(
            t.class(r1.function.value_count as usize),
            RematClass::Reload
        );
        assert!(r2.function.validate().is_ok());
    }

    #[test]
    fn slot_copies_upgrade_to_reload_when_their_source_spills() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let k = b.op(e, &[]);
        // `v` has an operand so it classifies as Spill: its eviction
        // really does store to a slot.
        let v = b.op(e, &[k]);
        let s = b.copy(e, v); // single-def copy of v
        b.op(e, &[s]);
        b.op(e, &[v]);
        let f = b.finish();
        let mut t = RematTable::compute(&f);
        assert_eq!(t.class(s.index()), RematClass::Spill);
        // v gains a write-once slot this round: s holds exactly that
        // slot's content, so evicting s may re-load it.
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [v.index()]);
        t.upgrade_slot_copies(&f, &spilled);
        assert_eq!(t.class(s.index()), RematClass::Reload);
        // The upgraded template re-issues a load defining s.
        let rw = rewrite_spill_code_remat(
            &f,
            &BitSet::from_iter_with_capacity(f.value_count as usize, [v.index(), s.index()]),
            &mut t,
            false,
        );
        assert_eq!(rw.stats.stores, 1, "only v is stored");
        assert!(rw.function.validate().is_ok());
    }

    #[test]
    fn slot_copy_upgrades_skip_params_and_multi_def_values() {
        use crate::cfg::{Block, BlockId, Function, Instr};
        // Hand-built non-SSA function: value 1 is defined twice, value
        // 0 is a parameter; copies of both must keep their Spill class
        // (their slots are not write-once).
        let mut blocks = vec![Block::default()];
        blocks[0]
            .instrs
            .push(Instr::new(Opcode::Op, Some(Value(1)), vec![]));
        blocks[0]
            .instrs
            .push(Instr::new(Opcode::Op, Some(Value(1)), vec![]));
        blocks[0]
            .instrs
            .push(Instr::new(Opcode::Copy, Some(Value(2)), vec![Value(1)]));
        blocks[0]
            .instrs
            .push(Instr::new(Opcode::Copy, Some(Value(3)), vec![Value(0)]));
        blocks[0]
            .instrs
            .push(Instr::new(Opcode::Op, None, vec![Value(2), Value(3)]));
        let mut f = Function {
            name: "nonssa".into(),
            blocks,
            entry: BlockId(0),
            value_count: 4,
            params: vec![Value(0)],
        };
        f.recompute_preds();
        let mut t = RematTable::compute(&f);
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [0usize, 1usize]);
        t.upgrade_slot_copies(&f, &spilled);
        assert_eq!(
            t.class(2),
            RematClass::Spill,
            "multi-def source stays spill"
        );
        assert_eq!(t.class(3), RematClass::Spill, "param source stays spill");
    }

    #[test]
    fn split_copies_inherit_their_origin_class() {
        use crate::split::split_at_uses;
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let k = b.op(e, &[]);
        let y = b.op(e, &[k]);
        b.op(e, &[k, y]);
        let f = b.finish();
        let t = RematTable::compute(&f);
        let s = split_at_uses(&f);
        let ts = t.map_split(&s.origin);
        assert_eq!(ts.len(), s.function.value_count as usize);
        for v in f.value_count as usize..s.function.value_count as usize {
            let o = s.origin[v];
            assert_eq!(ts.class(v), t.class(o.index()));
            if ts.is_remat(v) {
                // The inherited template defines the copy, not the origin.
                assert_eq!(ts.templates[v].as_ref().unwrap().def, Some(Value(v as u32)));
            }
        }
    }
}
