//! Reusable analysis buffers for batch and service workers.
//!
//! `allocate_item`-style per-function drivers used to pay a fresh
//! round of allocations for every function they analysed: the
//! liveness transfer sets, the dataflow worklist, the per-block
//! pressure-sweep live set, the interference sweep's live set and the
//! interval endpoint arrays. None of those outlive one analysis call,
//! so a long-lived worker can allocate them once and recycle them
//! across every function it processes.
//!
//! [`AnalysisScratch`] is that recycled state. Every `_in` entry point
//! ([`crate::liveness::analyze_in`],
//! [`crate::interference::interference_graph_in`],
//! [`crate::interference::live_intervals_in`],
//! [`crate::FunctionAnalysis::compute_in`]) resets the buffers it
//! takes to the function at hand before using them, so a scratch can
//! be reused across functions of any sizes — and even after a caller
//! caught a panic mid-analysis — without affecting a single output
//! bit. Reuse is a pure allocation saving; results are identical to
//! the scratch-free paths, and a property test pins that.
//!
//! The per-round IR rewrites (spill insertion, splitting,
//! rematerialization) recycle their block-edit buffers the same way:
//! see [`crate::block_edits::BlockEdits`], owned here and handed out
//! to the rewrites' `_in` entry points.
//!
//! What is deliberately **not** in here: the interference adjacency
//! matrix. `lra_graph::Graph::from_bit_matrix` retains the packed
//! matrix inside the returned graph (it backs `neighbor_row`), so it
//! is output, not scratch.

use crate::block_edits::BlockEdits;
use lra_graph::BitSet;

/// Recyclable buffers for one worker's analyses. See the
/// [module docs](self).
#[derive(Default)]
pub struct AnalysisScratch {
    /// One live set for backward per-block sweeps (pressure,
    /// interference, call-crossing scans).
    pub(crate) live: BitSet,
    /// Worklist membership flags for the liveness solver.
    pub(crate) on_list: Vec<bool>,
    /// The liveness solver's worklist stack.
    pub(crate) stack: Vec<usize>,
    /// Per-value interval start points.
    pub(crate) starts: Vec<u32>,
    /// Per-value interval end points.
    pub(crate) ends: Vec<u32>,
    /// Recycled per-block transfer sets (upward-exposed uses).
    pub(crate) ue: Vec<Option<BitSet>>,
    /// Recycled per-block transfer sets (non-φ defs).
    pub(crate) defs: Vec<Option<BitSet>>,
    /// Recycled per-block transfer sets (φ defs).
    pub(crate) phi_defs: Vec<Option<BitSet>>,
    /// Recycled per-block transfer sets (φ uses charged to preds).
    pub(crate) phi_out: Vec<Option<BitSet>>,
    /// Recycled block-edit buffers for the per-round IR rewrites.
    pub(crate) edits: BlockEdits,
}

impl AnalysisScratch {
    /// An empty scratch. Buffers grow to the sizes of the functions
    /// analysed through it and are then reused.
    pub fn new() -> Self {
        AnalysisScratch::default()
    }

    /// The scratch live set, emptied and sized to `nv` values.
    pub(crate) fn live_for(&mut self, nv: usize) -> &mut BitSet {
        self.live.reset(nv);
        &mut self.live
    }

    /// The recycled block-edit buffers, emptied and sized to `n`
    /// blocks.
    pub(crate) fn edits_for(&mut self, n: usize) -> &mut BlockEdits {
        self.edits.reset(n);
        &mut self.edits
    }
}

/// Resets one recycled `Option<BitSet>` table to `n` entries whose
/// materialised sets hold `nv` values, keeping every allocation.
pub(crate) fn reset_local_table(table: &mut Vec<Option<BitSet>>, n: usize, nv: usize) {
    table.truncate(n);
    for set in table.iter_mut().flatten() {
        set.reset(nv);
    }
    table.resize_with(n, || None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_local_table_keeps_materialised_sets_empty_and_sized() {
        let mut table = vec![
            Some(BitSet::from_iter_with_capacity(10, [1, 7])),
            None,
            Some(BitSet::from_iter_with_capacity(10, [3])),
        ];
        reset_local_table(&mut table, 2, 4);
        assert_eq!(table.len(), 2);
        let s = table[0].as_ref().unwrap();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 4);
        assert!(table[1].is_none());
        reset_local_table(&mut table, 5, 8);
        assert_eq!(table.len(), 5);
        assert_eq!(table[0].as_ref().unwrap().capacity(), 8);
        assert!(table[4].is_none());
    }

    #[test]
    fn live_for_resizes_in_both_directions() {
        let mut s = AnalysisScratch::new();
        s.live_for(100).insert(99);
        let small = s.live_for(3);
        assert!(small.is_empty());
        assert_eq!(small.capacity(), 3);
    }
}
