//! Spill-everywhere code insertion.
//!
//! Given a set of spilled values, rewrite the function so that each
//! spilled value lives in memory: a [`Opcode::Store`] is inserted after
//! its definition and a fresh [`Opcode::Load`] value is inserted before
//! each use (φ uses reload at the end of the incoming predecessor).
//! The reload values are short-lived, which is how spilling lowers the
//! register pressure — the paper's §4.3 discusses exactly this residual
//! pressure of reloads.

#![allow(clippy::needless_range_loop)] // parallel arrays indexed by block id

use crate::cfg::{Function, Instr, Opcode, Value};
use crate::scratch::AnalysisScratch;
use lra_graph::BitSet;

/// Statistics of a spill-everywhere rewrite.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Stores inserted (one per definition of a spilled value).
    pub stores: usize,
    /// Reloads inserted (one per use of a spilled value).
    pub loads: usize,
    /// Materializations inserted instead of reloads (always 0 for the
    /// plain rewrites; see [`crate::remat::rewrite_spill_code_remat`]).
    pub remats: usize,
}

/// What a spill rewrite touched, in terms the incremental re-analysis
/// ([`crate::liveness::analyze_incremental`]) consumes.
#[derive(Clone, Debug)]
pub struct SpillDelta {
    /// Blocks whose instruction list differs from the input function
    /// (a use was remapped, or a load/store was inserted). Capacity =
    /// block count.
    pub dirty_blocks: BitSet,
    /// Values whose live ranges may have changed: the spilled originals
    /// plus every freshly inserted reload. Every occurrence of a
    /// changed value sits inside a dirty block. Capacity = the
    /// **rewritten** function's `value_count`.
    pub changed_values: BitSet,
}

impl SpillDelta {
    pub(crate) fn new(
        f: &Function,
        spilled: &BitSet,
        new_value_count: u32,
        dirty_blocks: BitSet,
    ) -> Self {
        let changed_values = BitSet::from_iter_with_capacity(
            new_value_count as usize,
            spilled
                .iter()
                .chain(f.value_count as usize..new_value_count as usize),
        );
        SpillDelta {
            dirty_blocks,
            changed_values,
        }
    }
}

/// The full result of a spill rewrite: the function, the insertion
/// statistics, the loads saved by reload sharing (0 on the plain
/// path), and the [`SpillDelta`] feeding incremental re-analysis.
#[derive(Clone, Debug)]
pub struct SpillRewrite {
    /// The rewritten function.
    pub function: Function,
    /// Stores/loads inserted.
    pub stats: SpillStats,
    /// Reloads saved relative to plain spill-everywhere (the §2.1
    /// load-store optimisation); always 0 for [`rewrite_spill_code`].
    pub saved_loads: usize,
    /// Which blocks and values the rewrite touched.
    pub delta: SpillDelta,
}

/// Rewrites `f`, spilling every value in `spilled`.
///
/// Returns the rewritten function and insertion statistics. The
/// rewritten function is in SSA form again if `f` was (each reload is a
/// fresh value used exactly once). Convenience wrapper around
/// [`rewrite_spill_code`] for callers that do not need the
/// [`SpillDelta`].
pub fn insert_spill_code(f: &Function, spilled: &BitSet) -> (Function, SpillStats) {
    let r = rewrite_spill_code(f, spilled);
    (r.function, r.stats)
}

/// Rewrites `f`, spilling every value in `spilled`, and reports which
/// blocks and values were touched so the next analysis round can be
/// incremental.
pub fn rewrite_spill_code(f: &Function, spilled: &BitSet) -> SpillRewrite {
    rewrite_spill_code_in(f, spilled, &mut AnalysisScratch::new())
}

/// [`rewrite_spill_code`] with caller-provided scratch for the
/// block-edit buffers; identical output.
pub fn rewrite_spill_code_in(
    f: &Function,
    spilled: &BitSet,
    scratch: &mut AnalysisScratch,
) -> SpillRewrite {
    let mut next_value = f.value_count;
    let mut stats = SpillStats::default();
    let mut fresh = || {
        let v = Value(next_value);
        next_value += 1;
        v
    };

    // New instruction lists per block; φ reloads append to predecessors,
    // so build bodies first then splice pred tails.
    let n = f.block_count();
    let edits = scratch.edits_for(n);
    let mut dirty = BitSet::new(n);

    for b in 0..n {
        // Stores for spilled φ defs must wait until after the whole φ
        // run (φs are parallel and must stay first in the block).
        for instr in &f.blocks[b].instrs {
            let mut instr = instr.clone();
            let is_phi = instr.opcode == Opcode::Phi;
            if is_phi {
                for (i, u) in instr.uses.iter_mut().enumerate() {
                    if spilled.contains(u.index()) {
                        let r = fresh();
                        stats.loads += 1;
                        let p = f.blocks[b].preds[i];
                        edits.tails[p.index()].push(Instr::new(Opcode::Load, Some(r), vec![]));
                        *u = r;
                        dirty.insert(b);
                        dirty.insert(p.index());
                    }
                }
            } else {
                edits.flush_phi_stores(b);
                for u in instr.uses.iter_mut() {
                    if spilled.contains(u.index()) {
                        let r = fresh();
                        stats.loads += 1;
                        edits.bodies[b].push(Instr::new(Opcode::Load, Some(r), vec![]));
                        *u = r;
                        dirty.insert(b);
                    }
                }
            }
            let def_spilled = instr.def.is_some_and(|d| spilled.contains(d.index()));
            let def = instr.def;
            edits.bodies[b].push(instr);
            if def_spilled {
                stats.stores += 1;
                dirty.insert(b);
                let store = Instr::new(Opcode::Store, None, vec![def.expect("spilled def")]);
                if is_phi {
                    edits.phi_stores.push(store);
                } else {
                    edits.bodies[b].push(store);
                }
            }
        }
        edits.flush_phi_stores(b);
    }

    let blocks = edits.finish(f);

    let mut out = Function {
        name: f.name.clone(),
        blocks,
        entry: f.entry,
        value_count: next_value,
        params: f.params.clone(),
    };
    out.recompute_preds();
    debug_assert_eq!(out.validate(), Ok(()));
    SpillRewrite {
        stats,
        saved_loads: 0,
        delta: SpillDelta::new(f, spilled, next_value, dirty),
        function: out,
    }
}

/// Convenience: spills `spilled` and reports the new `MaxLive`.
pub fn max_live_after_spilling(f: &Function, spilled: &BitSet) -> usize {
    let (g, _) = insert_spill_code(f, spilled);
    crate::liveness::analyze(&g).max_live
}

/// Spill-everywhere with the basic load-store optimisation of §2.1:
/// within a basic block, consecutive uses of the same spilled value
/// share one reload ("if the variable can stay in a register between
/// two consecutive uses, a load is saved"). Sound for SSA inputs
/// because the spill slot of an SSA value is written exactly once.
///
/// Returns the rewritten function, the insertion statistics, and the
/// number of loads saved relative to plain spill-everywhere.
/// Convenience wrapper around [`rewrite_spill_code_optimized`] for
/// callers that do not need the [`SpillDelta`].
pub fn insert_spill_code_optimized(
    f: &Function,
    spilled: &BitSet,
) -> (Function, SpillStats, usize) {
    let r = rewrite_spill_code_optimized(f, spilled);
    (r.function, r.stats, r.saved_loads)
}

/// [`rewrite_spill_code`] with the §2.1 shared-reload optimisation,
/// reporting the touched blocks and values for incremental
/// re-analysis.
pub fn rewrite_spill_code_optimized(f: &Function, spilled: &BitSet) -> SpillRewrite {
    rewrite_spill_code_optimized_in(f, spilled, &mut AnalysisScratch::new())
}

/// [`rewrite_spill_code_optimized`] with caller-provided scratch for
/// the block-edit buffers; identical output.
pub fn rewrite_spill_code_optimized_in(
    f: &Function,
    spilled: &BitSet,
    scratch: &mut AnalysisScratch,
) -> SpillRewrite {
    let mut next_value = f.value_count;
    let mut stats = SpillStats::default();
    let mut saved = 0usize;
    let fresh = |next_value: &mut u32| {
        let v = Value(*next_value);
        *next_value += 1;
        v
    };

    let n = f.block_count();
    let edits = scratch.edits_for(n);
    let mut dirty = BitSet::new(n);

    for b in 0..n {
        // spilled value -> reload already materialised in this block.
        edits.avail.clear();
        // Stores for spilled φ defs wait until after the φ run.
        for instr in &f.blocks[b].instrs {
            let mut instr = instr.clone();
            let is_phi = instr.opcode == Opcode::Phi;
            if is_phi {
                for (i, u) in instr.uses.iter_mut().enumerate() {
                    if spilled.contains(u.index()) {
                        let r = fresh(&mut next_value);
                        stats.loads += 1;
                        let p = f.blocks[b].preds[i];
                        edits.tails[p.index()].push(Instr::new(Opcode::Load, Some(r), vec![]));
                        *u = r;
                        dirty.insert(b);
                        dirty.insert(p.index());
                    }
                }
            } else {
                edits.flush_phi_stores(b);
                for u in instr.uses.iter_mut() {
                    if spilled.contains(u.index()) {
                        dirty.insert(b);
                        match edits.avail.get(u) {
                            Some(&r) => {
                                saved += 1;
                                *u = r;
                            }
                            None => {
                                let r = fresh(&mut next_value);
                                stats.loads += 1;
                                edits.bodies[b].push(Instr::new(Opcode::Load, Some(r), vec![]));
                                edits.avail.insert(*u, r);
                                *u = r;
                            }
                        }
                    }
                }
            }
            let def = instr.def;
            let def_spilled = def.is_some_and(|d| spilled.contains(d.index()));
            if def_spilled {
                // The freshly computed value is itself usable until the
                // end of the block.
                edits
                    .avail
                    .insert(def.expect("spilled def"), def.expect("spilled def"));
            }
            edits.bodies[b].push(instr);
            if def_spilled {
                stats.stores += 1;
                dirty.insert(b);
                let store = Instr::new(Opcode::Store, None, vec![def.expect("spilled def")]);
                if is_phi {
                    edits.phi_stores.push(store);
                } else {
                    edits.bodies[b].push(store);
                }
            }
        }
        edits.flush_phi_stores(b);
    }

    let blocks = edits.finish(f);
    let mut out = Function {
        name: f.name.clone(),
        blocks,
        entry: f.entry,
        value_count: next_value,
        params: f.params.clone(),
    };
    out.recompute_preds();
    debug_assert_eq!(out.validate(), Ok(()));
    SpillRewrite {
        stats,
        saved_loads: saved,
        delta: SpillDelta::new(f, spilled, next_value, dirty),
        function: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::liveness;

    /// Five values all live at once; spilling three of them drops the
    /// pressure to roughly two plus a reload.
    #[test]
    fn spilling_lowers_pressure() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let vs: Vec<Value> = (0..5).map(|_| b.op(e, &[])).collect();
        // Use them one per instruction so reloads stay short-lived.
        for v in &vs {
            b.op(e, &[*v]);
        }
        let f = b.finish();
        assert_eq!(liveness::analyze(&f).max_live, 5);

        let spilled = BitSet::from_iter_with_capacity(
            f.value_count as usize,
            vs[..3].iter().map(|v| v.index()),
        );
        let (g, stats) = insert_spill_code(&f, &spilled);
        assert_eq!(stats.stores, 3);
        assert_eq!(stats.loads, 3);
        let live_after = liveness::analyze(&g).max_live;
        assert!(live_after < 5, "pressure {live_after} should drop below 5");
    }

    #[test]
    fn reloads_are_fresh_single_use_values() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        b.op(e, &[x]);
        b.op(e, &[x]);
        let f = b.finish();
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [x.index()]);
        let (g, stats) = insert_spill_code(&f, &spilled);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.loads, 2);
        assert_eq!(g.value_count, f.value_count + 2);
        // x itself is no longer used by any non-store instruction.
        for blk in &g.blocks {
            for instr in &blk.instrs {
                if instr.opcode != Opcode::Store {
                    assert!(!instr.uses.contains(&x));
                }
            }
        }
    }

    #[test]
    fn phi_use_reloads_in_predecessor() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        let xl = b.op(l, &[]);
        let xr = b.op(r, &[]);
        let m = b.phi(j, &[xl, xr]);
        b.op(j, &[m]);
        let f = b.finish();
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [xl.index()]);
        let (g, stats) = insert_spill_code(&f, &spilled);
        assert_eq!(stats.loads, 1);
        // The reload lands at the end of `l`, not in the join block.
        let last_in_l = g.blocks[l.index()].instrs.last().unwrap();
        assert_eq!(last_in_l.opcode, Opcode::Load);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn spilling_nothing_is_identity_shaped() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        b.op(e, &[x]);
        let f = b.finish();
        let (g, stats) = insert_spill_code(&f, &BitSet::new(f.value_count as usize));
        assert_eq!(stats, SpillStats::default());
        assert_eq!(g.instr_count(), f.instr_count());
        assert_eq!(g.value_count, f.value_count);
    }

    #[test]
    fn optimized_spilling_shares_reloads_within_a_block() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let next = b.block();
        b.set_succs(e, &[next]);
        let x = b.op(e, &[]);
        b.op(e, &[x]);
        b.op(e, &[x]); // same block: reload shared
        b.op(next, &[x]); // new block: fresh reload
        let f = b.finish();
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [x.index()]);

        let (_, plain_stats) = insert_spill_code(&f, &spilled);
        assert_eq!(plain_stats.loads, 3);

        let (g, opt_stats, saved) = insert_spill_code_optimized(&f, &spilled);
        // Uses in the defining block reuse x's register directly; the
        // second block needs the only real reload.
        assert_eq!(opt_stats.loads, 1);
        assert_eq!(saved, 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn optimized_spilling_reuses_the_defining_value() {
        // Uses of a spilled value in its *defining* block need no
        // reload at all: the value is still in its register.
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        b.op(e, &[x]);
        b.op(e, &[x]);
        let f = b.finish();
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [x.index()]);
        let (g, stats, saved) = insert_spill_code_optimized(&f, &spilled);
        assert_eq!(stats.loads, 0);
        assert_eq!(stats.stores, 1);
        assert_eq!(saved, 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn optimized_never_inserts_more_than_plain() {
        use crate::genprog::{random_ssa_function, SsaConfig};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let f = random_ssa_function(&mut rng, &SsaConfig::default(), "f");
        // Spill every other value.
        let spilled = BitSet::from_iter_with_capacity(
            f.value_count as usize,
            (0..f.value_count as usize).filter(|v| v % 2 == 0),
        );
        let (_, plain) = insert_spill_code(&f, &spilled);
        let (g, opt, saved) = insert_spill_code_optimized(&f, &spilled);
        assert_eq!(opt.stores, plain.stores);
        assert_eq!(opt.loads + saved, plain.loads);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn delta_reports_dirty_blocks_and_changed_values() {
        // Diamond with a φ: spilling a φ use dirties the join block
        // (the φ's use list changed) AND the predecessor that received
        // the tail reload — and nothing else.
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        let xl = b.op(l, &[]);
        let xr = b.op(r, &[]);
        let m = b.phi(j, &[xl, xr]);
        b.op(j, &[m]);
        let f = b.finish();
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [xl.index()]);
        let rw = rewrite_spill_code(&f, &spilled);
        let dirty: Vec<usize> = rw.delta.dirty_blocks.iter().collect();
        assert_eq!(dirty, vec![l.index(), j.index()]);
        // Changed values: the spilled original plus the one reload.
        assert_eq!(rw.function.value_count, f.value_count + 1);
        assert_eq!(
            rw.delta.changed_values.iter().collect::<Vec<_>>(),
            vec![xl.index(), f.value_count as usize]
        );
        assert_eq!(
            rw.delta.changed_values.capacity(),
            rw.function.value_count as usize
        );
    }

    #[test]
    fn delta_every_changed_value_occurrence_is_in_a_dirty_block() {
        // The contract analyze_incremental relies on, checked over
        // random functions and spill sets for both rewrite flavours.
        use crate::genprog::{random_jit_function, JitConfig};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        for optimized in [false, true] {
            let f = random_jit_function(&mut rng, &JitConfig::default(), "f");
            let spilled = BitSet::from_iter_with_capacity(
                f.value_count as usize,
                (0..f.value_count as usize).filter(|v| v % 3 == 0),
            );
            let rw = if optimized {
                rewrite_spill_code_optimized(&f, &spilled)
            } else {
                rewrite_spill_code(&f, &spilled)
            };
            for (b, blk) in rw.function.blocks.iter().enumerate() {
                if rw.delta.dirty_blocks.contains(b) {
                    continue;
                }
                // Clean block: instruction list byte-identical, no
                // occurrence of any changed value.
                assert_eq!(blk.instrs, f.blocks[b].instrs, "block {b} silently changed");
                for instr in &blk.instrs {
                    for v in instr.def.iter().chain(instr.uses.iter()) {
                        assert!(
                            !rw.delta.changed_values.contains(v.index()),
                            "changed value {v} in clean block {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wrappers_match_the_delta_reporting_path() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        b.op(e, &[x]);
        b.op(e, &[x]);
        let f = b.finish();
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [x.index()]);
        let (g1, s1) = insert_spill_code(&f, &spilled);
        let rw = rewrite_spill_code(&f, &spilled);
        assert_eq!(g1, rw.function);
        assert_eq!(s1, rw.stats);
        assert_eq!(rw.saved_loads, 0);
        let (g2, s2, saved) = insert_spill_code_optimized(&f, &spilled);
        let rwo = rewrite_spill_code_optimized(&f, &spilled);
        assert_eq!(g2, rwo.function);
        assert_eq!(s2, rwo.stats);
        assert_eq!(saved, rwo.saved_loads);
    }

    #[test]
    fn max_live_after_spilling_everything_is_small() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let vs: Vec<Value> = (0..6).map(|_| b.op(e, &[])).collect();
        b.op(e, &vs); // one instruction using all six at once
        let f = b.finish();
        let all =
            BitSet::from_iter_with_capacity(f.value_count as usize, vs.iter().map(|v| v.index()));
        // All six reloads feed one instruction, so the reloads themselves
        // are simultaneously live: pressure = 6 at that point, but the
        // original long ranges are gone elsewhere.
        let ml = max_live_after_spilling(&f, &all);
        assert!(ml >= 6); // spill-everywhere cannot fix single-instruction pressure
    }
}
