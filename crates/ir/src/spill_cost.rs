//! Static spill-cost estimation.
//!
//! Following the paper's methodology, the spill cost of a variable is
//! computed "based on the basic blocks' frequency and on the number of
//! accesses to the variables within the basic blocks": spilling a
//! variable everywhere costs one store after its definition plus one
//! load before each use, each weighted by the static frequency of the
//! enclosing block and by the target's memory-access costs. Values live
//! across calls receive the ABI multiplier (they would otherwise occupy
//! a callee-saved register).

#![allow(clippy::needless_range_loop)] // parallel arrays indexed by block id

use crate::cfg::{Function, Opcode};
use crate::liveness::{self, Liveness};
use crate::loops::LoopInfo;
use lra_graph::Cost;
use lra_targets::Target;

/// Computes the spill-everywhere cost of each value of `f`.
///
/// `cost[v] = Σ_defs store × freq(block) + Σ_uses load × freq(block)`,
/// where φ uses count at the frequency of the incoming predecessor,
/// multiplied by the target's call-crossing penalty when `v` is live
/// across a call. Every value gets cost ≥ 1 so that spilling is never
/// free.
pub fn spill_costs(f: &Function, live: &Liveness, loops: &LoopInfo, target: &Target) -> Vec<Cost> {
    let nv = f.value_count as usize;
    let mut cost: Vec<Cost> = vec![0; nv];

    for b in f.block_ids() {
        let freq = loops.frequency(b);
        let block = f.block(b);
        for instr in &block.instrs {
            if let Some(d) = instr.def {
                cost[d.index()] =
                    cost[d.index()].saturating_add(target.store_cost().saturating_mul(freq));
            }
            if instr.opcode == Opcode::Phi {
                for (i, u) in instr.uses.iter().enumerate() {
                    // A reload for a φ use is inserted at the end of the
                    // corresponding predecessor.
                    let pf = loops.frequency(block.preds[i]);
                    cost[u.index()] =
                        cost[u.index()].saturating_add(target.load_cost().saturating_mul(pf));
                }
            } else {
                for u in &instr.uses {
                    cost[u.index()] =
                        cost[u.index()].saturating_add(target.load_cost().saturating_mul(freq));
                }
            }
        }
    }

    // Parameters arrive in registers; spilling one costs a store at
    // entry frequency.
    for p in &f.params {
        cost[p.index()] = cost[p.index()].saturating_add(target.store_cost());
    }

    let crossing = liveness::live_across_calls(f, live);
    for v in 0..nv {
        if crossing.contains(v) {
            cost[v] = cost[v].saturating_mul(target.call_crossing_multiplier());
        }
        cost[v] = cost[v].max(1);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::dom::DomTree;
    use lra_targets::TargetKind;

    fn analyse(f: &Function) -> (Liveness, LoopInfo) {
        let live = liveness::analyze(f);
        let dom = DomTree::compute(f);
        let loops = LoopInfo::compute(f, &dom);
        (live, loops)
    }

    #[test]
    fn uses_in_loops_cost_more() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let cold = b.op(e, &[]);
        let hot = b.op(e, &[]);
        let h = b.block();
        let body = b.block();
        let exit = b.block();
        b.set_succs(e, &[h]);
        b.set_succs(h, &[body, exit]);
        b.set_succs(body, &[h]);
        b.op(body, &[hot]); // used in the loop
        b.op(exit, &[cold, hot]); // both used once outside
        let f = b.finish();
        let (live, loops) = analyse(&f);
        let t = Target::new(TargetKind::St231);
        let costs = spill_costs(&f, &live, &loops, &t);
        assert!(
            costs[hot.index()] > costs[cold.index()],
            "hot {} should exceed cold {}",
            costs[hot.index()],
            costs[cold.index()]
        );
    }

    #[test]
    fn every_value_costs_at_least_one() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let dead = b.op(e, &[]);
        let f = b.finish();
        let (live, loops) = analyse(&f);
        let t = Target::new(TargetKind::St231);
        let costs = spill_costs(&f, &live, &loops, &t);
        assert!(costs[dead.index()] >= 1);
    }

    #[test]
    fn call_crossing_penalised() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let crossing = b.op(e, &[]);
        let local = b.op(e, &[]);
        b.op(e, &[local]); // local dies before the call
        b.call(e, &[]);
        b.op(e, &[crossing]);
        let f = b.finish();
        let (live, loops) = analyse(&f);
        let t = Target::new(TargetKind::St231);
        let costs = spill_costs(&f, &live, &loops, &t);
        // Same def/use profile (1 def + 1 use at depth 0), but crossing
        // is multiplied by the ABI factor.
        assert_eq!(
            costs[crossing.index()],
            costs[local.index()] * t.call_crossing_multiplier()
        );
    }

    #[test]
    fn phi_uses_charged_at_predecessor_frequency() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let init = b.op(e, &[]);
        let h = b.block();
        let body = b.block();
        let exit = b.block();
        b.set_succs(e, &[h]);
        b.set_succs(h, &[body, exit]);
        b.set_succs(body, &[h]);
        let carried = b.phi(h, &[init, init]);
        let next = b.op(body, &[carried]);
        b.patch_phi_arg(h, carried, 1, next);
        b.op(exit, &[carried]);
        let f = b.finish();
        let (live, loops) = analyse(&f);
        let t = Target::new(TargetKind::St231);
        let costs = spill_costs(&f, &live, &loops, &t);
        // `next` is used only by the φ, via the back edge at loop
        // frequency: cost ≥ store(body freq) + load(body freq).
        let freq = loops.frequency(body);
        assert!(costs[next.index()] >= (t.store_cost() + t.load_cost()) * freq);
    }
}
