//! Static spill-cost estimation.
//!
//! Following the paper's methodology, the spill cost of a variable is
//! computed "based on the basic blocks' frequency and on the number of
//! accesses to the variables within the basic blocks": spilling a
//! variable everywhere costs one store after its definition plus one
//! load before each use, each weighted by the static frequency of the
//! enclosing block and by the target's memory-access costs. Values live
//! across calls receive the ABI multiplier (they would otherwise occupy
//! a callee-saved register).

#![allow(clippy::needless_range_loop)] // parallel arrays indexed by block id

use crate::cfg::{Function, Opcode};
use crate::liveness::{self, Liveness};
use crate::loops::LoopInfo;
use lra_graph::Cost;
use lra_targets::Target;

/// Computes the spill-everywhere cost of each value of `f`.
///
/// `cost[v] = Σ_defs store × freq(block) + Σ_uses load × freq(block)`,
/// where φ uses count at the frequency of the incoming predecessor,
/// multiplied by the target's call-crossing penalty when `v` is live
/// across a call. Every value gets cost ≥ 1 so that spilling is never
/// free.
pub fn spill_costs(f: &Function, live: &Liveness, loops: &LoopInfo, target: &Target) -> Vec<Cost> {
    let nv = f.value_count as usize;
    let mut cost: Vec<Cost> = vec![0; nv];

    for b in f.block_ids() {
        let freq = loops.frequency(b);
        let block = f.block(b);
        for instr in &block.instrs {
            if let Some(d) = instr.def {
                cost[d.index()] =
                    cost[d.index()].saturating_add(target.store_cost().saturating_mul(freq));
            }
            if instr.opcode == Opcode::Phi {
                for (i, u) in instr.uses.iter().enumerate() {
                    // A reload for a φ use is inserted at the end of the
                    // corresponding predecessor.
                    let pf = loops.frequency(block.preds[i]);
                    cost[u.index()] =
                        cost[u.index()].saturating_add(target.load_cost().saturating_mul(pf));
                }
            } else {
                for u in &instr.uses {
                    cost[u.index()] =
                        cost[u.index()].saturating_add(target.load_cost().saturating_mul(freq));
                }
            }
        }
    }

    // Parameters arrive in registers; spilling one costs a store at
    // entry frequency.
    for p in &f.params {
        cost[p.index()] = cost[p.index()].saturating_add(target.store_cost());
    }

    let crossing = liveness::live_across_calls(f, live);
    for v in 0..nv {
        if crossing.contains(v) {
            cost[v] = cost[v].saturating_mul(target.call_crossing_multiplier());
        }
        cost[v] = cost[v].max(1);
    }
    cost
}

/// [`spill_costs`] with rematerialization discounts — the vector fed
/// to the allocator as *guidance*: a value the `remat` table
/// classifies [`RematClass::Const`](crate::remat::RematClass) never
/// touches memory when evicted, so its cost is one
/// [`Target::remat_cost`] per use (φ uses at the predecessor's
/// frequency) — no store at the definition and **no call-crossing
/// multiplier**, because a constant needs no callee-saved register:
/// it is simply re-issued after the call.
///
/// [`RematClass::Reload`](crate::remat::RematClass) values keep their
/// full [`spill_costs`] estimate here, deliberately: a reload sits
/// directly before its use, so evicting it cannot lower pressure —
/// its re-issue lands in the very same place. Discounting reloads
/// steers the allocator into those futile evictions and the spill
/// loop stops converging; the cheap re-issue is instead reflected in
/// the *accounting* vector, [`spill_insert_costs`]. Non-remat values
/// keep their [`spill_costs`] estimate unchanged.
pub fn spill_costs_with_remat(
    f: &Function,
    live: &Liveness,
    loops: &LoopInfo,
    target: &Target,
    remat: &crate::remat::RematTable,
) -> Vec<Cost> {
    use crate::remat::RematClass;
    let mut cost = discounted_costs(f, live, loops, target, |v| match remat.class(v) {
        RematClass::Const => Some(target.remat_cost()),
        RematClass::Spill | RematClass::Reload => None,
    });
    // Evicting a point range — a split copy or an unshared reload,
    // which lives only from the instruction directly before its single
    // use — cannot lower pressure: its replacement re-issue occupies
    // the very same program point. Steer allocators away from those
    // futile evictions and towards ranges whose eviction actually
    // shortens something.
    let nv = f.value_count as usize;
    let mut defs = vec![0u32; nv];
    let mut uses = vec![0u32; nv];
    let mut point_def = vec![false; nv];
    for block in &f.blocks {
        for instr in &block.instrs {
            if let Some(d) = instr.def {
                defs[d.index()] += 1;
                point_def[d.index()] = matches!(instr.opcode, Opcode::Copy | Opcode::Load);
            }
            for u in &instr.uses {
                uses[u.index()] += 1;
            }
        }
    }
    for v in 0..nv {
        if point_def[v] && defs[v] == 1 && uses[v] == 1 {
            cost[v] = cost[v].saturating_mul(POINT_RANGE_PENALTY);
        }
    }
    cost
}

/// Guidance multiplier applied by [`spill_costs_with_remat`] to
/// single-def single-use values defined by a copy or a load: their
/// live range spans one instruction, so evicting them cannot lower
/// pressure and the spill budget is better spent on real ranges.
const POINT_RANGE_PENALTY: Cost = 16;

/// The cost of the spill code the remat-aware rewrite **actually
/// inserts** when a value is evicted — the per-round accounting
/// vector:
///
/// * [`RematClass::Spill`](crate::remat::RematClass): identical to
///   [`spill_costs`] (a store plus a load per use is exactly what the
///   rewrite emits; the call-crossing multiplier stays as the same
///   callee-saved proxy the base loop charges),
/// * [`RematClass::Const`](crate::remat::RematClass): one
///   [`Target::remat_cost`] per use — the eviction is rewritten as
///   re-issues of the defining instruction, no memory traffic,
/// * [`RematClass::Reload`](crate::remat::RematClass): one
///   [`Target::load_cost`] per use — the eviction re-issues the load
///   from the origin's already-written slot, so there is no second
///   store and no callee-saved register across calls.
///
/// [`spill_costs_with_remat`] is the matching *guidance* vector; see
/// its docs for why the two deliberately differ on reloads.
pub fn spill_insert_costs(
    f: &Function,
    live: &Liveness,
    loops: &LoopInfo,
    target: &Target,
    remat: &crate::remat::RematTable,
) -> Vec<Cost> {
    use crate::remat::RematClass;
    discounted_costs(f, live, loops, target, |v| match remat.class(v) {
        RematClass::Const => Some(target.remat_cost()),
        RematClass::Reload => Some(target.load_cost()),
        RematClass::Spill => None,
    })
}

/// Shared walk for the remat-aware vectors: values for which `per_use`
/// yields a price are charged that price per use (φ uses at the
/// predecessor's frequency), no store and no call-crossing multiplier;
/// the rest keep their [`spill_costs`] estimate.
fn discounted_costs(
    f: &Function,
    live: &Liveness,
    loops: &LoopInfo,
    target: &Target,
    per_use: impl Fn(usize) -> Option<Cost>,
) -> Vec<Cost> {
    let mut cost = spill_costs(f, live, loops, target);
    let nv = f.value_count as usize;
    let mut discounted: Vec<Cost> = vec![0; nv];
    let mut has_discount = vec![false; nv];
    for v in 0..nv {
        has_discount[v] = per_use(v).is_some();
    }
    for b in f.block_ids() {
        let freq = loops.frequency(b);
        let block = f.block(b);
        for instr in &block.instrs {
            if instr.opcode == Opcode::Phi {
                for (i, u) in instr.uses.iter().enumerate() {
                    if let Some(c) = per_use(u.index()) {
                        let pf = loops.frequency(block.preds[i]);
                        discounted[u.index()] =
                            discounted[u.index()].saturating_add(c.saturating_mul(pf));
                    }
                }
            } else {
                for u in &instr.uses {
                    if let Some(c) = per_use(u.index()) {
                        discounted[u.index()] =
                            discounted[u.index()].saturating_add(c.saturating_mul(freq));
                    }
                }
            }
        }
    }
    for v in 0..nv {
        if has_discount[v] {
            cost[v] = discounted[v].max(1);
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::dom::DomTree;
    use lra_targets::TargetKind;

    fn analyse(f: &Function) -> (Liveness, LoopInfo) {
        let live = liveness::analyze(f);
        let dom = DomTree::compute(f);
        let loops = LoopInfo::compute(f, &dom);
        (live, loops)
    }

    #[test]
    fn uses_in_loops_cost_more() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let cold = b.op(e, &[]);
        let hot = b.op(e, &[]);
        let h = b.block();
        let body = b.block();
        let exit = b.block();
        b.set_succs(e, &[h]);
        b.set_succs(h, &[body, exit]);
        b.set_succs(body, &[h]);
        b.op(body, &[hot]); // used in the loop
        b.op(exit, &[cold, hot]); // both used once outside
        let f = b.finish();
        let (live, loops) = analyse(&f);
        let t = Target::new(TargetKind::St231);
        let costs = spill_costs(&f, &live, &loops, &t);
        assert!(
            costs[hot.index()] > costs[cold.index()],
            "hot {} should exceed cold {}",
            costs[hot.index()],
            costs[cold.index()]
        );
    }

    #[test]
    fn every_value_costs_at_least_one() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let dead = b.op(e, &[]);
        let f = b.finish();
        let (live, loops) = analyse(&f);
        let t = Target::new(TargetKind::St231);
        let costs = spill_costs(&f, &live, &loops, &t);
        assert!(costs[dead.index()] >= 1);
    }

    #[test]
    fn call_crossing_penalised() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let crossing = b.op(e, &[]);
        let local = b.op(e, &[]);
        b.op(e, &[local]); // local dies before the call
        b.call(e, &[]);
        b.op(e, &[crossing]);
        let f = b.finish();
        let (live, loops) = analyse(&f);
        let t = Target::new(TargetKind::St231);
        let costs = spill_costs(&f, &live, &loops, &t);
        // Same def/use profile (1 def + 1 use at depth 0), but crossing
        // is multiplied by the ABI factor.
        assert_eq!(
            costs[crossing.index()],
            costs[local.index()] * t.call_crossing_multiplier()
        );
    }

    #[test]
    fn remat_values_cost_one_issue_per_use() {
        use crate::remat::RematTable;
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let k = b.op(e, &[]); // constant: remat-able
        let y = b.op(e, &[k]); // computation: not
        b.call(e, &[]);
        b.op(e, &[k, y]); // both live across the call
        let f = b.finish();
        let (live, loops) = analyse(&f);
        let t = Target::new(TargetKind::St231);
        let remat = RematTable::compute(&f);
        let plain = spill_costs(&f, &live, &loops, &t);
        let discounted = spill_costs_with_remat(&f, &live, &loops, &t, &remat);
        // k: 2 uses × remat_cost, no store, no ABI multiplier.
        assert_eq!(discounted[k.index()], 2 * t.remat_cost());
        assert!(discounted[k.index()] < plain[k.index()]);
        // y keeps its spill-everywhere estimate.
        assert_eq!(discounted[y.index()], plain[y.index()]);
    }

    #[test]
    fn reloads_account_at_one_load_per_use_but_guide_at_full_price() {
        use crate::remat::RematTable;
        use lra_graph::BitSet;
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        let y = b.op(e, &[x]);
        b.call(e, &[]);
        b.op(e, &[y]); // y lives across the call
        let f = b.finish();
        let spilled = BitSet::from_iter_with_capacity(f.value_count as usize, [y.index()]);
        let mut table = RematTable::compute(&f);
        let rw = crate::remat::rewrite_spill_code_remat(&f, &spilled, &mut table, false);
        // The rewrite introduced one reload of y, tagged Reload.
        let reload = f.value_count as usize;
        assert_eq!(rw.function.value_count as usize, reload + 1);
        assert_eq!(table.class(reload), crate::remat::RematClass::Reload);
        let (live, loops) = analyse(&rw.function);
        let t = Target::new(TargetKind::St231);
        let plain = spill_costs(&rw.function, &live, &loops, &t);
        let accounted = spill_insert_costs(&rw.function, &live, &loops, &t, &table);
        let guidance = spill_costs_with_remat(&rw.function, &live, &loops, &t, &table);
        // Accounting: evicting the reload re-issues one load from y's
        // slot — no store, no call-crossing multiplier.
        assert_eq!(accounted[reload], t.load_cost());
        assert!(accounted[reload] < plain[reload]);
        // Guidance: the reload is a point range whose eviction cannot
        // lower pressure, so the allocator sees it above full price.
        assert!(
            guidance[reload] > plain[reload],
            "guidance {} must discourage futile reload evictions (plain {})",
            guidance[reload],
            plain[reload]
        );
    }

    #[test]
    fn single_use_copies_are_penalised_in_guidance_only() {
        use crate::remat::RematTable;
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let k = b.op(e, &[]);
        // `x` has an operand so it classifies as Spill, not Const.
        let x = b.op(e, &[k]);
        let c = b.copy(e, x);
        b.op(e, &[c]);
        let f = b.finish();
        let (live, loops) = analyse(&f);
        let t = Target::new(TargetKind::St231);
        let table = RematTable::compute(&f);
        let plain = spill_costs(&f, &live, &loops, &t);
        let guidance = spill_costs_with_remat(&f, &live, &loops, &t, &table);
        let accounted = spill_insert_costs(&f, &live, &loops, &t, &table);
        assert_eq!(guidance[c.index()], plain[c.index()] * POINT_RANGE_PENALTY);
        assert_eq!(accounted[c.index()], plain[c.index()]);
        // x is a real range: same price everywhere.
        assert_eq!(guidance[x.index()], plain[x.index()]);
        assert_eq!(accounted[x.index()], plain[x.index()]);
    }

    #[test]
    fn phi_uses_charged_at_predecessor_frequency() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let init = b.op(e, &[]);
        let h = b.block();
        let body = b.block();
        let exit = b.block();
        b.set_succs(e, &[h]);
        b.set_succs(h, &[body, exit]);
        b.set_succs(body, &[h]);
        let carried = b.phi(h, &[init, init]);
        let next = b.op(body, &[carried]);
        b.patch_phi_arg(h, carried, 1, next);
        b.op(exit, &[carried]);
        let f = b.finish();
        let (live, loops) = analyse(&f);
        let t = Target::new(TargetKind::St231);
        let costs = spill_costs(&f, &live, &loops, &t);
        // `next` is used only by the φ, via the back edge at loop
        // frequency: cost ≥ store(body freq) + load(body freq).
        let freq = loops.frequency(body);
        assert!(costs[next.index()] >= (t.store_cost() + t.load_cost()) * freq);
    }
}
