//! Live-range splitting: from spill-everywhere to load-store optimisation.
//!
//! Section 2.1 of the paper observes that the Appel–George "a variable
//! is in memory or in register but not both" formulation *is* spill
//! everywhere on a program whose **live ranges are split at every use**
//! (item 3), and that a spill-everywhere solution serves as an oracle
//! for the finer-grained load-store optimisation problem (item 4).
//!
//! [`split_at_uses`] performs that transformation: before every use of
//! a value a fresh [`Opcode::Copy`] is inserted and the use is rewritten
//! to the copy. Each original value then carries only the *connector*
//! range (def to last copy); each copy is a short single-use range.
//! Spilling a connector while keeping its copies in registers is
//! exactly "store once, reload before each use" — the allocator now
//! decides load-store placement through ordinary spill-everywhere
//! choices. The inserted copies are φ-free, so strict SSA (and hence
//! chordality of the interference graph) is preserved.

#![allow(clippy::needless_range_loop)] // parallel arrays indexed by block id

use crate::cfg::{Block, Function, Instr, Opcode, Value};

/// Result of [`split_at_uses`].
#[derive(Clone, Debug)]
pub struct SplitFunction {
    /// The rewritten function.
    pub function: Function,
    /// For every new value: the original value it was split from
    /// (identity for the originals). Indexed by value.
    pub origin: Vec<Value>,
    /// Number of copies inserted.
    pub copies: usize,
}

/// Splits every live range at each of its uses.
///
/// φ uses are split at the tail of the incoming predecessor (the same
/// placement spill reloads would take). Uses that are already copies
/// are left alone to keep the transformation idempotent-ish.
pub fn split_at_uses(f: &Function) -> SplitFunction {
    let mut next = f.value_count;
    let mut origin: Vec<Value> = (0..f.value_count).map(Value).collect();
    let mut copies = 0usize;
    let mut fresh = |of: Value, origin: &mut Vec<Value>| {
        let v = Value(next);
        next += 1;
        origin.push(of);
        v
    };

    let n = f.block_count();
    let mut new_instrs: Vec<Vec<Instr>> = vec![Vec::new(); n];
    let mut pred_tail: Vec<Vec<Instr>> = vec![Vec::new(); n];

    for b in 0..n {
        for instr in &f.blocks[b].instrs {
            let mut instr = instr.clone();
            match instr.opcode {
                Opcode::Phi => {
                    for (i, u) in instr.uses.iter_mut().enumerate() {
                        let s = fresh(origin[u.index()], &mut origin);
                        copies += 1;
                        let p = f.blocks[b].preds[i];
                        pred_tail[p.index()].push(Instr::new(Opcode::Copy, Some(s), vec![*u]));
                        *u = s;
                    }
                }
                Opcode::Copy => {} // already a split point
                _ => {
                    for u in instr.uses.iter_mut() {
                        let s = fresh(origin[u.index()], &mut origin);
                        copies += 1;
                        new_instrs[b].push(Instr::new(Opcode::Copy, Some(s), vec![*u]));
                        *u = s;
                    }
                }
            }
            new_instrs[b].push(instr);
        }
    }

    let blocks: Vec<Block> = (0..n)
        .map(|b| {
            let mut instrs = std::mem::take(&mut new_instrs[b]);
            instrs.append(&mut pred_tail[b]);
            Block {
                instrs,
                succs: f.blocks[b].succs.clone(),
                preds: Vec::new(),
            }
        })
        .collect();
    let mut function = Function {
        name: format!("{}.split", f.name),
        blocks,
        entry: f.entry,
        value_count: next,
        params: f.params.clone(),
    };
    function.recompute_preds();
    debug_assert_eq!(function.validate(), Ok(()));
    SplitFunction {
        function,
        origin,
        copies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::genprog::{random_ssa_function, validate_strict_ssa, SsaConfig};
    use crate::{interference, liveness};
    use lra_graph::peo;
    use rand::SeedableRng;

    #[test]
    fn splits_every_use() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        b.op(e, &[x]);
        b.op(e, &[x]);
        let f = b.finish();
        let s = split_at_uses(&f);
        assert_eq!(s.copies, 2);
        assert_eq!(s.function.value_count, f.value_count + 2);
        validate_strict_ssa(&s.function).expect("still strict SSA");
        // Every split value maps back to x.
        for v in f.value_count..s.function.value_count {
            assert_eq!(s.origin[v as usize], x);
        }
    }

    #[test]
    fn phi_uses_split_in_predecessor() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        let xl = b.op(l, &[]);
        let xr = b.op(r, &[]);
        let m = b.phi(j, &[xl, xr]);
        b.op(j, &[m]);
        let f = b.finish();
        let s = split_at_uses(&f);
        validate_strict_ssa(&s.function).expect("strict SSA");
        // The copy for xl sits at the end of block l.
        let last = s.function.blocks[l.index()].instrs.last().unwrap();
        assert_eq!(last.opcode, Opcode::Copy);
        assert_eq!(last.uses, vec![xl]);
    }

    #[test]
    fn split_functions_stay_chordal() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for _ in 0..8 {
            let f = random_ssa_function(&mut rng, &SsaConfig::default(), "f");
            let s = split_at_uses(&f);
            validate_strict_ssa(&s.function).expect("strict SSA");
            let live = liveness::analyze(&s.function);
            let g = interference::interference_graph(&s.function, &live);
            assert!(peo::is_chordal(&g));
        }
    }

    #[test]
    fn splitting_cannot_raise_pressure_beyond_one_instruction() {
        // Splitting shortens the original ranges, but the copies it
        // inserts for one instruction's operands are simultaneously
        // live right before that instruction (and φ copies stack at
        // block ends), so MaxLive can rise by a small constant bounded
        // by the operand count of a single instruction — never by a
        // function-sized amount. The generator emits at most two
        // operands per instruction.
        for seed in [1u64, 3, 9, 16, 29] {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let cfg = SsaConfig {
                target_instrs: 120,
                liveness_window: 20,
                ..SsaConfig::default()
            };
            let f = random_ssa_function(&mut rng, &cfg, "f");
            let before = liveness::analyze(&f).max_live;
            let s = split_at_uses(&f);
            let after = liveness::analyze(&s.function).max_live;
            assert!(
                after <= before + 2,
                "seed {seed}: splitting raised MaxLive {before} -> {after}"
            );
        }
    }

    #[test]
    fn existing_copies_are_not_resplit() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        let c = b.copy(e, x);
        b.op(e, &[c]);
        let f = b.finish();
        let s = split_at_uses(&f);
        // Only the final use is split; the copy's own use stays.
        assert_eq!(s.copies, 1);
    }
}
