//! Live-range splitting: from spill-everywhere to load-store optimisation.
//!
//! Section 2.1 of the paper observes that the Appel–George "a variable
//! is in memory or in register but not both" formulation *is* spill
//! everywhere on a program whose **live ranges are split at every use**
//! (item 3), and that a spill-everywhere solution serves as an oracle
//! for the finer-grained load-store optimisation problem (item 4).
//!
//! [`split_at_uses`] performs that transformation: before every use of
//! a value a fresh [`Opcode::Copy`] is inserted and the use is rewritten
//! to the copy. Each original value then carries only the *connector*
//! range (def to last copy); each copy is a short single-use range.
//! Spilling a connector while keeping its copies in registers is
//! exactly "store once, reload before each use" — the allocator now
//! decides load-store placement through ordinary spill-everywhere
//! choices. The inserted copies are φ-free, so strict SSA (and hence
//! chordality of the interference graph) is preserved.

//!
//! [`split_pressure_ranges`] is the targeted variant the pipeline's
//! escalation tier uses: it splits only the values that are live across
//! the boundary of an **over-pressure** block (`block_max_live > R`),
//! so the long ranges binding a stall point become several short,
//! independently-spillable ones while the rest of the function keeps
//! its original ranges (and its original spill costs).

#![allow(clippy::needless_range_loop)] // parallel arrays indexed by block id

use crate::cfg::{Function, Instr, Opcode, Value};
use crate::liveness::Liveness;
use crate::scratch::AnalysisScratch;
use lra_graph::BitSet;

/// Result of [`split_at_uses`].
#[derive(Clone, Debug)]
pub struct SplitFunction {
    /// The rewritten function.
    pub function: Function,
    /// For every new value: the original value it was split from
    /// (identity for the originals). Indexed by value.
    pub origin: Vec<Value>,
    /// Number of copies inserted.
    pub copies: usize,
}

/// Splits every live range at each of its uses.
///
/// φ uses are split at the tail of the incoming predecessor (the same
/// placement spill reloads would take). Uses that are already copies
/// are left alone to keep the transformation idempotent-ish.
pub fn split_at_uses(f: &Function) -> SplitFunction {
    split_uses_where(f, |_| true, &mut AnalysisScratch::new())
}

/// [`split_at_uses`] with caller-provided scratch for the block-edit
/// buffers; identical output.
pub fn split_at_uses_in(f: &Function, scratch: &mut AnalysisScratch) -> SplitFunction {
    split_uses_where(f, |_| true, scratch)
}

/// Splits the live ranges binding a stall point: every use of a value
/// that is live into or out of a block whose maximum pressure exceeds
/// `r` gets a fresh copy, exactly as in [`split_at_uses`]. Values that
/// never cross an over-pressure boundary are left whole.
///
/// Returns `None` when no block exceeds `r` (nothing is stalled) or
/// when the over-pressure ranges have no splittable use — the caller
/// then has nothing to escalate.
///
/// # Examples
///
/// ```
/// use lra_ir::builder::FunctionBuilder;
/// use lra_ir::{liveness, split};
///
/// let mut b = FunctionBuilder::new("f");
/// let e = b.entry_block();
/// let x = b.op(e, &[]);
/// let y = b.op(e, &[]);
/// b.op(e, &[x, y]);
/// let f = b.finish();
/// let live = liveness::analyze(&f);
/// assert!(split::split_pressure_ranges(&f, &live, 8).is_none()); // fits
/// ```
pub fn split_pressure_ranges(f: &Function, live: &Liveness, r: usize) -> Option<SplitFunction> {
    split_pressure_ranges_in(f, live, r, &mut AnalysisScratch::new())
}

/// [`split_pressure_ranges`] with caller-provided scratch for the
/// block-edit buffers; identical output.
pub fn split_pressure_ranges_in(
    f: &Function,
    live: &Liveness,
    r: usize,
    scratch: &mut AnalysisScratch,
) -> Option<SplitFunction> {
    let nv = f.value_count as usize;
    let mut hot = BitSet::new(nv);
    let mut any_hot_block = false;
    for b in 0..f.block_count() {
        if live.block_max_live[b] > r {
            any_hot_block = true;
            hot.union_with(&live.live_in[b]);
            hot.union_with(&live.live_out[b]);
        }
    }
    if !any_hot_block || hot.is_empty() {
        return None;
    }
    let split = split_uses_where(f, |v| hot.contains(v), scratch);
    (split.copies > 0).then_some(split)
}

/// The shared rewrite: one fresh copy before every use of a value
/// selected by `want` (φ uses at the tail of the incoming predecessor).
fn split_uses_where(
    f: &Function,
    want: impl Fn(usize) -> bool,
    scratch: &mut AnalysisScratch,
) -> SplitFunction {
    let mut next = f.value_count;
    let mut origin: Vec<Value> = (0..f.value_count).map(Value).collect();
    let mut copies = 0usize;
    let mut fresh = |of: Value, origin: &mut Vec<Value>| {
        let v = Value(next);
        next += 1;
        origin.push(of);
        v
    };

    let n = f.block_count();
    let edits = scratch.edits_for(n);

    for b in 0..n {
        for instr in &f.blocks[b].instrs {
            let mut instr = instr.clone();
            match instr.opcode {
                Opcode::Phi => {
                    for (i, u) in instr.uses.iter_mut().enumerate() {
                        if !want(u.index()) {
                            continue;
                        }
                        let s = fresh(origin[u.index()], &mut origin);
                        copies += 1;
                        let p = f.blocks[b].preds[i];
                        edits.tails[p.index()].push(Instr::new(Opcode::Copy, Some(s), vec![*u]));
                        *u = s;
                    }
                }
                Opcode::Copy => {} // already a split point
                _ => {
                    for u in instr.uses.iter_mut() {
                        if !want(u.index()) {
                            continue;
                        }
                        let s = fresh(origin[u.index()], &mut origin);
                        copies += 1;
                        edits.bodies[b].push(Instr::new(Opcode::Copy, Some(s), vec![*u]));
                        *u = s;
                    }
                }
            }
            edits.bodies[b].push(instr);
        }
    }

    let blocks = edits.finish(f);
    let mut function = Function {
        name: format!("{}.split", f.name),
        blocks,
        entry: f.entry,
        value_count: next,
        params: f.params.clone(),
    };
    function.recompute_preds();
    debug_assert_eq!(function.validate(), Ok(()));
    SplitFunction {
        function,
        origin,
        copies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::genprog::{random_ssa_function, validate_strict_ssa, SsaConfig};
    use crate::{interference, liveness};
    use lra_graph::peo;
    use rand::SeedableRng;

    #[test]
    fn splits_every_use() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        b.op(e, &[x]);
        b.op(e, &[x]);
        let f = b.finish();
        let s = split_at_uses(&f);
        assert_eq!(s.copies, 2);
        assert_eq!(s.function.value_count, f.value_count + 2);
        validate_strict_ssa(&s.function).expect("still strict SSA");
        // Every split value maps back to x.
        for v in f.value_count..s.function.value_count {
            assert_eq!(s.origin[v as usize], x);
        }
    }

    #[test]
    fn phi_uses_split_in_predecessor() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        let xl = b.op(l, &[]);
        let xr = b.op(r, &[]);
        let m = b.phi(j, &[xl, xr]);
        b.op(j, &[m]);
        let f = b.finish();
        let s = split_at_uses(&f);
        validate_strict_ssa(&s.function).expect("strict SSA");
        // The copy for xl sits at the end of block l.
        let last = s.function.blocks[l.index()].instrs.last().unwrap();
        assert_eq!(last.opcode, Opcode::Copy);
        assert_eq!(last.uses, vec![xl]);
    }

    #[test]
    fn split_functions_stay_chordal() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for _ in 0..8 {
            let f = random_ssa_function(&mut rng, &SsaConfig::default(), "f");
            let s = split_at_uses(&f);
            validate_strict_ssa(&s.function).expect("strict SSA");
            let live = liveness::analyze(&s.function);
            let g = interference::interference_graph(&s.function, &live);
            assert!(peo::is_chordal(&g));
        }
    }

    #[test]
    fn splitting_cannot_raise_pressure_beyond_one_instruction() {
        // Splitting shortens the original ranges, but the copies it
        // inserts for one instruction's operands are simultaneously
        // live right before that instruction (and φ copies stack at
        // block ends), so MaxLive can rise by a small constant bounded
        // by the operand count of a single instruction — never by a
        // function-sized amount. The generator emits at most two
        // operands per instruction.
        for seed in [1u64, 3, 9, 16, 29] {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let cfg = SsaConfig {
                target_instrs: 120,
                liveness_window: 20,
                ..SsaConfig::default()
            };
            let f = random_ssa_function(&mut rng, &cfg, "f");
            let before = liveness::analyze(&f).max_live;
            let s = split_at_uses(&f);
            let after = liveness::analyze(&s.function).max_live;
            assert!(
                after <= before + 2,
                "seed {seed}: splitting raised MaxLive {before} -> {after}"
            );
        }
    }

    #[test]
    fn pressure_split_is_a_no_op_below_the_threshold() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        let y = b.op(e, &[]);
        b.op(e, &[x, y]);
        let f = b.finish();
        let live = liveness::analyze(&f);
        assert!(split_pressure_ranges(&f, &live, 8).is_none());
        assert!(split_pressure_ranges(&f, &live, live.max_live).is_none());
    }

    #[test]
    fn pressure_split_targets_only_over_pressure_ranges() {
        // Block 0 is over-pressure at R = 2 (three long ranges cross
        // into block 1); block 2's private value stays unsplit.
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let mid = b.block();
        let tail = b.block();
        b.set_succs(e, &[mid]);
        b.set_succs(mid, &[tail]);
        let vs: Vec<_> = (0..3).map(|_| b.op(e, &[])).collect();
        b.op(mid, &[vs[0]]);
        b.op(mid, &[vs[1]]);
        let local = b.op(tail, &[vs[2]]);
        b.op(tail, &[local]);
        let f = b.finish();
        let live = liveness::analyze(&f);
        let s = split_pressure_ranges(&f, &live, 2).expect("three ranges exceed R=2");
        // The three hot values' uses are split; `local` (born and dead
        // in the fitting tail block) is not.
        assert_eq!(s.copies, 3);
        for v in f.value_count..s.function.value_count {
            assert_ne!(s.origin[v as usize], local, "local range must stay whole");
        }
        validate_strict_ssa(&s.function).expect("still strict SSA");
    }

    #[test]
    fn pressure_split_preserves_chordality_on_random_ssa() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        for _ in 0..6 {
            let f = random_ssa_function(&mut rng, &SsaConfig::default(), "f");
            let live = liveness::analyze(&f);
            let Some(s) = split_pressure_ranges(&f, &live, 3) else {
                continue;
            };
            validate_strict_ssa(&s.function).expect("strict SSA");
            let live2 = liveness::analyze(&s.function);
            let g = interference::interference_graph(&s.function, &live2);
            assert!(peo::is_chordal(&g));
        }
    }

    #[test]
    fn existing_copies_are_not_resplit() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        let c = b.copy(e, x);
        b.op(e, &[c]);
        let f = b.finish();
        let s = split_at_uses(&f);
        // Only the final use is split; the copy's own use stays.
        assert_eq!(s.copies, 1);
    }
}
