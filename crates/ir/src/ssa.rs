//! SSA construction: convert non-SSA functions into pruned SSA.
//!
//! The paper's conclusion positions layered allocation as usable "in a
//! decoupled context for SSA programs, and as a pre-spill phase in any
//! compiler". A JIT whose IR is not in SSA (the JikesRVM setting of
//! §6.2) can therefore *choose* to convert, obtaining a chordal
//! interference graph and access to the layered-optimal family instead
//! of the `LH` approximation. This module implements that conversion:
//!
//! 1. **dominance frontiers** (Cytron et al.) from the dominator tree,
//! 2. **pruned φ placement**: a φ for variable `v` is inserted at a
//!    join only if `v` is live-in there (liveness-pruned, so no dead
//!    φs inflate the interference graph),
//! 3. **renaming** along a dominator-tree walk with one definition
//!    stack per original variable.
//!
//! Variables that may be read before any definition (live-in at entry)
//! become function parameters.

#![allow(clippy::needless_range_loop)] // parallel arrays indexed by block id

use crate::cfg::{Block, BlockId, Function, Instr, Opcode, Value};
use crate::dom::DomTree;
use crate::liveness;

/// Computes the dominance frontier of every block.
///
/// `DF(b)` contains each join `j` such that `b` dominates a predecessor
/// of `j` but not `j` itself (strictly).
pub fn dominance_frontiers(f: &Function, dom: &DomTree) -> Vec<Vec<BlockId>> {
    let n = f.block_count();
    let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for b in f.block_ids() {
        let preds = &f.block(b).preds;
        if preds.len() < 2 {
            continue;
        }
        let Some(idom_b) = dom.idom(b) else { continue };
        for &p in preds {
            if dom.idom(p).is_none() {
                continue; // unreachable predecessor
            }
            let mut runner = p;
            while runner != idom_b {
                if !df[runner.index()].contains(&b) {
                    df[runner.index()].push(b);
                }
                runner = match dom.idom(runner) {
                    Some(d) if d != runner => d,
                    _ => break,
                };
            }
        }
    }
    df
}

/// The result of SSA construction.
#[derive(Clone, Debug)]
pub struct SsaFunction {
    /// The converted function (strict, pruned SSA).
    pub function: Function,
    /// For each new value, the original variable it versions.
    pub origin: Vec<Value>,
    /// Number of φs inserted.
    pub phis: usize,
}

/// Converts `f` (any function; typically non-SSA) into pruned SSA.
///
/// Variables live-in at entry become parameters of the new function.
///
/// # Panics
///
/// Panics if `f` fails [`Function::validate`] or contains blocks
/// unreachable from the entry (strip those first).
pub fn into_ssa(f: &Function) -> SsaFunction {
    assert_eq!(f.validate(), Ok(()), "into_ssa requires a valid function");
    let n = f.block_count();
    let dom = DomTree::compute(f);
    for b in f.block_ids() {
        assert!(
            dom.idom(b).is_some(),
            "into_ssa requires all blocks reachable ({b} is not)"
        );
    }
    let live = liveness::analyze(f);
    let df = dominance_frontiers(f, &dom);
    let nv = f.value_count as usize;

    // Definition sites per original variable (entry counts as a def
    // site for entry-live variables, which become parameters).
    let entry_live = &live.live_in[f.entry.index()];
    let mut def_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); nv];
    for b in f.block_ids() {
        for instr in &f.blocks[b.index()].instrs {
            if let Some(d) = instr.def {
                if !def_blocks[d.index()].contains(&b) {
                    def_blocks[d.index()].push(b);
                }
            }
        }
    }
    for v in entry_live.iter() {
        if !def_blocks[v].contains(&f.entry) {
            def_blocks[v].push(f.entry);
        }
    }

    // Pruned φ placement: iterated dominance frontier, filtered by
    // liveness at the join.
    let mut phi_vars: Vec<Vec<usize>> = vec![Vec::new(); n]; // block -> original vars
    for v in 0..nv {
        let mut work: Vec<BlockId> = def_blocks[v].clone();
        let mut placed = vec![false; n];
        let mut queued = vec![false; n];
        for b in &work {
            queued[b.index()] = true;
        }
        while let Some(b) = work.pop() {
            for &j in &df[b.index()] {
                if !placed[j.index()] && live.live_in[j.index()].contains(v) {
                    placed[j.index()] = true;
                    phi_vars[j.index()].push(v);
                    if !queued[j.index()] {
                        queued[j.index()] = true;
                        work.push(j);
                    }
                }
            }
        }
    }

    // Fresh-value minting with origin tracking.
    let mut next = 0u32;
    let mut origin: Vec<Value> = Vec::new();
    let mut fresh = |of: usize, origin: &mut Vec<Value>| {
        let v = Value(next);
        next += 1;
        origin.push(Value(of as u32));
        v
    };

    // Parameters for entry-live variables (pushed below the walk).
    let mut stacks: Vec<Vec<Value>> = vec![Vec::new(); nv];
    let mut params = Vec::new();
    for v in entry_live.iter() {
        let p = fresh(v, &mut origin);
        stacks[v].push(p);
        params.push(p);
    }

    // Pre-create every φ (def minted now; operands are self-placeholders
    // overwritten when each incoming edge is processed during the walk).
    let mut new_blocks: Vec<Block> = (0..n)
        .map(|b| Block {
            instrs: Vec::new(),
            succs: f.blocks[b].succs.clone(),
            preds: Vec::new(),
        })
        .collect();
    let mut phi_defs: Vec<Vec<Value>> = vec![Vec::new(); n];
    let mut phis = 0usize;
    for b in 0..n {
        let arity = f.blocks[b].preds.len();
        for &v in &phi_vars[b] {
            let d = fresh(v, &mut origin);
            new_blocks[b]
                .instrs
                .push(Instr::new(Opcode::Phi, Some(d), vec![d; arity]));
            phi_defs[b].push(d);
            phis += 1;
        }
    }

    // Renaming along the dominator tree (iterative DFS).
    let mut dom_children: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for b in f.block_ids() {
        if let Some(d) = dom.idom(b) {
            if d != b {
                dom_children[d.index()].push(b);
            }
        }
    }
    let mut exit_pushes: Vec<Vec<usize>> = vec![Vec::new(); n];

    enum Frame {
        Enter(BlockId),
        Exit(BlockId),
    }
    let mut walk = vec![Frame::Enter(f.entry)];
    while let Some(frame) = walk.pop() {
        match frame {
            Frame::Enter(b) => {
                let bi = b.index();
                let mut pushes: Vec<usize> = Vec::new();

                // φ defs become the current version of their variable.
                for (slot, &v) in phi_vars[bi].iter().enumerate() {
                    stacks[v].push(phi_defs[bi][slot]);
                    pushes.push(v);
                }
                // Body: rename uses, version defs.
                for instr in &f.blocks[bi].instrs {
                    let uses: Vec<Value> = instr
                        .uses
                        .iter()
                        .map(|u| {
                            *stacks[u.index()]
                                .last()
                                .expect("pruned SSA: every use has a reaching definition")
                        })
                        .collect();
                    let def = instr.def.map(|d| {
                        let v = fresh(d.index(), &mut origin);
                        stacks[d.index()].push(v);
                        pushes.push(d.index());
                        v
                    });
                    new_blocks[bi].instrs.push(Instr {
                        opcode: instr.opcode,
                        def,
                        uses,
                    });
                }
                // Fill successor φ operands for the edges b -> s.
                for &s in &f.blocks[bi].succs {
                    let si = s.index();
                    let pred_pos = f.blocks[si]
                        .preds
                        .iter()
                        .position(|&p| p == b)
                        .expect("edge consistent with preds");
                    for (slot, &v) in phi_vars[si].iter().enumerate() {
                        if let Some(&top) = stacks[v].last() {
                            new_blocks[si].instrs[slot].uses[pred_pos] = top;
                        }
                    }
                }
                exit_pushes[bi] = pushes;
                walk.push(Frame::Exit(b));
                for &c in dom_children[bi].iter().rev() {
                    walk.push(Frame::Enter(c));
                }
            }
            Frame::Exit(b) => {
                for &v in exit_pushes[b.index()].iter().rev() {
                    stacks[v].pop();
                }
            }
        }
    }

    let mut function = Function {
        name: format!("{}.ssa", f.name),
        blocks: new_blocks,
        entry: f.entry,
        value_count: next,
        params,
    };
    function.recompute_preds();
    debug_assert_eq!(function.validate(), Ok(()));
    SsaFunction {
        function,
        origin,
        phis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::genprog::{random_jit_function, validate_strict_ssa, JitConfig};
    use crate::interference;
    use lra_graph::peo;
    use rand::SeedableRng;

    fn function_with_edges(n: usize, edges: &[(u32, u32)]) -> Function {
        let mut f = Function {
            name: "t".into(),
            blocks: (0..n).map(|_| Block::default()).collect(),
            entry: BlockId(0),
            value_count: 0,
            params: vec![],
        };
        for &(a, b) in edges {
            f.blocks[a as usize].succs.push(BlockId(b));
        }
        f.recompute_preds();
        f
    }

    #[test]
    fn dominance_frontier_of_diamond() {
        let f = function_with_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dom = DomTree::compute(&f);
        let df = dominance_frontiers(&f, &dom);
        assert_eq!(df[1], vec![BlockId(3)]);
        assert_eq!(df[2], vec![BlockId(3)]);
        assert!(df[0].is_empty());
        assert!(df[3].is_empty());
    }

    #[test]
    fn dominance_frontier_of_loop() {
        // 0 -> 1 -> 2 -> 1; 1 -> 3. The header is in its own body's DF.
        let f = function_with_edges(4, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let dom = DomTree::compute(&f);
        let df = dominance_frontiers(&f, &dom);
        assert!(df[2].contains(&BlockId(1)));
        assert!(df[1].contains(&BlockId(1))); // header reaches itself
    }

    #[test]
    fn converts_multiple_defs_into_phi() {
        // var x (Value 0): defined in both arms, used at the join.
        let mut f = function_with_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        f.value_count = 2;
        let x = Value(0);
        let y = Value(1);
        f.blocks[1].instrs = vec![Instr::new(Opcode::Op, Some(x), vec![])];
        f.blocks[2].instrs = vec![Instr::new(Opcode::Op, Some(x), vec![])];
        f.blocks[3].instrs = vec![Instr::new(Opcode::Op, Some(y), vec![x])];
        let ssa = into_ssa(&f);
        assert_eq!(ssa.phis, 1);
        validate_strict_ssa(&ssa.function).expect("strict SSA");
        // The join's first instruction is the φ; the use reads it.
        let join = &ssa.function.blocks[3];
        assert!(join.instrs[0].is_phi());
        assert_eq!(join.instrs[1].uses, vec![join.instrs[0].def.unwrap()]);
    }

    #[test]
    fn pruned_no_phi_for_dead_variable() {
        // x redefined in both arms but never used after the join: no φ.
        let mut f = function_with_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        f.value_count = 1;
        let x = Value(0);
        f.blocks[1].instrs = vec![Instr::new(Opcode::Op, Some(x), vec![])];
        f.blocks[2].instrs = vec![Instr::new(Opcode::Op, Some(x), vec![])];
        let ssa = into_ssa(&f);
        assert_eq!(ssa.phis, 0);
    }

    #[test]
    fn loop_carried_variable_gets_header_phi() {
        // 0: x = ..; 1 (header): use x; 2 (body): x = ..; back to 1; 3: use x.
        let mut f = function_with_edges(4, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        f.value_count = 2;
        let x = Value(0);
        f.blocks[0].instrs = vec![Instr::new(Opcode::Op, Some(x), vec![])];
        f.blocks[1].instrs = vec![Instr::new(Opcode::Op, Some(Value(1)), vec![x])];
        f.blocks[2].instrs = vec![Instr::new(Opcode::Op, Some(x), vec![])];
        f.blocks[3].instrs = vec![Instr::new(Opcode::Op, None, vec![x])];
        let ssa = into_ssa(&f);
        validate_strict_ssa(&ssa.function).expect("strict SSA");
        assert_eq!(ssa.phis, 1);
        assert!(ssa.function.blocks[1].instrs[0].is_phi());
    }

    #[test]
    fn entry_live_variables_become_params() {
        let mut f = function_with_edges(1, &[]);
        f.value_count = 2;
        // Use Value(0) before any def.
        f.blocks[0].instrs = vec![Instr::new(Opcode::Op, Some(Value(1)), vec![Value(0)])];
        let ssa = into_ssa(&f);
        assert_eq!(ssa.function.params.len(), 1);
        validate_strict_ssa(&ssa.function).expect("strict SSA");
        assert_eq!(ssa.origin[ssa.function.params[0].index()], Value(0));
    }

    #[test]
    fn jit_functions_convert_to_chordal_ssa() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for seed in 0..10u64 {
            let _ = seed;
            let f = random_jit_function(&mut rng, &JitConfig::default(), "jit");
            assert!(validate_strict_ssa(&f).is_err(), "input should be non-SSA");
            let ssa = into_ssa(&f);
            validate_strict_ssa(&ssa.function).expect("conversion produces strict SSA");
            let live = liveness::analyze(&ssa.function);
            let g = interference::interference_graph(&ssa.function, &live);
            assert!(peo::is_chordal(&g), "SSA interference must be chordal");
        }
    }

    #[test]
    fn origin_maps_every_value() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let f = random_jit_function(&mut rng, &JitConfig::default(), "jit");
        let ssa = into_ssa(&f);
        assert_eq!(ssa.origin.len(), ssa.function.value_count as usize);
        for o in &ssa.origin {
            assert!(o.0 < f.value_count);
        }
    }

    #[test]
    fn straight_line_is_renamed_without_phis() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry_block();
        let x = b.op(e, &[]);
        b.op(e, &[x]);
        let f = b.finish();
        let ssa = into_ssa(&f);
        assert_eq!(ssa.phis, 0);
        assert_eq!(ssa.function.instr_count(), f.instr_count());
        validate_strict_ssa(&ssa.function).expect("strict SSA");
    }
}
