//! A compact, round-trippable text codec for [`Function`]s.
//!
//! [`pretty::print`](crate::pretty::print) renders functions for
//! humans; this module renders them for *machines*: [`print()`] emits a
//! canonical text form that [`parse`] reads back into a structurally
//! identical [`Function`] (`parse(print(f)) == f` for any function
//! whose predecessor lists are in the canonical
//! [`Function::recompute_preds`] order — which every builder- or
//! generator-produced function satisfies). The workspace is std-only,
//! so this codec is what crosses process boundaries: the `lra-service`
//! wire protocol ships functions as one escaped string of this format.
//!
//! # Format
//!
//! ```text
//! fn <name> values=<count> entry=<block> params=<%v,...|->
//! bb<i>: succs=<bb,...|->
//!   %d = <op|phi|call|load|store|copy> %u, %u
//!   <store|op|...> %u
//! ...
//! end
//! ```
//!
//! Blocks appear in index order starting at `bb0`; `-` denotes an
//! empty list; instructions without a def omit the `%d = ` prefix.
//! Function names are printed with `%XX` byte escapes for anything
//! that is not printable non-space ASCII (and for `%` itself), so a
//! name never contains whitespace and the whole header stays one
//! line. An empty name prints as the sentinel `%`.
//!
//! # Example
//!
//! ```
//! use lra_ir::builder::FunctionBuilder;
//! use lra_ir::textio;
//!
//! let mut b = FunctionBuilder::new("demo::f0");
//! let e = b.entry_block();
//! let x = b.op(e, &[]);
//! b.op(e, &[x]);
//! let f = b.finish();
//! let text = textio::print(&f);
//! assert_eq!(textio::parse(&text).unwrap(), f);
//! ```

use crate::cfg::{Block, BlockId, Function, Instr, Opcode, Value};
use std::fmt::Write as _;

/// A parse failure: the 1-based source line plus a description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line number the error was detected on (0 for
    /// whole-function problems found after the last line).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for TextError {}

fn mnemonic(op: Opcode) -> &'static str {
    match op {
        Opcode::Op => "op",
        Opcode::Phi => "phi",
        Opcode::Call => "call",
        Opcode::Load => "load",
        Opcode::Store => "store",
        Opcode::Copy => "copy",
    }
}

fn opcode_of(s: &str) -> Option<Opcode> {
    Some(match s {
        "op" => Opcode::Op,
        "phi" => Opcode::Phi,
        "call" => Opcode::Call,
        "load" => Opcode::Load,
        "store" => Opcode::Store,
        "copy" => Opcode::Copy,
        _ => return None,
    })
}

/// Escapes a function name into a single whitespace-free token:
/// printable non-space ASCII passes through, everything else (and `%`)
/// becomes `%XX` byte escapes. The empty name becomes the sentinel
/// `%` (which no escaped non-empty name can produce).
fn escape_name(s: &str) -> String {
    if s.is_empty() {
        return "%".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if b.is_ascii_graphic() && b != b'%' {
            out.push(b as char);
        } else {
            let _ = write!(out, "%{b:02X}");
        }
    }
    out
}

fn unescape_name(s: &str) -> Result<String, String> {
    if s == "%" {
        return Ok(String::new());
    }
    let mut bytes = Vec::with_capacity(s.len());
    let mut it = s.bytes();
    while let Some(b) = it.next() {
        if b == b'%' {
            let hi = it.next().ok_or("truncated %XX escape in name")?;
            let lo = it.next().ok_or("truncated %XX escape in name")?;
            let hex = [hi, lo];
            let hex = std::str::from_utf8(&hex).map_err(|_| "non-ASCII escape digits")?;
            let v = u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape %{hex}"))?;
            bytes.push(v);
        } else {
            bytes.push(b);
        }
    }
    String::from_utf8(bytes).map_err(|_| "name escapes decode to invalid UTF-8".to_string())
}

/// Renders `f` in the canonical codec format. The output always ends
/// with `end\n` and contains exactly one line per block header and
/// instruction, so it embeds cleanly in line-oriented protocols once
/// newline-escaped.
pub fn print(f: &Function) -> String {
    let mut out = String::new();
    let params = if f.params.is_empty() {
        "-".to_string()
    } else {
        f.params
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = writeln!(
        out,
        "fn {} values={} entry={} params={}",
        escape_name(&f.name),
        f.value_count,
        f.entry.0,
        params
    );
    for b in f.block_ids() {
        let block = f.block(b);
        let succs = if block.succs.is_empty() {
            "-".to_string()
        } else {
            block
                .succs
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(out, "bb{}: succs={}", b.0, succs);
        for instr in &block.instrs {
            let uses = instr
                .uses
                .iter()
                .map(|u| u.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let m = mnemonic(instr.opcode);
            match (instr.def, uses.is_empty()) {
                (Some(d), true) => {
                    let _ = writeln!(out, "  {d} = {m}");
                }
                (Some(d), false) => {
                    let _ = writeln!(out, "  {d} = {m} {uses}");
                }
                (None, true) => {
                    let _ = writeln!(out, "  {m}");
                }
                (None, false) => {
                    let _ = writeln!(out, "  {m} {uses}");
                }
            }
        }
    }
    out.push_str("end\n");
    out
}

fn parse_value(tok: &str, line: usize) -> Result<Value, TextError> {
    let err = || TextError {
        line,
        msg: format!("expected a value like %3, got {tok:?}"),
    };
    let idx = tok.strip_prefix('%').ok_or_else(err)?;
    let n: u32 = idx.parse().map_err(|_| err())?;
    Ok(Value(n))
}

fn parse_block_id(tok: &str, line: usize) -> Result<BlockId, TextError> {
    let err = || TextError {
        line,
        msg: format!("expected a block like bb2, got {tok:?}"),
    };
    let idx = tok.strip_prefix("bb").ok_or_else(err)?;
    let n: u32 = idx.parse().map_err(|_| err())?;
    Ok(BlockId(n))
}

fn parse_list<T>(
    body: &str,
    line: usize,
    parse_one: impl Fn(&str, usize) -> Result<T, TextError>,
) -> Result<Vec<T>, TextError> {
    if body == "-" {
        return Ok(Vec::new());
    }
    body.split(',').map(|t| parse_one(t.trim(), line)).collect()
}

fn field<'a>(tok: &'a str, key: &str, line: usize) -> Result<&'a str, TextError> {
    tok.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| TextError {
            line,
            msg: format!("expected {key}=..., got {tok:?}"),
        })
}

/// Parses the canonical codec format back into a [`Function`].
///
/// The result is fully checked: structural invariants are enforced via
/// [`Function::validate`] (dangling edges, misplaced or mis-sized φs,
/// out-of-range values all fail), and predecessor lists are rebuilt in
/// canonical order, so a successful parse always yields a function the
/// allocation pipeline can run.
///
/// # Errors
///
/// Returns a [`TextError`] naming the offending line for syntax
/// problems, or a line-0 error for whole-function validation failures.
pub fn parse(text: &str) -> Result<Function, TextError> {
    let mut name: Option<String> = None;
    let mut value_count = 0u32;
    let mut entry = BlockId(0);
    let mut params: Vec<Value> = Vec::new();
    let mut blocks: Vec<Block> = Vec::new();
    let mut saw_end = false;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if saw_end {
            return Err(TextError {
                line: line_no,
                msg: format!("unexpected content after end: {line:?}"),
            });
        }
        if name.is_none() {
            // Header: fn <name> values=N entry=N params=...
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() != 5 || toks[0] != "fn" {
                return Err(TextError {
                    line: line_no,
                    msg: "expected header: fn <name> values=N entry=N params=...".to_string(),
                });
            }
            name = Some(unescape_name(toks[1]).map_err(|msg| TextError { line: line_no, msg })?);
            value_count = field(toks[2], "values", line_no)?
                .parse()
                .map_err(|_| TextError {
                    line: line_no,
                    msg: format!("bad values count in {:?}", toks[2]),
                })?;
            entry = BlockId(
                field(toks[3], "entry", line_no)?
                    .parse()
                    .map_err(|_| TextError {
                        line: line_no,
                        msg: format!("bad entry block in {:?}", toks[3]),
                    })?,
            );
            params = parse_list(field(toks[4], "params", line_no)?, line_no, parse_value)?;
            continue;
        }
        if line == "end" {
            saw_end = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("bb") {
            if let Some((idx, tail)) = rest.split_once(':') {
                if let Ok(n) = idx.parse::<usize>() {
                    if n != blocks.len() {
                        return Err(TextError {
                            line: line_no,
                            msg: format!("block bb{n} out of order (expected bb{})", blocks.len()),
                        });
                    }
                    let tail = tail.trim();
                    let succs =
                        parse_list(field(tail, "succs", line_no)?, line_no, parse_block_id)?;
                    blocks.push(Block {
                        instrs: Vec::new(),
                        succs,
                        preds: Vec::new(),
                    });
                    continue;
                }
            }
            return Err(TextError {
                line: line_no,
                msg: format!("malformed block header {line:?}"),
            });
        }
        // Instruction line, inside the current block.
        let block = blocks.last_mut().ok_or_else(|| TextError {
            line: line_no,
            msg: "instruction before the first block header".to_string(),
        })?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        let (def, rest) = if toks.len() >= 2 && toks[1] == "=" {
            (Some(parse_value(toks[0], line_no)?), &toks[2..])
        } else {
            (None, &toks[..])
        };
        let (m, use_toks) = rest.split_first().ok_or_else(|| TextError {
            line: line_no,
            msg: "empty instruction".to_string(),
        })?;
        let opcode = opcode_of(m).ok_or_else(|| TextError {
            line: line_no,
            msg: format!("unknown mnemonic {m:?}"),
        })?;
        let uses = if use_toks.is_empty() {
            Vec::new()
        } else {
            parse_list(&use_toks.join(""), line_no, parse_value)?
        };
        block.instrs.push(Instr::new(opcode, def, uses));
    }

    let name = name.ok_or_else(|| TextError {
        line: 0,
        msg: "empty input: no fn header".to_string(),
    })?;
    if !saw_end {
        return Err(TextError {
            line: 0,
            msg: "missing end line".to_string(),
        });
    }
    if blocks.is_empty() {
        return Err(TextError {
            line: 0,
            msg: "function has no blocks".to_string(),
        });
    }
    // recompute_preds indexes straight into the block vector, so
    // dangling successors must be rejected here rather than left for
    // validate() to find.
    for (i, b) in blocks.iter().enumerate() {
        for s in &b.succs {
            if s.index() >= blocks.len() {
                return Err(TextError {
                    line: 0,
                    msg: format!("invalid function: bb{i}: successor {s} out of range"),
                });
            }
        }
    }
    let mut f = Function {
        name,
        blocks,
        entry,
        value_count,
        params,
    };
    f.recompute_preds();
    f.validate().map_err(|msg| TextError {
        line: 0,
        msg: format!("invalid function: {msg}"),
    })?;
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn diamond_with_phi() -> Function {
        let mut b = FunctionBuilder::new("demo::max");
        let e = b.entry_block();
        let x = b.param();
        let y = b.param();
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.op(e, &[x, y]);
        b.set_succs(e, &[l, r]);
        b.set_succs(l, &[j]);
        b.set_succs(r, &[j]);
        let m = b.phi(j, &[x, y]);
        b.call(j, &[m]);
        b.effect(j, Opcode::Store, &[m]);
        b.finish()
    }

    #[test]
    fn round_trips_a_structured_function() {
        let f = diamond_with_phi();
        let text = print(&f);
        assert_eq!(parse(&text).expect("round-trip"), f);
    }

    #[test]
    fn printed_form_is_canonical() {
        let f = diamond_with_phi();
        assert_eq!(print(&parse(&print(&f)).unwrap()), print(&f));
    }

    #[test]
    fn unused_value_indices_survive_via_the_header() {
        // A function whose value_count exceeds the mentioned values:
        // the header must carry the count, not a rescan of the body.
        let mut f = diamond_with_phi();
        f.value_count += 3;
        assert_eq!(parse(&print(&f)).unwrap().value_count, f.value_count);
    }

    #[test]
    fn names_with_spaces_and_unicode_round_trip() {
        for name in ["a b", "öffnen::f", "x%y", "tab\tname", "new\nline", ""] {
            let mut b = FunctionBuilder::new(name);
            let e = b.entry_block();
            b.op(e, &[]);
            let f = b.finish();
            let text = print(&f);
            let header = text.lines().next().unwrap();
            assert_eq!(
                header.split_whitespace().count(),
                5,
                "escaped header must stay 5 tokens: {header:?}"
            );
            assert_eq!(parse(&text).unwrap().name, name);
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        let f = diamond_with_phi();
        let good = print(&f);
        let cases: Vec<(String, &str)> = vec![
            (String::new(), "no fn header"),
            ("fn x values=1 entry=0".to_string(), "header"),
            (good.replace("end\n", ""), "missing end"),
            (format!("{good}trailing"), "after end"),
            (good.replace("bb1:", "bb7:"), "out of order"),
            (good.replace(" = op", " = frob"), "unknown mnemonic"),
            (good.replace("%2 = op", "%99 = op"), "invalid function"),
            (
                good.replace("succs=bb1,bb2", "succs=bb1,bb9"),
                "invalid function",
            ),
            ("  op %1\nend".to_string(), "expected header"),
        ];
        for (text, expect) in cases {
            let err = parse(&text).expect_err(&format!("should reject {text:?}"));
            assert!(
                err.to_string().contains(expect),
                "error {err} should mention {expect:?}"
            );
        }
    }

    #[test]
    fn instruction_before_block_is_rejected() {
        let text = "fn f values=1 entry=0 params=-\n  %0 = op\nbb0: succs=-\nend\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("before the first block"));
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let f = diamond_with_phi();
        let spaced = print(&f).replace('\n', "\n\n");
        assert_eq!(parse(&spaced).unwrap(), f);
    }

    #[test]
    fn error_display_carries_the_line() {
        let err = parse("fn f values=1 entry=0 params=-\nbb0: garbage\nend\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().starts_with("line 2:"));
    }
}
