//! Byte-identity of the recycled-scratch rewrite paths.
//!
//! Every `_in` entry point promises that reusing one
//! [`AnalysisScratch`] across arbitrary functions produces output
//! identical to a fresh scratch per call. These tests drive the spill,
//! split and remat rewrites through one long-lived scratch over
//! functions whose sizes swing up and down (so the recycled block-edit
//! buffers are exercised both growing and shrinking) and compare every
//! result against the scratch-free wrappers.

use lra_graph::BitSet;
use lra_ir::genprog::{random_ssa_function, SsaConfig};
use lra_ir::remat::{rewrite_spill_code_remat, rewrite_spill_code_remat_in, RematTable};
use lra_ir::spill_code::{
    rewrite_spill_code, rewrite_spill_code_in, rewrite_spill_code_optimized,
    rewrite_spill_code_optimized_in,
};
use lra_ir::split::{
    split_at_uses, split_at_uses_in, split_pressure_ranges, split_pressure_ranges_in,
};
use lra_ir::{liveness, AnalysisScratch, Function};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Functions whose block and value counts swing by an order of
/// magnitude in both directions, so a shared scratch must shrink as
/// well as grow between calls.
fn swinging_functions() -> Vec<Function> {
    [30usize, 300, 60, 400, 20, 150]
        .iter()
        .enumerate()
        .map(|(i, &sz)| {
            let mut rng = ChaCha8Rng::seed_from_u64(i as u64 * 7 + 1);
            let cfg = SsaConfig {
                target_instrs: sz,
                liveness_window: 8,
                ..SsaConfig::default()
            };
            random_ssa_function(&mut rng, &cfg, format!("swing{i}"))
        })
        .collect()
}

/// Every other defined value, as a spill set.
fn alternating_spill_set(f: &Function) -> BitSet {
    let nv = f.value_count as usize;
    BitSet::from_iter_with_capacity(nv, (0..nv).step_by(2))
}

#[test]
fn spill_rewrites_reuse_matches_fresh_across_size_swings() {
    let mut shared = AnalysisScratch::new();
    for f in &swinging_functions() {
        let spilled = alternating_spill_set(f);

        let fresh = rewrite_spill_code(f, &spilled);
        let reused = rewrite_spill_code_in(f, &spilled, &mut shared);
        assert_eq!(fresh.function, reused.function, "{}: plain", f.name);
        assert_eq!(fresh.stats, reused.stats);

        let fresh = rewrite_spill_code_optimized(f, &spilled);
        let reused = rewrite_spill_code_optimized_in(f, &spilled, &mut shared);
        assert_eq!(fresh.function, reused.function, "{}: optimized", f.name);
        assert_eq!(fresh.stats, reused.stats);
        assert_eq!(fresh.saved_loads, reused.saved_loads);
    }
}

#[test]
fn remat_rewrite_reuse_matches_fresh_across_size_swings() {
    let mut shared = AnalysisScratch::new();
    for f in &swinging_functions() {
        let spilled = alternating_spill_set(f);
        let mut fresh_table = RematTable::compute(f);
        let mut reused_table = RematTable::compute(f);
        let fresh = rewrite_spill_code_remat(f, &spilled, &mut fresh_table, true);
        let reused = rewrite_spill_code_remat_in(f, &spilled, &mut reused_table, true, &mut shared);
        assert_eq!(fresh.function, reused.function, "{}", f.name);
        assert_eq!(fresh.stats, reused.stats);
    }
}

#[test]
fn split_rewrites_reuse_matches_fresh_across_size_swings() {
    let mut shared = AnalysisScratch::new();
    for f in &swinging_functions() {
        let fresh = split_at_uses(f);
        let reused = split_at_uses_in(f, &mut shared);
        assert_eq!(fresh.function, reused.function, "{}: at uses", f.name);
        assert_eq!(fresh.origin, reused.origin);
        assert_eq!(fresh.copies, reused.copies);

        let live = liveness::analyze(f);
        let fresh = split_pressure_ranges(f, &live, 3);
        let reused = split_pressure_ranges_in(f, &live, 3, &mut shared);
        match (fresh, reused) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.function, b.function, "{}: pressure", f.name);
                assert_eq!(a.origin, b.origin);
                assert_eq!(a.copies, b.copies);
            }
            _ => panic!("{}: splittability must not depend on scratch reuse", f.name),
        }
    }
}
