//! Property tests for the text codec: `parse(print(f)) == f` over
//! randomized generator output — the same corpora the service wire
//! protocol ships, so a round-trip failure here is a wire-protocol
//! correctness bug.

use lra_ir::genprog::{random_jit_function, random_ssa_function, JitConfig, SsaConfig};
use lra_ir::textio;
use proptest::prelude::*;
use rand::SeedableRng as _;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ssa_functions_round_trip(seed in 0u64..1_000_000, instrs in 20usize..=140) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = SsaConfig {
            target_instrs: instrs,
            branch_percent: 25,
            loop_percent: 15,
            copy_percent: 5,
            ..SsaConfig::default()
        };
        let f = random_ssa_function(&mut rng, &cfg, format!("ssa::f{seed}"));
        let text = textio::print(&f);
        let back = textio::parse(&text);
        prop_assert!(back.is_ok(), "parse failed: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), f);
    }

    #[test]
    fn jit_functions_round_trip(seed in 0u64..1_000_000, vars in 8usize..=80) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = JitConfig {
            vars,
            blocks: (vars / 4).max(4),
            ..JitConfig::default()
        };
        let f = random_jit_function(&mut rng, &cfg, format!("jit::m{seed}"));
        let text = textio::print(&f);
        let back = textio::parse(&text);
        prop_assert!(back.is_ok(), "parse failed: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), f);
    }

    #[test]
    fn printing_is_stable_under_reparse(seed in 0u64..1_000_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let f = random_ssa_function(&mut rng, &SsaConfig::default(), "stable::f");
        let once = textio::print(&f);
        let twice = textio::print(&textio::parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}
