//! The JSON-lines client and load generator: pipelines a corpus into
//! a server, retries backpressure rejections, and reassembles the
//! responses into submission-ordered [`ReportRow`]s whose rendering is
//! byte-identical to a local batch run.

use crate::proto::{self, Json, RejectReason, Response};
use lra_core::batch::{render_rows, ReportRow};
use lra_ir::{textio, Function};
use std::collections::BTreeMap;
use std::io::{self, BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The 64-bit splitmix finalizer, used to derive deterministic retry
/// jitter from (seed, request id, attempt) — no RNG state to carry.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Capped exponential backoff with deterministic jitter for
/// `queue_full` resubmissions, plus a retry budget so a wedged server
/// fails the run fast instead of spinning forever.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Resubmissions allowed **per request** before the run fails
    /// with a `retry budget exhausted` error.
    pub budget: u32,
    /// First backoff; attempt `n` waits `base * 2^n`, jittered.
    pub base: Duration,
    /// Ceiling on any single backoff.
    pub cap: Duration,
    /// Jitter seed: the same (seed, id, attempt) always waits the
    /// same time, so load tests stay reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// 1000 resubmissions per request, 200µs doubling to a 20ms cap.
    /// Deep enough that a healthy-but-saturated server (CI runs a
    /// 27-method corpus against a queue of 8) never exhausts it; a
    /// *dead* server fails faster still, via the transport error.
    fn default() -> Self {
        RetryPolicy {
            budget: 1000,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(20),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// Sets the per-request resubmission budget.
    pub fn budget(mut self, attempts: u32) -> Self {
        self.budget = attempts;
        self
    }

    /// Sets the backoff range (first wait and ceiling).
    pub fn backoff_range(mut self, base: Duration, cap: Duration) -> Self {
        self.base = base;
        self.cap = cap;
        self
    }

    /// Sets the jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The wait before resubmission number `attempt` (0-based) of
    /// request `id`: `base * 2^attempt` capped at `cap`, scaled into
    /// `[1/2, 1]` of itself by deterministic jitter so synchronized
    /// clients desynchronize instead of stampeding in lockstep.
    pub fn backoff(&self, id: u64, attempt: u32) -> Duration {
        let exp = (self.base.as_nanos() as u64)
            .checked_shl(attempt.min(24))
            .unwrap_or(u64::MAX)
            .min(self.cap.as_nanos() as u64);
        let h = splitmix64(self.seed ^ id.wrapping_mul(0x9E37_79B9) ^ u64::from(attempt));
        Duration::from_nanos(exp / 2 + (exp / 2) * (h % 1024) / 1024)
    }
}

/// How many alloc requests the client keeps in flight. Well above any
/// sensible queue capacity, so the server's backpressure — not the
/// client's pacing — is what gets exercised; still bounded so a huge
/// corpus cannot deadlock both peers' socket buffers.
const PIPELINE_WINDOW: usize = 64;

/// One connection to an `lra-service` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    retry: RetryPolicy,
    deadline_ms: Option<u64>,
}

/// What a [`Client::allocate_all`] run produced.
#[derive(Clone, Debug)]
pub struct LoadResult {
    /// Per-function rows in submission order.
    pub rows: Vec<ReportRow>,
    /// `queue_full` rejections that were retried.
    pub retries: u64,
    /// Requests the server shed as `deadline_exceeded`; each appears
    /// in [`LoadResult::rows`] as an error row.
    pub deadline_rejections: u64,
    /// Wall-clock time from first send to last response.
    pub elapsed: Duration,
}

impl LoadResult {
    /// Renders the rows exactly as
    /// [`lra_core::batch::BatchReport::render`] renders a local batch
    /// over the same functions — the byte-identity the CI smoke test
    /// diffs.
    pub fn render(&self) -> String {
        render_rows(&self.rows)
    }

    /// Functions served per second over the run.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.rows.len() as f64 / secs
        } else {
            0.0
        }
    }
}

impl Client {
    /// Connects to `addr` immediately.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 0,
            retry: RetryPolicy::default(),
            deadline_ms: None,
        })
    }

    /// Replaces the `queue_full` resubmission policy.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Attaches a relative deadline (milliseconds) to every alloc
    /// request this client sends; a request still queued server-side
    /// past it comes back as a `deadline_exceeded` error row instead
    /// of a report. `None` (the default) sends no deadline.
    pub fn deadline_ms(mut self, ms: Option<u64>) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Connects with retries — the load generator's default, so it can
    /// be started concurrently with the server (CI does exactly that).
    ///
    /// # Errors
    ///
    /// Returns the last connect failure after `attempts` tries spaced
    /// `delay` apart.
    pub fn connect_retry(addr: &str, attempts: u32, delay: Duration) -> io::Result<Client> {
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => last = Some(e),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(delay);
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connect attempts made")))
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        proto::parse_response(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Ships every function through the server (pipelined up to a
    /// fixed window, resubmitting `queue_full` rejections under the
    /// [`RetryPolicy`]) and returns the rows in submission order. A
    /// `deadline_exceeded` rejection is final — it becomes the
    /// request's error row, not a retry.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, protocol violations, an exhausted
    /// retry budget, or a server that starts shutting down mid-run.
    pub fn allocate_all(&mut self, functions: &[Function]) -> io::Result<LoadResult> {
        let base = self.next_id;
        self.next_id += functions.len() as u64;
        let texts: Vec<String> = functions.iter().map(textio::print).collect();
        let mut rows: Vec<Option<ReportRow>> = vec![None; functions.len()];
        let mut pending: std::collections::VecDeque<usize> = (0..functions.len()).collect();
        let mut attempts: Vec<u32> = vec![0; functions.len()];
        let mut outstanding = 0usize;
        let mut done = 0usize;
        let mut retries = 0u64;
        let mut deadline_rejections = 0u64;
        let start = Instant::now();
        // A response id outside this run's range is a server bug; it
        // must surface as a protocol error, never as an index panic.
        let index_of = |id: u64| -> io::Result<usize> {
            id.checked_sub(base)
                .and_then(|d| usize::try_from(d).ok())
                .filter(|&k| k < functions.len())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("response id {id} outside this run"),
                    )
                })
        };
        while done < functions.len() {
            while outstanding < PIPELINE_WINDOW {
                let Some(k) = pending.pop_front() else { break };
                let req =
                    proto::alloc_request_deadline(base + k as u64, &texts[k], self.deadline_ms);
                self.send_line(&req)?;
                outstanding += 1;
            }
            match self.read_response()? {
                Response::Row { id, row } => {
                    let k = index_of(id)?;
                    if rows[k].is_some() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("duplicate response id {id}"),
                        ));
                    }
                    rows[k] = Some(row);
                    outstanding -= 1;
                    done += 1;
                }
                Response::Rejected { id, reason } => {
                    let k = index_of(id)?;
                    outstanding -= 1;
                    match reason {
                        RejectReason::QueueFull => {
                            // Backpressure: resubmission can succeed
                            // once the pool drains — back off first,
                            // capped-exponentially with deterministic
                            // jitter, up to the retry budget.
                            let attempt = attempts[k];
                            if attempt >= self.retry.budget {
                                return Err(io::Error::other(format!(
                                    "retry budget exhausted: request {id} rejected {attempt} times"
                                )));
                            }
                            attempts[k] = attempt + 1;
                            retries += 1;
                            pending.push_back(k);
                            std::thread::sleep(self.retry.backoff(id, attempt));
                        }
                        RejectReason::DeadlineExceeded => {
                            // Final: the budget the request carried is
                            // spent; resubmitting cannot help.
                            if rows[k].is_some() {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("duplicate response id {id}"),
                                ));
                            }
                            rows[k] = Some(ReportRow {
                                function: functions[k].name.clone(),
                                outcome: Err("deadline_exceeded".to_string()),
                            });
                            deadline_rejections += 1;
                            done += 1;
                        }
                    }
                }
                Response::Other { fields, .. } => {
                    let msg = fields
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unexpected non-row response");
                    return Err(io::Error::new(io::ErrorKind::InvalidData, msg.to_string()));
                }
            }
        }
        Ok(LoadResult {
            rows: rows
                .into_iter()
                .map(|r| r.expect("all rows filled"))
                .collect(),
            retries,
            deadline_rejections,
            elapsed: start.elapsed(),
        })
    }

    /// Fetches the server's Prometheus text exposition: the raw
    /// multi-line payload of the `metrics` op, read until its `# EOF`
    /// terminator (included in the returned string).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a connection closed before the
    /// terminator arrives.
    pub fn metrics(&mut self) -> io::Result<String> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_line(&proto::op_request(id, "metrics"))?;
        let mut out = String::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before `# EOF`",
                ));
            }
            let done = line.trim_end() == "# EOF";
            out.push_str(&line);
            if done {
                return Ok(out);
            }
        }
    }

    /// Fetches the server's metrics as the raw response field map
    /// (`served`, `rejected`, `cache_hits`, `p50_us`, …).
    ///
    /// # Errors
    ///
    /// Fails on transport or protocol errors.
    pub fn stats(&mut self) -> io::Result<BTreeMap<String, Json>> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_line(&proto::op_request(id, "stats"))?;
        match self.read_response()? {
            Response::Other { id: got, fields } if got == Some(id) => Ok(fields),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected stats response {other:?}"),
            )),
        }
    }

    /// Asks the server to stop accepting connections and drain.
    ///
    /// # Errors
    ///
    /// Fails on transport or protocol errors.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_line(&proto::op_request(id, "shutdown"))?;
        match self.read_response()? {
            Response::Other { id: got, fields }
                if got == Some(id)
                    && fields.get("stopping").and_then(Json::as_bool) == Some(true) =>
            {
                Ok(())
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected shutdown response {other:?}"),
            )),
        }
    }
}
