//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] describes *where* faults land — worker panics every
//! Nth job, artificial per-job latency, connection drops mid-response —
//! and a seed that picks *which* phase of each cycle faults, so two
//! chaos runs with the same plan inject the same fault pattern. The
//! service materialises the plan into one [`FaultInjector`] whose
//! atomic counters hand out fault decisions; the injector also counts
//! what it injected so a harness can assert every enabled fault type
//! actually fired ([`FaultInjector::report`]).
//!
//! The module is compiled only under `#[cfg(any(test, feature =
//! "chaos"))]` — a production build carries no injection branches.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The 64-bit splitmix finalizer: a cheap, well-mixed hash used to
/// derive each fault stream's cycle phase from the plan seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded, deterministic fault schedule. All fault kinds default to
/// **off** (`every = 0`); each is enabled by its builder.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    panic_every: u64,
    latency_every: u64,
    latency: Duration,
    drop_every: u64,
}

impl FaultPlan {
    /// An all-off plan; enable individual faults with the builders.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Seeds the phase of every fault cycle (same seed, same pattern).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Panics the worker on one job out of every `every` (0 disables).
    /// The panic unwinds into the per-item `catch_unwind`, so the job
    /// completes as an error row, never a dead worker.
    ///
    /// # Panics
    ///
    /// Panics if `every == 1`: every attempt of every job would fault,
    /// so a resubmitting harness could never finish.
    pub fn panic_every(mut self, every: u64) -> Self {
        assert!(every != 1, "panic_every(1) faults every attempt forever");
        self.panic_every = every;
        self
    }

    /// Sleeps `latency` before one job out of every `every` (0
    /// disables) — simulates a slow worker without touching results.
    pub fn latency_every(mut self, every: u64, latency: Duration) -> Self {
        self.latency_every = every;
        self.latency = latency;
        self
    }

    /// Severs the client connection instead of completing one response
    /// write out of every `every` (0 disables). Only the TCP front end
    /// observes this fault.
    ///
    /// # Panics
    ///
    /// Panics if `every == 1`: every response would be severed, so no
    /// client could ever make progress.
    pub fn drop_every(mut self, every: u64) -> Self {
        assert!(every != 1, "drop_every(1) severs every response forever");
        self.drop_every = every;
        self
    }

    /// `true` when no fault kind is enabled.
    pub fn is_empty(&self) -> bool {
        self.panic_every == 0 && self.latency_every == 0 && self.drop_every == 0
    }
}

/// What the injector decided for one job (see
/// [`FaultInjector::next_job`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobFaults {
    /// The worker must panic instead of running the pipeline.
    pub panic: bool,
    /// The worker must sleep this long before running the pipeline.
    pub latency: Option<Duration>,
}

/// How many faults a [`FaultInjector`] actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Worker panics injected.
    pub panics: u64,
    /// Latency injections.
    pub latencies: u64,
    /// Connections severed mid-response.
    pub drops: u64,
}

/// A materialised [`FaultPlan`]: shared atomic counters assign each
/// dequeued job and each response write a position in its fault cycle,
/// so the *set* of faulted positions is a pure function of the plan.
pub struct FaultInjector {
    plan: FaultPlan,
    jobs: AtomicU64,
    writes: AtomicU64,
    panics: AtomicU64,
    latencies: AtomicU64,
    drops: AtomicU64,
}

impl FaultInjector {
    /// Materialises `plan` with zeroed counters.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            jobs: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            latencies: AtomicU64::new(0),
            drops: AtomicU64::new(0),
        }
    }

    /// Whether position `pos` of the stream hashed as `stream` faults:
    /// one position per cycle of `every` does, and the seed picks which.
    fn fires(&self, stream: u64, every: u64, pos: u64) -> bool {
        every > 0 && pos % every == splitmix64(self.plan.seed ^ stream) % every
    }

    /// The fault decision for the next dequeued job.
    pub fn next_job(&self) -> JobFaults {
        let pos = self.jobs.fetch_add(1, Ordering::Relaxed);
        let panic = self.fires(1, self.plan.panic_every, pos);
        let latency = self
            .fires(2, self.plan.latency_every, pos)
            .then_some(self.plan.latency);
        if panic {
            self.panics.fetch_add(1, Ordering::Relaxed);
        }
        if latency.is_some() {
            self.latencies.fetch_add(1, Ordering::Relaxed);
        }
        JobFaults { panic, latency }
    }

    /// Whether the next response write must sever the connection
    /// instead of completing.
    pub fn next_write_drops(&self) -> bool {
        let pos = self.writes.fetch_add(1, Ordering::Relaxed);
        let drop = self.fires(3, self.plan.drop_every, pos);
        if drop {
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
        drop
    }

    /// Counts of the faults injected so far.
    pub fn report(&self) -> FaultReport {
        FaultReport {
            panics: self.panics.load(Ordering::Relaxed),
            latencies: self.latencies.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plans_never_fault() {
        let inj = FaultInjector::new(FaultPlan::new());
        for _ in 0..100 {
            assert_eq!(inj.next_job(), JobFaults::default());
            assert!(!inj.next_write_drops());
        }
        assert_eq!(inj.report(), FaultReport::default());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn fault_rates_match_the_plan() {
        let plan = FaultPlan::new()
            .seed(42)
            .panic_every(5)
            .latency_every(4, Duration::from_millis(1))
            .drop_every(10);
        assert!(!plan.is_empty());
        let inj = FaultInjector::new(plan);
        for _ in 0..100 {
            inj.next_job();
        }
        for _ in 0..100 {
            inj.next_write_drops();
        }
        let r = inj.report();
        assert_eq!(r.panics, 20, "one panic per cycle of 5 over 100 jobs");
        assert_eq!(r.latencies, 25);
        assert_eq!(r.drops, 10);
    }

    #[test]
    fn the_same_seed_faults_the_same_positions() {
        let plan = |seed| FaultPlan::new().seed(seed).panic_every(3);
        let pattern = |seed| {
            let inj = FaultInjector::new(plan(seed));
            (0..30).map(|_| inj.next_job().panic).collect::<Vec<_>>()
        };
        assert_eq!(pattern(7), pattern(7));
        // Different seeds shift the phase (3 possible phases; seeds 0..3
        // cannot all collide with seed 7's phase).
        assert!((0..3).any(|s| pattern(s) != pattern(7)));
    }

    #[test]
    #[should_panic(expected = "every attempt forever")]
    fn panic_every_one_is_rejected() {
        let _ = FaultPlan::new().panic_every(1);
    }
}
