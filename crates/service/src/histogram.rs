//! Lock-free fixed-bucket latency histograms.
//!
//! The replacement for the metrics reservoir mutex (the ROADMAP's
//! scaling suspect): each worker owns one [`LatencyHistogram`] shard
//! and records with two relaxed atomic increments — no lock, no
//! allocation, no cross-worker cache-line traffic on the hot path.
//! Shards are merged only on read ([`HistogramSnapshot`]), where a
//! stats request can afford the sweep.
//!
//! # Bucketing
//!
//! Buckets are log₂-scaled over microseconds: value `v` lands in the
//! bucket indexed by its bit width ([`bucket_of`]), so bucket `b`
//! covers `[2^(b-1), 2^b - 1]` (bucket 0 holds exactly `0`). That is
//! 65 buckets for the whole `u64` range — small enough to live in a
//! fixed array, precise enough that any percentile estimate is off by
//! at most a factor of two (it reports the bucket's inclusive upper
//! bound, see [`HistogramSnapshot::percentile_us`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: one per possible `u64` bit width, plus the
/// zero bucket.
pub const BUCKETS: usize = 65;

/// The bucket a microsecond value lands in: its bit width (0 → 0,
/// 1 → 1, 2..3 → 2, 4..7 → 3, …).
pub fn bucket_of(us: u64) -> usize {
    (u64::BITS - us.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `b` — what percentile
/// estimates report for samples in that bucket.
pub fn bucket_upper_us(b: usize) -> u64 {
    match b {
        0 => 0,
        1..=63 => (1u64 << b) - 1,
        _ => u64::MAX,
    }
}

/// One worker's latency shard: a fixed array of relaxed atomic bucket
/// counters plus a running sum. Concurrent `record_us` calls never
/// contend on anything but the hardware; reads ([`HistogramSnapshot`])
/// may observe a mid-update state, which at worst misattributes the
/// in-flight sample — fine for monitoring, and exact once quiescent.
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one sample, in microseconds. Two relaxed atomic
    /// increments; safe from any thread.
    pub fn record_us(&self, us: u64) {
        self.counts[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Records one sample given as a [`std::time::Duration`].
    pub fn record(&self, d: std::time::Duration) {
        self.record_us(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// A merged, plain-integer view of one or more shards: what snapshots
/// carry and percentiles/expositions are computed from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (same indexing as [`bucket_of`]).
    pub counts: [u64; BUCKETS],
    /// Total samples across all buckets.
    pub count: u64,
    /// Sum of all recorded microsecond values.
    pub sum_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (fold [`HistogramSnapshot::merge_shard`] over
    /// the worker shards to fill it).
    pub fn new() -> Self {
        HistogramSnapshot::default()
    }

    /// Folds one live shard's counters into this snapshot.
    pub fn merge_shard(&mut self, shard: &LatencyHistogram) {
        for (into, c) in self.counts.iter_mut().zip(shard.counts.iter()) {
            let n = c.load(Ordering::Relaxed);
            *into += n;
            self.count += n;
        }
        self.sum_us += shard.sum_us.load(Ordering::Relaxed);
    }

    /// The nearest-rank `p`-th percentile estimate, in microseconds:
    /// the inclusive upper bound of the bucket holding the sample of
    /// that rank. Exact-to-within-one-bucket: the true order statistic
    /// lies in `(reported/2, reported]`. Returns 0 for an empty
    /// snapshot.
    pub fn percentile_us(&self, p: usize) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p as u64 * self.count).div_ceil(100)).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_us(b);
            }
        }
        bucket_upper_us(BUCKETS - 1)
    }

    /// Mean of the recorded values, in microseconds (0 when empty).
    /// Exact — the sum is tracked outside the buckets.
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;
    use rand::SeedableRng as _;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    #[test]
    fn buckets_are_log2_by_bit_width() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_us(0), 0);
        assert_eq!(bucket_upper_us(1), 1);
        assert_eq!(bucket_upper_us(2), 3);
        assert_eq!(bucket_upper_us(10), 1023);
        assert_eq!(bucket_upper_us(64), u64::MAX);
        // Every value sits at or below its bucket's upper bound, and
        // above the previous bucket's.
        for v in [0u64, 1, 2, 3, 4, 100, 1000, 65_535, 1 << 40] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper_us(b));
            if b > 0 {
                assert!(v > bucket_upper_us(b - 1));
            }
        }
    }

    #[test]
    fn percentiles_track_exact_sort_within_one_bucket() {
        // Randomized accuracy check: for arbitrary samples, the
        // histogram's nearest-rank percentile must report the upper
        // bound of the bucket containing the exact nearest-rank order
        // statistic — i.e. exact ∈ (reported/2, reported].
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for round in 0..20 {
            let n = rng.gen_range(1..=500);
            let h = LatencyHistogram::new();
            let mut samples: Vec<u64> = (0..n)
                .map(|_| {
                    // Spread over many magnitudes, like service times do.
                    let magnitude = rng.gen_range(0..20);
                    rng.gen_range(0..(1u64 << magnitude).max(2))
                })
                .collect();
            for &s in &samples {
                h.record_us(s);
            }
            samples.sort_unstable();
            let mut snap = HistogramSnapshot::new();
            snap.merge_shard(&h);
            assert_eq!(snap.count, n as u64);
            assert_eq!(snap.sum_us, samples.iter().sum::<u64>());
            for p in [1usize, 25, 50, 90, 95, 99, 100] {
                let rank = (p * samples.len()).div_ceil(100).max(1);
                let exact = samples[rank - 1];
                let reported = snap.percentile_us(p);
                assert_eq!(
                    reported,
                    bucket_upper_us(bucket_of(exact)),
                    "round {round}: p{p} of {n} samples: exact {exact} \
                     must land in the reported bucket (got {reported})"
                );
            }
        }
    }

    #[test]
    fn empty_and_single_sample_edges() {
        let snap = HistogramSnapshot::new();
        assert_eq!(snap.percentile_us(50), 0);
        assert_eq!(snap.mean_us(), 0);

        let h = LatencyHistogram::new();
        h.record_us(7);
        let mut snap = HistogramSnapshot::new();
        snap.merge_shard(&h);
        assert_eq!(snap.percentile_us(0), bucket_upper_us(bucket_of(7)));
        assert_eq!(snap.percentile_us(50), 7, "7 is its bucket's upper bound");
        assert_eq!(snap.percentile_us(100), 7);
        assert_eq!(snap.mean_us(), 7);
    }

    #[test]
    fn concurrent_recording_merges_losslessly() {
        // N threads hammer disjoint shards (the service topology) and
        // one shared shard (the stress case); the merged snapshot must
        // account for every sample exactly.
        let threads = 4;
        let per_thread = 10_000u64;
        let shards: Vec<Arc<LatencyHistogram>> = (0..threads)
            .map(|_| Arc::new(LatencyHistogram::new()))
            .collect();
        let shared = Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let shard = Arc::clone(shard);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(i as u64);
                    for _ in 0..per_thread {
                        let v = rng.gen_range(0..1_000_000);
                        shard.record_us(v);
                        shared.record_us(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut merged = HistogramSnapshot::new();
        for shard in &shards {
            merged.merge_shard(shard);
        }
        let mut shared_snap = HistogramSnapshot::new();
        shared_snap.merge_shard(&shared);
        assert_eq!(merged.count, threads as u64 * per_thread);
        assert_eq!(
            merged, shared_snap,
            "per-worker shards and one contended shard agree sample-for-sample"
        );
    }
}
