//! `lra-service`: a long-lived allocation server on top of the batch
//! infrastructure.
//!
//! The ROADMAP's serve-at-scale direction, made concrete: a JIT
//! deployment of the paper's spill-then-reanalyse pipeline
//! (Diouf–Cohen–Rastello, CGO 2013) is a *server* workload — streams
//! of small-to-medium methods arriving continuously, many of them
//! repeats. This crate turns the one-shot
//! [`lra_core::batch::BatchAllocator`] into that server:
//!
//! * [`AllocationService`] — a persistent worker pool fed by a
//!   **bounded** request queue. Submissions past the queue capacity
//!   are rejected ([`SubmitError::QueueFull`]) instead of blocking:
//!   backpressure is part of the API, not an accident of buffer
//!   sizes. Shutdown drains — every accepted request is served.
//! * a process-wide shared result cache — requests run under the
//!   `Portfolio` policy's exact-keyed
//!   [`lra_core::cache::ResultCache`], so repeat methods skip the
//!   solvers entirely with byte-identical output.
//! * [`ServiceMetrics`] — requests served, rejections, cache
//!   hits/misses/evictions, queue-depth high-water mark, p50/p95
//!   service time.
//! * a TCP front end ([`server::serve`]) speaking a JSON-lines
//!   protocol ([`proto`]) whose functions travel as
//!   [`lra_ir::textio`] text, plus the matching pipelined
//!   [`client::Client`] / load generator with a budgeted,
//!   jittered-backoff retry loop ([`client::RetryPolicy`]).
//! * an overload posture: requests may carry wall-clock deadlines
//!   (shed unstarted at dequeue as `deadline_exceeded`), a queue
//!   watermark that degrades service to the cheap allocator tier
//!   under load, read/write timeouts on every connection, and — under
//!   the `chaos` feature — deterministic fault injection ([`fault`])
//!   for soak-testing the whole stack.
//!
//! Because every item is produced by [`lra_core::batch::allocate_item`]
//! — the exact engine batch workers run — a service dump over a corpus
//! is **byte-identical** to [`BatchAllocator::run`] on the same
//! functions, at any worker count, cache-cold or cache-warm. CI diffs
//! all three.
//!
//! [`BatchAllocator::run`]: lra_core::batch::BatchAllocator::run

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
#[cfg(any(test, feature = "chaos"))]
pub mod fault;
pub mod histogram;
pub mod metrics;
pub mod proto;
pub mod queue;
pub mod server;
mod service;

pub use client::{Client, LoadResult, RetryPolicy};
pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use metrics::{PhaseAgg, ServiceMetrics};
pub use server::{serve, Server};
pub use service::{
    AllocationService, ServeOutcome, ServiceConfig, SubmitError, Ticket, DEFAULT_QUEUE_CAPACITY,
    DEFAULT_READ_TIMEOUT,
};
