//! Per-server metrics: requests served, rejections, cache behaviour,
//! queue depth high-water mark, service-time percentiles and per-phase
//! time attribution.
//!
//! Service-time percentiles come from lock-free per-worker
//! [`LatencyHistogram`] shards ([`crate::histogram`]) merged only at
//! snapshot time — recording a served request costs two relaxed
//! atomic increments on a worker-private shard, never a lock. (The
//! previous design pushed every sample into a mutex-guarded
//! reservoir; that mutex was the ROADMAP's next shared-state scaling
//! suspect.) Percentiles are log₂-bucketed: the reported value is the
//! upper bound of the bucket holding the nearest-rank sample, within
//! a factor of two of the exact order statistic.

use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use lra_core::cache::CacheStats;
use lra_core::trace::{Phase, TraceReport, PHASE_COUNT};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The live counters the service updates as it runs; snapshotted into
/// a [`ServiceMetrics`] on demand.
pub(crate) struct MetricsInner {
    served: AtomicU64,
    rejected: AtomicU64,
    degraded: AtomicU64,
    deadline_exceeded: AtomicU64,
    /// One latency shard per worker: worker `i` records only into
    /// `latency_shards[i]`, so the hot path is contention-free by
    /// construction. Merged on [`MetricsInner::snapshot`].
    latency_shards: Vec<LatencyHistogram>,
    /// Aggregate self-time per pipeline phase, in nanoseconds
    /// (indexed by [`Phase`] discriminant). Fed from per-item traces
    /// when tracing is armed; all zero otherwise.
    phase_self_ns: [AtomicU64; PHASE_COUNT],
    /// Completed spans per phase (same indexing).
    phase_count: [AtomicU64; PHASE_COUNT],
    /// Cache counters at service start; metrics report the delta so a
    /// server's hit rate is not polluted by earlier process history.
    cache_base: CacheStats,
}

impl MetricsInner {
    pub(crate) fn new(cache_base: CacheStats, workers: usize) -> Self {
        MetricsInner {
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            latency_shards: (0..workers.max(1))
                .map(|_| LatencyHistogram::new())
                .collect(),
            phase_self_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_count: std::array::from_fn(|_| AtomicU64::new(0)),
            cache_base,
        }
    }

    /// Records one served request's latency on `worker`'s private
    /// shard. Lock-free: two relaxed atomic adds on memory only this
    /// worker writes.
    pub(crate) fn record_served(&self, worker: usize, service_time: Duration) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.latency_shards[worker % self.latency_shards.len()].record(service_time);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one served item's trace into the per-phase aggregates.
    pub(crate) fn record_phases(&self, trace: &TraceReport) {
        for (i, stats) in trace.phases.iter().enumerate() {
            if stats.count > 0 {
                self.phase_self_ns[i].fetch_add(stats.self_ns, Ordering::Relaxed);
                self.phase_count[i].fetch_add(stats.count, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn snapshot(
        &self,
        queue_high_water: usize,
        queue_capacity: usize,
        workers: usize,
        cache_now: CacheStats,
    ) -> ServiceMetrics {
        let mut latency = HistogramSnapshot::new();
        for shard in &self.latency_shards {
            latency.merge_shard(shard);
        }
        ServiceMetrics {
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            queue_high_water,
            queue_capacity,
            workers,
            cache: cache_now.since(&self.cache_base),
            p50: Duration::from_micros(latency.percentile_us(50)),
            p95: Duration::from_micros(latency.percentile_us(95)),
            latency,
            phases: std::array::from_fn(|i| PhaseAgg {
                count: self.phase_count[i].load(Ordering::Relaxed),
                self_ns: self.phase_self_ns[i].load(Ordering::Relaxed),
            }),
        }
    }
}

/// Aggregate attribution for one pipeline phase across all served
/// requests (zero unless tracing was armed for some of them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Completed spans of this phase.
    pub count: u64,
    /// Total self nanoseconds attributed to this phase.
    pub self_ns: u64,
}

/// A point-in-time snapshot of one server's counters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceMetrics {
    /// Requests completed (successfully or with a per-item error).
    pub served: u64,
    /// Submissions refused with `queue_full`.
    pub rejected: u64,
    /// Requests served by the degraded (cheap-tier-only) pipeline
    /// because the queue was above the configured watermark when a
    /// worker picked them up. A subset of `served`.
    pub degraded: u64,
    /// Requests dropped at dequeue because their `deadline_ms` budget
    /// had already run out — shed without burning a worker on an
    /// answer nobody is waiting for.
    pub deadline_exceeded: u64,
    /// Most requests ever queued at once.
    pub queue_high_water: usize,
    /// The configured queue capacity.
    pub queue_capacity: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// Result-cache counters accumulated **by this server** (deltas
    /// since service start of the process-wide portfolio cache,
    /// including evictions).
    pub cache: CacheStats,
    /// Median service time (enqueue to completion), log₂-bucketed:
    /// the true median lies in `(p50/2, p50]`.
    pub p50: Duration,
    /// 95th-percentile service time, same bucketing.
    pub p95: Duration,
    /// The merged service-time histogram the percentiles came from
    /// (the `metrics` op exposes it bucket-by-bucket).
    pub latency: HistogramSnapshot,
    /// Per-phase aggregate attribution, indexed by
    /// [`Phase`] discriminant. All zero unless tracing was armed.
    pub phases: [PhaseAgg; PHASE_COUNT],
}

impl ServiceMetrics {
    /// Cache hits as a fraction of this server's lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// A one-paragraph human-readable rendering (for stderr/logs; not
    /// part of any determinism contract).
    pub fn render(&self) -> String {
        format!(
            "served {} | rejected {} | degraded {} | deadline-exceeded {} | \
             queue high-water {}/{} | workers {} | \
             cache hits {} misses {} evictions {} (hit rate {:.1}%) | \
             service time p50 {:.3} ms p95 {:.3} ms",
            self.served,
            self.rejected,
            self.degraded,
            self.deadline_exceeded,
            self.queue_high_water,
            self.queue_capacity,
            self.workers,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            100.0 * self.cache_hit_rate(),
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
        )
    }

    /// Renders this snapshot in Prometheus text exposition format
    /// (the `metrics` proto op's payload): `# HELP`/`# TYPE` headers,
    /// counters and gauges, the service-time histogram with
    /// cumulative `le` buckets, per-phase counters labelled
    /// `phase="…"`, terminated by a `# EOF` line (no trailing
    /// newline — the transport appends it).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "lra_requests_served_total",
            "Requests completed by the worker pool.",
            self.served,
        );
        counter(
            "lra_requests_rejected_total",
            "Submissions refused with queue_full backpressure.",
            self.rejected,
        );
        counter(
            "lra_requests_degraded_total",
            "Requests served by the degraded (cheap-tier-only) pipeline.",
            self.degraded,
        );
        counter(
            "lra_requests_deadline_exceeded_total",
            "Requests shed at dequeue because their deadline had expired.",
            self.deadline_exceeded,
        );
        counter(
            "lra_cache_hits_total",
            "Result-cache hits since service start.",
            self.cache.hits,
        );
        counter(
            "lra_cache_misses_total",
            "Result-cache misses since service start.",
            self.cache.misses,
        );
        counter(
            "lra_cache_evictions_total",
            "Result-cache evictions since service start.",
            self.cache.evictions,
        );

        let mut gauge = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            "lra_queue_high_water",
            "Most requests ever queued at once.",
            self.queue_high_water as u64,
        );
        gauge(
            "lra_queue_capacity",
            "Configured request-queue capacity.",
            self.queue_capacity as u64,
        );
        gauge("lra_workers", "Worker-pool size.", self.workers as u64);

        let _ = writeln!(
            out,
            "# HELP lra_service_time_us Service time (enqueue to completion), microseconds."
        );
        let _ = writeln!(out, "# TYPE lra_service_time_us histogram");
        // Cumulative buckets up to the last occupied one (always at
        // least le="0"), then the mandatory +Inf.
        let last = self
            .latency
            .counts
            .iter()
            .rposition(|&n| n > 0)
            .unwrap_or(0);
        let mut cumulative = 0u64;
        for b in 0..=last {
            cumulative += self.latency.counts[b];
            let _ = writeln!(
                out,
                "lra_service_time_us_bucket{{le=\"{}\"}} {cumulative}",
                crate::histogram::bucket_upper_us(b)
            );
        }
        let _ = writeln!(
            out,
            "lra_service_time_us_bucket{{le=\"+Inf\"}} {}",
            self.latency.count
        );
        let _ = writeln!(out, "lra_service_time_us_sum {}", self.latency.sum_us);
        let _ = writeln!(out, "lra_service_time_us_count {}", self.latency.count);

        let _ = writeln!(
            out,
            "# HELP lra_phase_self_us_total Pipeline self-time per phase, microseconds \
             (populated for traced requests)."
        );
        let _ = writeln!(out, "# TYPE lra_phase_self_us_total counter");
        for phase in Phase::ALL {
            let agg = self.phases[phase as usize];
            let _ = writeln!(
                out,
                "lra_phase_self_us_total{{phase=\"{}\"}} {}",
                phase.name(),
                agg.self_ns / 1_000
            );
        }
        let _ = writeln!(
            out,
            "# HELP lra_phase_spans_total Completed trace spans per phase."
        );
        let _ = writeln!(out, "# TYPE lra_phase_spans_total counter");
        for phase in Phase::ALL {
            let agg = self.phases[phase as usize];
            let _ = writeln!(
                out,
                "lra_phase_spans_total{{phase=\"{}\"}} {}",
                phase.name(),
                agg.count
            );
        }
        out.push_str("# EOF");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn snapshot_reports_deltas_against_the_cache_base() {
        let base = CacheStats {
            hits: 10,
            misses: 5,
            evictions: 1,
        };
        let inner = MetricsInner::new(base, 2);
        inner.record_served(0, Duration::from_micros(100));
        inner.record_served(1, Duration::from_micros(300));
        inner.record_rejected();
        inner.record_degraded();
        inner.record_deadline_exceeded();
        inner.record_deadline_exceeded();
        let now = CacheStats {
            hits: 14,
            misses: 9,
            evictions: 1,
        };
        let m = inner.snapshot(3, 8, 2, now);
        assert_eq!(m.served, 2);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.degraded, 1);
        assert_eq!(m.deadline_exceeded, 2);
        assert_eq!(m.cache.hits, 4);
        assert_eq!(m.cache.misses, 4);
        assert_eq!(m.cache.evictions, 0);
        assert!((m.cache_hit_rate() - 0.5).abs() < 1e-9);
        // Log₂ bucketing: the reservoir reported the exact samples
        // (100 and 300 µs); the histogram reports each sample's bucket
        // upper bound — within one bucket, i.e. a factor of two.
        assert_eq!(m.p50, Duration::from_micros(127));
        assert_eq!(m.p95, Duration::from_micros(511));
        for (exact, reported) in [(100u64, m.p50), (300, m.p95)] {
            let rep = reported.as_micros() as u64;
            assert!(
                exact <= rep && exact > rep / 2,
                "exact {exact} must lie in (rep/2, rep] for rep {rep}"
            );
        }
        assert_eq!(m.latency.count, 2);
        assert_eq!(m.latency.sum_us, 400);
        assert!(m.render().contains("served 2"));
        assert!(m.render().contains("degraded 1"));
        assert!(m.render().contains("deadline-exceeded 2"));
    }

    #[test]
    fn phase_aggregates_accumulate_from_traces() {
        let inner = MetricsInner::new(CacheStats::default(), 1);
        let mut t = TraceReport::default();
        t.phases[Phase::Allocate as usize].count = 3;
        t.phases[Phase::Allocate as usize].self_ns = 9_000;
        t.phases[Phase::Verify as usize].count = 3;
        t.phases[Phase::Verify as usize].self_ns = 1_000;
        inner.record_phases(&t);
        inner.record_phases(&t);
        let m = inner.snapshot(0, 8, 1, CacheStats::default());
        assert_eq!(m.phases[Phase::Allocate as usize].count, 6);
        assert_eq!(m.phases[Phase::Allocate as usize].self_ns, 18_000);
        assert_eq!(m.phases[Phase::Verify as usize].self_ns, 2_000);
        assert_eq!(m.phases[Phase::Rewrite as usize].count, 0);
    }

    /// A minimal Prometheus text-format checker: validates comment
    /// structure, that every sample belongs to a `# TYPE`-declared
    /// family, that values parse as numbers, and histogram invariants
    /// (cumulative buckets, +Inf == _count).
    fn check_prometheus(text: &str) -> BTreeMap<String, String> {
        let mut types: BTreeMap<String, String> = BTreeMap::new();
        let mut samples: BTreeMap<String, String> = BTreeMap::new();
        let mut saw_eof = false;
        for line in text.lines() {
            assert!(!saw_eof, "nothing may follow # EOF");
            if line == "# EOF" {
                saw_eof = true;
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap().to_string();
                let kind = parts.next().expect("TYPE carries a kind").to_string();
                assert!(
                    matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                    "unknown type {kind}"
                );
                types.insert(name, kind);
                continue;
            }
            if line.starts_with('#') {
                continue; // HELP
            }
            let (series, value) = line.rsplit_once(' ').expect("sample is `name value`");
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name {name:?}"
            );
            if series.contains('{') {
                assert!(series.ends_with('}'), "unbalanced labels in {series:?}");
            }
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad value {value:?}"));
            // Histogram series reuse the family name with a suffix.
            let family = name
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                types.contains_key(name) || types.contains_key(family),
                "sample {name} has no TYPE declaration"
            );
            samples.insert(series.to_string(), value.to_string());
        }
        assert!(saw_eof, "exposition must end with # EOF");
        samples
    }

    #[test]
    fn prometheus_exposition_parses_and_type_checks() {
        let inner = MetricsInner::new(CacheStats::default(), 2);
        inner.record_served(0, Duration::from_micros(90));
        inner.record_served(1, Duration::from_micros(700));
        inner.record_served(0, Duration::from_micros(100_000));
        inner.record_rejected();
        let mut t = TraceReport::default();
        t.phases[Phase::Allocate as usize].count = 1;
        t.phases[Phase::Allocate as usize].self_ns = 5_000;
        inner.record_phases(&t);
        let m = inner.snapshot(1, 8, 2, CacheStats::default());
        let text = m.render_prometheus();
        let samples = check_prometheus(&text);

        assert_eq!(samples["lra_requests_served_total"], "3");
        assert_eq!(samples["lra_requests_rejected_total"], "1");
        assert_eq!(samples["lra_workers"], "2");
        assert_eq!(samples["lra_service_time_us_count"], "3");
        assert_eq!(
            samples["lra_service_time_us_sum"],
            (90u64 + 700 + 100_000).to_string()
        );
        assert_eq!(samples["lra_service_time_us_bucket{le=\"+Inf\"}"], "3");
        assert_eq!(samples["lra_phase_self_us_total{phase=\"allocate\"}"], "5");
        assert_eq!(samples["lra_phase_spans_total{phase=\"allocate\"}"], "1");
        // Cumulative bucket counts are non-decreasing and end at count.
        let mut buckets: Vec<(u64, u64)> = samples
            .iter()
            .filter_map(|(k, v)| {
                let le = k.strip_prefix("lra_service_time_us_bucket{le=\"")?;
                let le = le.strip_suffix("\"}")?;
                let bound = if le == "+Inf" {
                    u64::MAX
                } else {
                    le.parse().ok()?
                };
                Some((bound, v.parse().unwrap()))
            })
            .collect();
        buckets.sort_unstable();
        assert!(buckets.len() >= 2);
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1), "cumulative");
        assert_eq!(buckets.last().unwrap().1, 3, "+Inf equals _count");
    }

    #[test]
    fn worker_indices_wrap_instead_of_panicking() {
        // Defensive: a caller passing an out-of-range worker index
        // (e.g. a test single-shard config) must not crash the pool.
        let inner = MetricsInner::new(CacheStats::default(), 1);
        inner.record_served(5, Duration::from_micros(10));
        let m = inner.snapshot(0, 8, 1, CacheStats::default());
        assert_eq!(m.served, 1);
        assert_eq!(m.latency.count, 1);
    }
}
