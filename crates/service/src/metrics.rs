//! Per-server metrics: requests served, rejections, cache behaviour,
//! queue depth high-water mark and service-time percentiles.

use lra_core::cache::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// The live counters the service updates as it runs; snapshotted into
/// a [`ServiceMetrics`] on demand.
pub(crate) struct MetricsInner {
    served: AtomicU64,
    rejected: AtomicU64,
    degraded: AtomicU64,
    deadline_exceeded: AtomicU64,
    /// Per-request service times (enqueue to completion), in
    /// microseconds. Bounded: once full the reservoir stops growing —
    /// percentiles then describe the first window, which is enough for
    /// the bench experiments and keeps a long-lived server's memory
    /// flat.
    service_us: Mutex<Vec<u64>>,
    /// Cache counters at service start; metrics report the delta so a
    /// server's hit rate is not polluted by earlier process history.
    cache_base: CacheStats,
}

/// Service times kept for the percentile estimates.
const SERVICE_TIME_RESERVOIR: usize = 65_536;

impl MetricsInner {
    pub(crate) fn new(cache_base: CacheStats) -> Self {
        MetricsInner {
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            service_us: Mutex::new(Vec::new()),
            cache_base,
        }
    }

    pub(crate) fn record_served(&self, service_time: Duration) {
        self.served.fetch_add(1, Ordering::Relaxed);
        let mut times = self
            .service_us
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if times.len() < SERVICE_TIME_RESERVOIR {
            times.push(service_time.as_micros().min(u64::MAX as u128) as u64);
        }
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        queue_high_water: usize,
        queue_capacity: usize,
        workers: usize,
        cache_now: CacheStats,
    ) -> ServiceMetrics {
        let times = self
            .service_us
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut sorted = times.clone();
        drop(times);
        sorted.sort_unstable();
        ServiceMetrics {
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            queue_high_water,
            queue_capacity,
            workers,
            cache: cache_now.since(&self.cache_base),
            p50: percentile(&sorted, 50),
            p95: percentile(&sorted, 95),
        }
    }
}

/// Nearest-rank percentile over an already-sorted µs series.
fn percentile(sorted_us: &[u64], p: usize) -> Duration {
    if sorted_us.is_empty() {
        return Duration::ZERO;
    }
    let rank = (p * sorted_us.len()).div_ceil(100).max(1);
    Duration::from_micros(sorted_us[rank - 1])
}

/// A point-in-time snapshot of one server's counters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceMetrics {
    /// Requests completed (successfully or with a per-item error).
    pub served: u64,
    /// Submissions refused with `queue_full`.
    pub rejected: u64,
    /// Requests served by the degraded (cheap-tier-only) pipeline
    /// because the queue was above the configured watermark when a
    /// worker picked them up. A subset of `served`.
    pub degraded: u64,
    /// Requests dropped at dequeue because their `deadline_ms` budget
    /// had already run out — shed without burning a worker on an
    /// answer nobody is waiting for.
    pub deadline_exceeded: u64,
    /// Most requests ever queued at once.
    pub queue_high_water: usize,
    /// The configured queue capacity.
    pub queue_capacity: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// Result-cache counters accumulated **by this server** (deltas
    /// since service start of the process-wide portfolio cache,
    /// including evictions).
    pub cache: CacheStats,
    /// Median service time (enqueue to completion).
    pub p50: Duration,
    /// 95th-percentile service time.
    pub p95: Duration,
}

impl ServiceMetrics {
    /// Cache hits as a fraction of this server's lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// A one-paragraph human-readable rendering (for stderr/logs; not
    /// part of any determinism contract).
    pub fn render(&self) -> String {
        format!(
            "served {} | rejected {} | degraded {} | deadline-exceeded {} | \
             queue high-water {}/{} | workers {} | \
             cache hits {} misses {} evictions {} (hit rate {:.1}%) | \
             service time p50 {:.3} ms p95 {:.3} ms",
            self.served,
            self.rejected,
            self.degraded,
            self.deadline_exceeded,
            self.queue_high_water,
            self.queue_capacity,
            self.workers,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            100.0 * self.cache_hit_rate(),
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let us: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&us, 50), Duration::from_micros(50));
        assert_eq!(percentile(&us, 95), Duration::from_micros(95));
        assert_eq!(percentile(&us, 100), Duration::from_micros(100));
        assert_eq!(percentile(&[], 50), Duration::ZERO);
        assert_eq!(percentile(&[7], 95), Duration::from_micros(7));
    }

    #[test]
    fn snapshot_reports_deltas_against_the_cache_base() {
        let base = CacheStats {
            hits: 10,
            misses: 5,
            evictions: 1,
        };
        let inner = MetricsInner::new(base);
        inner.record_served(Duration::from_micros(100));
        inner.record_served(Duration::from_micros(300));
        inner.record_rejected();
        inner.record_degraded();
        inner.record_deadline_exceeded();
        inner.record_deadline_exceeded();
        let now = CacheStats {
            hits: 14,
            misses: 9,
            evictions: 1,
        };
        let m = inner.snapshot(3, 8, 2, now);
        assert_eq!(m.served, 2);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.degraded, 1);
        assert_eq!(m.deadline_exceeded, 2);
        assert_eq!(m.cache.hits, 4);
        assert_eq!(m.cache.misses, 4);
        assert_eq!(m.cache.evictions, 0);
        assert!((m.cache_hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(m.p50, Duration::from_micros(100));
        assert_eq!(m.p95, Duration::from_micros(300));
        assert!(m.render().contains("served 2"));
        assert!(m.render().contains("degraded 1"));
        assert!(m.render().contains("deadline-exceeded 2"));
    }
}
