//! The JSON-lines wire protocol (and the minimal hand-rolled JSON it
//! needs — the workspace is std-only, so there is no serde).
//!
//! Every message is one JSON object per line. Requests carry an `op`:
//!
//! ```text
//! {"op":"alloc","id":3,"fn":"<lra_ir::textio text, JSON-escaped>"}
//! {"op":"alloc","id":4,"fn":"...","deadline_ms":250}
//! {"op":"alloc","id":5,"fn":"...","trace_id":"req-5","trace":true}
//! {"op":"stats","id":7}
//! {"op":"metrics","id":8}
//! {"op":"shutdown","id":9}
//! ```
//!
//! The optional `deadline_ms` is a relative wall-clock budget: the
//! server anchors it at parse time and sheds the request
//! (`"reason":"deadline_exceeded"`) if it is still queued when the
//! budget runs out. An optional `trace_id` string is echoed verbatim
//! in the request's response (alloc rows and rejections alike) so
//! callers can correlate pipelined traffic; `trace:true` additionally
//! asks the server to run the request with
//! [`lra_core::trace`] armed and return flat per-phase timing fields.
//!
//! Responses echo the request `id`:
//!
//! ```text
//! {"id":3,"ok":true,"function":"gzip::f0","spill_cost":12,"rounds":2,
//!  "stores":3,"loads":5,"converged":true,"verified":true}
//! {"id":5,"ok":true,...,"trace_id":"req-5","trace_total_us":812,
//!  "phase_allocate_us":301,...,"trace_rounds":2,"trace_fuel":100000,
//!  "trace_cache_hits":0,"trace_cache_misses":1}
//! {"id":3,"ok":false,"function":"gzip::f0","error":"..."}
//! {"id":3,"rejected":true,"reason":"queue_full"}
//! {"id":4,"rejected":true,"reason":"deadline_exceeded"}
//! {"id":7,"ok":true,"served":27,...}
//! ```
//!
//! The `metrics` op answers with a multi-line Prometheus text
//! exposition ([`crate::ServiceMetrics::render_prometheus`]) instead
//! of a JSON line, terminated by a `# EOF` line — the one deliberate
//! departure from one-object-per-line framing.
//!
//! The JSON subset implemented here is exactly what the protocol
//! uses: one flat object per line with string / integer / float /
//! bool / null values. Strings unescape `\" \\ \/ \b \f \n \r \t`
//! and non-surrogate `\uXXXX`.

use lra_core::batch::{ReportRow, RowStats};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON scalar. Numbers keep their raw text so integers round-trip
/// exactly (no f64 detour for `u64` counters).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// A string value.
    Str(String),
    /// A number, kept as its raw token.
    Num(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an unsigned integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one flat JSON object line into its key → value map.
///
/// # Errors
///
/// Returns a description of the first syntax problem (including
/// nested arrays/objects, which the protocol never uses).
pub fn parse_object(line: &str) -> Result<BTreeMap<String, Json>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            map.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing content after object".to_string());
    }
    Ok(map)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next().ok_or("unterminated string")? {
                b'"' => return Ok(out),
                b'\\' => match self.next().ok_or("truncated escape")? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "non-ASCII \\u escape")?;
                        self.pos += 4;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u{hex}"))?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        out.push(c);
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                },
                // Multi-byte UTF-8: copy the raw bytes of this char.
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|n| n & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(s);
                }
                b => out.push(b as char),
            }
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("missing value")? {
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true").map(|()| Json::Bool(true)),
            b'f' => self.literal("false").map(|()| Json::Bool(false)),
            b'n' => self.literal("null").map(|()| Json::Null),
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                self.pos += 1;
                while self.peek().is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.pos += 1;
                }
                // The consumed bytes are all ASCII digits/signs, but a
                // wire parser never panics on principle: surface any
                // impossibility as a parse error instead.
                let tok = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-UTF-8 number token".to_string())?;
                // Validate: every number token must at least parse as f64.
                tok.parse::<f64>()
                    .map_err(|_| format!("bad number {tok:?}"))?;
                Ok(Json::Num(tok.to_string()))
            }
            b'{' | b'[' => Err("nested containers are not part of the protocol".to_string()),
            other => Err(format!("unexpected value start {:?}", other as char)),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected {word}"))
        }
    }
}

/// Builds the `alloc` request line for one function (already rendered
/// by [`lra_ir::textio::print`]).
pub fn alloc_request(id: u64, function_text: &str) -> String {
    alloc_request_deadline(id, function_text, None)
}

/// [`alloc_request`] with an optional relative deadline: with
/// `deadline_ms` set the request carries a wall-clock budget the
/// server anchors at parse time; past it, a still-queued request is
/// shed with [`RejectReason::DeadlineExceeded`] instead of served.
pub fn alloc_request_deadline(id: u64, function_text: &str, deadline_ms: Option<u64>) -> String {
    alloc_request_full(id, function_text, deadline_ms, None, false)
}

/// The fully-general `alloc` request builder: optional relative
/// deadline, optional correlation `trace_id` (echoed in the
/// response), optional `trace:true` (the response then carries flat
/// per-phase timing fields). [`alloc_request`] and
/// [`alloc_request_deadline`] are the common-case shorthands.
pub fn alloc_request_full(
    id: u64,
    function_text: &str,
    deadline_ms: Option<u64>,
    trace_id: Option<&str>,
    trace: bool,
) -> String {
    let mut line = format!(
        "{{\"op\":\"alloc\",\"id\":{id},\"fn\":\"{}\"",
        escape(function_text)
    );
    if let Some(ms) = deadline_ms {
        let _ = write!(line, ",\"deadline_ms\":{ms}");
    }
    if let Some(tid) = trace_id {
        let _ = write!(line, ",\"trace_id\":\"{}\"", escape(tid));
    }
    if trace {
        line.push_str(",\"trace\":true");
    }
    line.push('}');
    line
}

/// Builds a bare-op request line (`stats`, `metrics`, `shutdown`).
pub fn op_request(id: u64, op: &str) -> String {
    format!("{{\"op\":\"{}\",\"id\":{id}}}", escape(op))
}

/// Builds the response line for one completed request.
pub fn alloc_response(id: u64, row: &ReportRow) -> String {
    match &row.outcome {
        Ok(r) => format!(
            "{{\"id\":{id},\"ok\":true,\"function\":\"{}\",\"spill_cost\":{},\"rounds\":{},\"stores\":{},\"loads\":{},\"converged\":{},\"verified\":{},\"escalated\":{}}}",
            escape(&row.function),
            r.spill_cost,
            r.rounds,
            r.stores,
            r.loads,
            r.converged,
            r.verified,
            r.escalated
        ),
        Err(e) => format!(
            "{{\"id\":{id},\"ok\":false,\"function\":\"{}\",\"error\":\"{}\"}}",
            escape(&row.function),
            escape(e)
        ),
    }
}

/// [`alloc_response`] with the optional trace extensions: the
/// request's `trace_id` echoed verbatim, and — for a successful row
/// whose request asked `trace:true` — the per-phase timing report as
/// **flat** scalar fields (the protocol's parser rejects nested
/// containers by design): `trace_total_us`, one `phase_<name>_us`
/// self-time per [`lra_core::trace::Phase`], `trace_rounds`,
/// `trace_spill_delta`, `trace_fuel`, `trace_cache_hits` and
/// `trace_cache_misses`. Without either extension this is byte-for-
/// byte [`alloc_response`].
pub fn alloc_response_traced(
    id: u64,
    row: &ReportRow,
    trace_id: Option<&str>,
    trace: Option<&lra_core::trace::TraceReport>,
) -> String {
    let mut line = alloc_response(id, row);
    let mut extra = String::new();
    if let Some(tid) = trace_id {
        let _ = write!(extra, ",\"trace_id\":\"{}\"", escape(tid));
    }
    if let (Some(t), Ok(_)) = (trace, &row.outcome) {
        let _ = write!(extra, ",\"trace_total_us\":{}", t.total_self_ns() / 1_000);
        for phase in lra_core::trace::Phase::ALL {
            let _ = write!(
                extra,
                ",\"phase_{}_us\":{}",
                phase.name(),
                t.phase_self_us(phase)
            );
        }
        let _ = write!(
            extra,
            ",\"trace_rounds\":{},\"trace_spill_delta\":{},\"trace_fuel\":{},\
             \"trace_cache_hits\":{},\"trace_cache_misses\":{}",
            t.rounds,
            t.spill_delta,
            t.fuel,
            t.cache_hits(),
            t.cache_misses()
        );
    }
    if !extra.is_empty() {
        debug_assert!(line.ends_with('}'));
        line.pop();
        line.push_str(&extra);
        line.push('}');
    }
    line
}

/// Why the server shed a request instead of serving it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded request queue was full — backpressure; the request
    /// is safe to resubmit after a backoff.
    QueueFull,
    /// The request's `deadline_ms` budget ran out while it was still
    /// queued — resubmitting is pointless unless the caller extends
    /// the deadline.
    DeadlineExceeded,
}

impl RejectReason {
    /// The wire token carried in the `reason` field.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::DeadlineExceeded => "deadline_exceeded",
        }
    }

    fn from_wire(token: Option<&str>) -> Self {
        // Absent/unknown reasons read as backpressure: that was the
        // only rejection cause before reasons existed, so old servers
        // stay interpretable.
        match token {
            Some("deadline_exceeded") => RejectReason::DeadlineExceeded,
            _ => RejectReason::QueueFull,
        }
    }
}

/// Builds the load-shedding rejection line.
pub fn rejected_response(id: u64, reason: RejectReason) -> String {
    rejected_response_traced(id, reason, None)
}

/// [`rejected_response`] with the request's `trace_id` echoed, so a
/// pipelined caller can correlate sheds too (a shed request has no
/// timing to report — the pipeline never ran).
pub fn rejected_response_traced(id: u64, reason: RejectReason, trace_id: Option<&str>) -> String {
    let mut line = format!(
        "{{\"id\":{id},\"rejected\":true,\"reason\":\"{}\"",
        reason.as_str()
    );
    if let Some(tid) = trace_id {
        let _ = write!(line, ",\"trace_id\":\"{}\"", escape(tid));
    }
    line.push('}');
    line
}

/// Builds a protocol-error response (unparsable request, bad function
/// text, unknown op).
pub fn error_response(id: Option<u64>, msg: &str) -> String {
    match id {
        Some(id) => format!("{{\"id\":{id},\"ok\":false,\"error\":\"{}\"}}", escape(msg)),
        None => format!("{{\"ok\":false,\"error\":\"{}\"}}", escape(msg)),
    }
}

/// Decodes a response line back into `(id, ReportRow)`, or the
/// rejection/readiness variants the client loop handles.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A completed request's row.
    Row {
        /// Echoed request id.
        id: u64,
        /// The report row.
        row: ReportRow,
    },
    /// The request was shed; whether resubmitting can help depends on
    /// the reason.
    Rejected {
        /// Echoed request id.
        id: u64,
        /// Why the server shed it.
        reason: RejectReason,
    },
    /// A non-alloc reply (stats/shutdown acks) or a protocol error —
    /// the raw field map for the caller to pick over.
    Other {
        /// Echoed request id, when present.
        id: Option<u64>,
        /// The raw parsed fields.
        fields: BTreeMap<String, Json>,
    },
}

/// Parses one server response line.
///
/// # Errors
///
/// Returns a description when the line is not valid protocol JSON or
/// an `ok:true` row is missing a required column.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let fields = parse_object(line)?;
    let id = fields.get("id").and_then(Json::as_u64);
    if fields.get("rejected").and_then(Json::as_bool) == Some(true) {
        return Ok(Response::Rejected {
            id: id.ok_or("rejected response without id")?,
            reason: RejectReason::from_wire(fields.get("reason").and_then(Json::as_str)),
        });
    }
    let function = fields.get("function").and_then(Json::as_str);
    match (fields.get("ok").and_then(Json::as_bool), function) {
        (Some(true), Some(function)) => {
            let need = |k: &str| -> Result<u64, String> {
                fields
                    .get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("response missing {k}"))
            };
            let flag = |k: &str| -> Result<bool, String> {
                fields
                    .get(k)
                    .and_then(Json::as_bool)
                    .ok_or_else(|| format!("response missing {k}"))
            };
            Ok(Response::Row {
                id: id.ok_or("row response without id")?,
                row: ReportRow {
                    function: function.to_string(),
                    outcome: Ok(RowStats {
                        spill_cost: need("spill_cost")?,
                        rounds: need("rounds")? as u32,
                        stores: need("stores")? as usize,
                        loads: need("loads")? as usize,
                        converged: flag("converged")?,
                        verified: flag("verified")?,
                        escalated: flag("escalated")?,
                    }),
                },
            })
        }
        (Some(false), Some(function)) => Ok(Response::Row {
            id: id.ok_or("row response without id")?,
            row: ReportRow {
                function: function.to_string(),
                outcome: Err(fields
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string()),
            },
        }),
        _ => Ok(Response::Other { id, fields }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_round_trip() {
        let line = r#"{"op":"alloc","id":3,"fn":"fn f\nbb0: succs=-\nend\n","deep":null,"x":-1.5e3,"b":false}"#;
        let map = parse_object(line).unwrap();
        assert_eq!(map["op"].as_str(), Some("alloc"));
        assert_eq!(map["id"].as_u64(), Some(3));
        assert_eq!(map["fn"].as_str(), Some("fn f\nbb0: succs=-\nend\n"));
        assert_eq!(map["deep"], Json::Null);
        assert_eq!(map["b"].as_bool(), Some(false));
        assert_eq!(map["x"], Json::Num("-1.5e3".to_string()));
    }

    #[test]
    fn escape_and_unescape_agree() {
        let nasty = "a\"b\\c\nd\te\u{1}f ünicode 💡";
        let line = format!("{{\"s\":\"{}\"}}", escape(nasty));
        let map = parse_object(&line).unwrap();
        assert_eq!(map["s"].as_str(), Some(nasty));
    }

    #[test]
    fn malformed_objects_are_rejected() {
        for bad in [
            "",
            "{",
            "{}x",
            r#"{"a":}"#,
            r#"{"a":[1]}"#,
            r#"{"a":{"b":1}}"#,
            r#"{"a":truthy}"#,
            r#"{"a":"unterminated}"#,
            r#"{"a":1,}"#,
        ] {
            assert!(parse_object(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn alloc_responses_round_trip() {
        let ok = ReportRow {
            function: "jit::m0".to_string(),
            outcome: Ok(RowStats {
                spill_cost: 42,
                rounds: 3,
                stores: 7,
                loads: 9,
                converged: true,
                verified: true,
                escalated: false,
            }),
        };
        let err = ReportRow {
            function: "jit::m1".to_string(),
            outcome: Err("pipeline panicked: \"boom\"".to_string()),
        };
        for (id, row) in [(5u64, &ok), (6, &err)] {
            let line = alloc_response(id, row);
            match parse_response(&line).unwrap() {
                Response::Row { id: got, row: r } => {
                    assert_eq!(got, id);
                    assert_eq!(&r, row);
                }
                other => panic!("expected row, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejection_and_error_lines_parse() {
        match parse_response(&rejected_response(11, RejectReason::QueueFull)).unwrap() {
            Response::Rejected { id, reason } => {
                assert_eq!(id, 11);
                assert_eq!(reason, RejectReason::QueueFull);
            }
            other => panic!("{other:?}"),
        }
        match parse_response(&rejected_response(12, RejectReason::DeadlineExceeded)).unwrap() {
            Response::Rejected { id, reason } => {
                assert_eq!(id, 12);
                assert_eq!(reason, RejectReason::DeadlineExceeded);
            }
            other => panic!("{other:?}"),
        }
        // A reason-less rejection (pre-reason servers) reads as
        // backpressure.
        match parse_response(r#"{"id":13,"rejected":true}"#).unwrap() {
            Response::Rejected { id, reason } => {
                assert_eq!(id, 13);
                assert_eq!(reason, RejectReason::QueueFull);
            }
            other => panic!("{other:?}"),
        }
        match parse_response(&error_response(Some(2), "bad fn")).unwrap() {
            Response::Other { id, fields } => {
                assert_eq!(id, Some(2));
                assert_eq!(fields["error"].as_str(), Some("bad fn"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn request_builders_emit_single_lines() {
        let req = alloc_request(0, "fn f values=1 entry=0 params=-\nbb0: succs=-\nend\n");
        assert!(!req.contains('\n'));
        let map = parse_object(&req).unwrap();
        assert_eq!(map["op"].as_str(), Some("alloc"));
        assert!(map["fn"].as_str().unwrap().contains("bb0"));
        let map = parse_object(&op_request(1, "stats")).unwrap();
        assert_eq!(map["op"].as_str(), Some("stats"));
    }

    #[test]
    fn traced_requests_and_responses_stay_flat_and_parse() {
        let req = alloc_request_full(
            5,
            "fn f values=0 entry=0 params=-\nbb0: succs=-\nend\n",
            Some(100),
            Some("req-5"),
            true,
        );
        let map = parse_object(&req).unwrap();
        assert_eq!(map["trace_id"].as_str(), Some("req-5"));
        assert_eq!(map["trace"].as_bool(), Some(true));
        assert_eq!(map["deadline_ms"].as_u64(), Some(100));

        let row = ReportRow {
            function: "jit::m0".to_string(),
            outcome: Ok(RowStats {
                spill_cost: 42,
                rounds: 3,
                stores: 7,
                loads: 9,
                converged: true,
                verified: true,
                escalated: false,
            }),
        };
        // Without extensions, byte-identical to the plain builder.
        assert_eq!(
            alloc_response_traced(5, &row, None, None),
            alloc_response(5, &row)
        );
        let mut t = lra_core::trace::TraceReport::default();
        t.phases[lra_core::trace::Phase::Allocate as usize].self_ns = 301_000;
        t.phases[lra_core::trace::Phase::Allocate as usize].count = 3;
        t.rounds = 3;
        t.fuel = 100_000;
        t.shard_hits[2] = 1;
        let line = alloc_response_traced(5, &row, Some("req-5"), Some(&t));
        // The extended line is still one flat object the protocol
        // parser accepts, and the standard row survives intact.
        let fields = parse_object(&line).unwrap();
        assert_eq!(fields["trace_id"].as_str(), Some("req-5"));
        assert_eq!(fields["phase_allocate_us"].as_u64(), Some(301));
        assert_eq!(fields["trace_total_us"].as_u64(), Some(301));
        assert_eq!(fields["trace_rounds"].as_u64(), Some(3));
        assert_eq!(fields["trace_fuel"].as_u64(), Some(100_000));
        assert_eq!(fields["trace_cache_hits"].as_u64(), Some(1));
        assert_eq!(fields["trace_cache_misses"].as_u64(), Some(0));
        match parse_response(&line).unwrap() {
            Response::Row { id, row: parsed } => {
                assert_eq!(id, 5);
                assert_eq!(parsed, row);
            }
            other => panic!("expected row, got {other:?}"),
        }
        // An error row echoes the trace_id but carries no timing (the
        // pipeline failed; there is nothing to attribute).
        let err = ReportRow {
            function: "jit::m1".to_string(),
            outcome: Err("boom".to_string()),
        };
        let line = alloc_response_traced(6, &err, Some("req-6"), Some(&t));
        let fields = parse_object(&line).unwrap();
        assert_eq!(fields["trace_id"].as_str(), Some("req-6"));
        assert!(!fields.contains_key("trace_total_us"));

        let rej = rejected_response_traced(7, RejectReason::QueueFull, Some("req-7"));
        let fields = parse_object(&rej).unwrap();
        assert_eq!(fields["trace_id"].as_str(), Some("req-7"));
        match parse_response(&rej).unwrap() {
            Response::Rejected { id, reason } => {
                assert_eq!((id, reason), (7, RejectReason::QueueFull));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deadline_requests_carry_the_budget() {
        let req = alloc_request_deadline(
            9,
            "fn f values=0 entry=0 params=-\nbb0: succs=-\nend\n",
            Some(250),
        );
        let map = parse_object(&req).unwrap();
        assert_eq!(map["deadline_ms"].as_u64(), Some(250));
        // Without a deadline the field is absent, keeping the wire
        // format of deadline-free clients unchanged.
        let bare = alloc_request(9, "fn f values=0 entry=0 params=-\nbb0: succs=-\nend\n");
        assert!(!parse_object(&bare).unwrap().contains_key("deadline_ms"));
    }
}
