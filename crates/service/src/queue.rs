//! The bounded MPSC request queue behind [`crate::AllocationService`].
//!
//! Backpressure is explicit: [`BoundedQueue::try_push`] returns the
//! item back in [`PushError::Full`] instead of blocking, so a producer
//! (an in-process submitter or a TCP connection thread) can surface a
//! `queue_full` rejection immediately rather than stalling the caller
//! for an unbounded time. Consumers block in [`BoundedQueue::pop`]
//! (or claim short runs via [`BoundedQueue::pop_run`]) until work
//! arrives or the queue is closed **and drained** — close never drops
//! accepted items, which is what makes graceful shutdown lossless.
//!
//! Two contention rules keep the lock cold under load:
//!
//! * pushes signal the condvar only when a consumer is actually
//!   blocked (a waiter count lives under the mutex), so the common
//!   busy-pool case — every worker mid-pipeline, items queueing up —
//!   pays zero syscalls per push;
//! * [`BoundedQueue::pop_run`] lets a worker claim up to half the
//!   queued items (capped) in one lock acquisition instead of
//!   re-locking per job, while the half rule keeps late-arriving
//!   workers from starving.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why a push was refused (the item is handed back in both cases).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue holds `capacity` items; the caller should reject the
    /// request (or retry later).
    Full(T),
    /// The queue was closed by shutdown; no new work is accepted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Most items ever queued at once — the backpressure gauge the
    /// service metrics report.
    high_water: usize,
    /// Consumers currently blocked in the condvar wait. Pushes skip
    /// the notify syscall entirely when this is zero.
    waiters: usize,
}

/// A Mutex+Condvar bounded MPSC queue (std-only, no lock-free games:
/// the per-item work — a whole allocation pipeline run — dwarfs any
/// queue overhead by orders of magnitude).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Locks the state, recovering from a poisoned mutex. No caller
    /// code runs under this lock (every critical section is a handful
    /// of `VecDeque`/counter operations that cannot unwind mid-update),
    /// so a poison mark only records that some *other* code on the
    /// thread panicked — the queue state itself is always consistent
    /// and losing it would drop accepted requests for nothing.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// An empty queue accepting at most `capacity` items at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (nothing could ever be enqueued).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue rejects everything");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                high_water: 0,
                waiters: 0,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `item`, or returns it in a [`PushError`] when the
    /// queue is full or closed. Never blocks.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        // Signal only when somebody is actually asleep: the waiter
        // count is maintained under this same mutex, so a zero here
        // proves no consumer is (or can be about to start) waiting on
        // an empty queue — they will see this item before blocking.
        let wake = state.waiters > 0;
        drop(state);
        if wake {
            self.available.notify_one();
        }
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` only once the queue is closed **and** fully
    /// drained — a worker seeing `None` can exit knowing no accepted
    /// request remains.
    pub fn pop(&self) -> Option<T> {
        self.pop_run(1).pop()
    }

    /// Dequeues a short **run** of oldest items in one lock
    /// acquisition, blocking while the queue is empty. Claims at most
    /// `max` items and at most half of what is queued (rounded up), so
    /// one worker never strips a burst bare while its siblings go
    /// hungry. Returns an empty vector only once the queue is closed
    /// **and** fully drained — the same exit signal as a `None` from
    /// [`BoundedQueue::pop`].
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn pop_run(&self, max: usize) -> Vec<T> {
        assert!(max > 0, "a zero-length run would never make progress");
        let mut state = self.lock();
        loop {
            let queued = state.items.len();
            if queued > 0 {
                let take = queued.div_ceil(2).min(max);
                let run: Vec<T> = state.items.drain(..take).collect();
                // Pushes wake one consumer per item; by taking several
                // items for one wakeup we may owe the remainder to a
                // still-blocked sibling — pass the signal on.
                let wake = !state.items.is_empty() && state.waiters > 0;
                drop(state);
                if wake {
                    self.available.notify_one();
                }
                return run;
            }
            if state.closed {
                return Vec::new();
            }
            state.waiters += 1;
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
            state.waiters -= 1;
        }
    }

    /// Closes the queue: future pushes fail with
    /// [`PushError::Closed`], and blocked consumers wake to drain the
    /// remaining items before seeing `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently queued (not the ones being worked on).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Most items ever queued at once.
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_high_water() {
        let q = BoundedQueue::new(4);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        q.try_push(9).unwrap();
        assert_eq!(q.high_water(), 3, "high water is a max, not a gauge");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(9));
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // Draining one slot re-opens the queue.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_signals_none() {
        let q = BoundedQueue::new(4);
        q.try_push('a').unwrap();
        q.try_push('b').unwrap();
        q.close();
        match q.try_push('c') {
            Err(PushError::Closed(item)) => assert_eq!(item, 'c'),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "None is sticky");
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(2));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        // Give the consumer a moment to block, then feed and close.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn pop_run_claims_at_most_half_the_queue() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        // Half of 6 is 3 (cap 4 not binding), then half of 3 rounds
        // up to 2, then the last item comes alone.
        assert_eq!(q.pop_run(4), vec![0, 1, 2]);
        assert_eq!(q.pop_run(4), vec![3, 4]);
        assert_eq!(q.pop_run(4), vec![5]);
    }

    #[test]
    fn pop_run_respects_the_max_cap() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_run(2), vec![0, 1], "half of 10 capped to 2");
    }

    #[test]
    fn pop_run_drains_then_returns_empty_after_close() {
        let q = BoundedQueue::new(4);
        q.try_push('x').unwrap();
        q.close();
        assert_eq!(q.pop_run(8), vec!['x']);
        assert!(q.pop_run(8).is_empty(), "empty run is the exit signal");
        assert!(q.pop_run(8).is_empty(), "and it is sticky");
    }

    #[test]
    fn pop_run_consumers_share_a_burst_losslessly() {
        let q = Arc::new(BoundedQueue::new(32));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let run = q.pop_run(4);
                        if run.is_empty() {
                            return got;
                        }
                        got.extend(run);
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(10));
        for i in 0..20 {
            q.try_push(i).unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }
}
