//! The bounded MPSC request queue behind [`crate::AllocationService`].
//!
//! Backpressure is explicit: [`BoundedQueue::try_push`] returns the
//! item back in [`PushError::Full`] instead of blocking, so a producer
//! (an in-process submitter or a TCP connection thread) can surface a
//! `queue_full` rejection immediately rather than stalling the caller
//! for an unbounded time. Consumers block in [`BoundedQueue::pop`]
//! until work arrives or the queue is closed **and drained** — close
//! never drops accepted items, which is what makes graceful shutdown
//! lossless.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused (the item is handed back in both cases).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue holds `capacity` items; the caller should reject the
    /// request (or retry later).
    Full(T),
    /// The queue was closed by shutdown; no new work is accepted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Most items ever queued at once — the backpressure gauge the
    /// service metrics report.
    high_water: usize,
}

/// A Mutex+Condvar bounded MPSC queue (std-only, no lock-free games:
/// the per-item work — a whole allocation pipeline run — dwarfs any
/// queue overhead by orders of magnitude).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue accepting at most `capacity` items at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (nothing could ever be enqueued).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue rejects everything");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                high_water: 0,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `item`, or returns it in a [`PushError`] when the
    /// queue is full or closed. Never blocks.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` only once the queue is closed **and** fully
    /// drained — a worker seeing `None` can exit knowing no accepted
    /// request remains.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes fail with
    /// [`PushError::Closed`], and blocked consumers wake to drain the
    /// remaining items before seeing `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Items currently queued (not the ones being worked on).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Most items ever queued at once.
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("queue lock").high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_high_water() {
        let q = BoundedQueue::new(4);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        q.try_push(9).unwrap();
        assert_eq!(q.high_water(), 3, "high water is a max, not a gauge");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(9));
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // Draining one slot re-opens the queue.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_signals_none() {
        let q = BoundedQueue::new(4);
        q.try_push('a').unwrap();
        q.try_push('b').unwrap();
        q.close();
        match q.try_push('c') {
            Err(PushError::Closed(item)) => assert_eq!(item, 'c'),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "None is sticky");
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(2));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        // Give the consumer a moment to block, then feed and close.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
