//! The TCP front end: JSON-lines over `std::net`, one connection
//! thread per client, responses written from the worker callbacks.

use crate::proto;
use crate::service::{AllocationService, ServeOutcome, ServiceConfig, SubmitError};
use crate::ServiceMetrics;
use lra_ir::textio;
use std::io::{self, BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running TCP allocation server. Dropping it (or calling
/// [`Server::wait`] after a client sent `shutdown`) drains the
/// underlying [`AllocationService`] losslessly.
pub struct Server {
    local_addr: SocketAddr,
    service: Arc<AllocationService>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

/// Binds `addr` (e.g. `127.0.0.1:7411`, or port `0` for an ephemeral
/// port) and starts accepting JSON-lines clients on a background
/// thread. See [`crate::proto`] for the wire format.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(addr: &str, cfg: ServiceConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let read_timeout = cfg.read_timeout;
    let service = Arc::new(AllocationService::start(cfg));
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(&listener, &service, &stop, read_timeout))
    };
    Ok(Server {
        local_addr,
        service,
        stop,
        accept: Some(accept),
    })
}

impl Server {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A live metrics snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        self.service.metrics()
    }

    /// Counts of the faults injected so far, when the server was
    /// started with a fault plan (`None` otherwise).
    #[cfg(any(test, feature = "chaos"))]
    pub fn fault_report(&self) -> Option<crate::fault::FaultReport> {
        self.service.fault_report()
    }

    /// Asks the accept loop to stop, as the in-process equivalent of a
    /// client `shutdown` op. [`Server::wait`] then drains and joins.
    pub fn request_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Blocks until shutdown is requested (by a client `shutdown` op
    /// or [`Server::request_shutdown`]), then drains every accepted
    /// request and returns the final metrics.
    pub fn wait(mut self) -> ServiceMetrics {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.service.shutdown()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.request_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.service.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<AllocationService>,
    stop: &Arc<AtomicBool>,
    read_timeout: Duration,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                let addr = listener.local_addr().ok();
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &service, &stop, addr, read_timeout);
                });
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // Persistent accept errors (fd exhaustion under the
                // thread-per-connection model) must not busy-spin the
                // accept thread against the allocation workers.
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
}

/// The largest `values=` header an alloc request may carry. The
/// header legitimately exceeds the values mentioned in the body (the
/// codec round-trips sparse functions), but it also sizes every
/// per-value analysis table — without a lid, a 40-byte request
/// claiming four billion values would make a worker allocate
/// gigabytes. Far above any real corpus (~200 temporaries), far below
/// harm.
pub const MAX_REQUEST_VALUES: u32 = 1_000_000;

/// How long a worker callback may block writing a response before the
/// connection is declared dead. A client that stops *reading* would
/// otherwise wedge the worker mid-`write_all` forever — stalling the
/// whole pool and hanging shutdown drain.
const WRITE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// A connection's shared write side. `dead` latches on the first
/// write failure (including the [`WRITE_TIMEOUT`]) so later worker
/// callbacks return immediately instead of queueing up on a socket
/// nobody reads — a timed-out write may have left a partial line, so
/// the stream is unusable for framing anyway.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

/// Writes one response line (newline-terminated, flushed) under the
/// connection's write lock, so worker callbacks and the connection
/// thread never interleave partial lines. A dead peer is not an error
/// worth unwinding over: the request was served; only the
/// notification is lost.
fn write_line(writer: &ConnWriter, line: &str) {
    if writer.dead.load(Ordering::Relaxed) {
        return;
    }
    let mut w = writer.stream.lock().unwrap_or_else(PoisonError::into_inner);
    let ok = w
        .write_all(line.as_bytes())
        .and_then(|()| w.write_all(b"\n"))
        .and_then(|()| w.flush())
        .is_ok();
    if !ok {
        writer.dead.store(true, Ordering::Relaxed);
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &Arc<AllocationService>,
    stop: &Arc<AtomicBool>,
    self_addr: Option<SocketAddr>,
    read_timeout: Duration,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(WRITE_TIMEOUT)).ok();
    stream.set_read_timeout(Some(read_timeout)).ok();
    let reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(stream),
        dead: AtomicBool::new(false),
    });
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            // A peer silent past the read timeout is treated as gone
            // (the mirror of WRITE_TIMEOUT): the handler thread exits
            // instead of being pinned forever. In-flight responses
            // still flush — worker callbacks hold their own writer Arc.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                break;
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let fields = match proto::parse_object(&line) {
            Ok(f) => f,
            Err(e) => {
                write_line(
                    &writer,
                    &proto::error_response(None, &format!("bad request: {e}")),
                );
                continue;
            }
        };
        let id = fields.get("id").and_then(proto::Json::as_u64);
        let op = fields.get("op").and_then(proto::Json::as_str).unwrap_or("");
        match (op, id) {
            ("alloc", Some(id)) => {
                let text = match fields.get("fn").and_then(proto::Json::as_str) {
                    Some(t) => t,
                    None => {
                        write_line(
                            &writer,
                            &proto::error_response(Some(id), "alloc without fn"),
                        );
                        continue;
                    }
                };
                let function = match textio::parse(text) {
                    Ok(f) => f,
                    Err(e) => {
                        write_line(
                            &writer,
                            &proto::error_response(Some(id), &format!("bad function: {e}")),
                        );
                        continue;
                    }
                };
                if function.value_count > MAX_REQUEST_VALUES {
                    write_line(
                        &writer,
                        &proto::error_response(
                            Some(id),
                            &format!(
                                "function too large: {} values exceeds the {} limit",
                                function.value_count, MAX_REQUEST_VALUES
                            ),
                        ),
                    );
                    continue;
                }
                // A request-carried relative deadline is anchored here,
                // at parse time: queue wait counts against it.
                let deadline = fields
                    .get("deadline_ms")
                    .and_then(proto::Json::as_u64)
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                // Optional trace extensions: a correlation id echoed
                // in every response to this request, and a per-request
                // tracing flag (the worker arms lra_core::trace around
                // the run; the response gains flat phase timings).
                let trace_id = fields
                    .get("trace_id")
                    .and_then(proto::Json::as_str)
                    .map(str::to_string);
                let trace = fields.get("trace").and_then(proto::Json::as_bool) == Some(true);
                let reject_trace_id = trace_id.clone();
                let cb_writer = Arc::clone(&writer);
                #[cfg(any(test, feature = "chaos"))]
                let cb_service = Arc::clone(service);
                let on_done = move |outcome| {
                    let line = match outcome {
                        ServeOutcome::Served(item) => proto::alloc_response_traced(
                            id,
                            &item.row(),
                            trace_id.as_deref(),
                            // Timings only when this request asked for
                            // them — a globally traced server (LRA_TRACE)
                            // keeps its wire format unchanged.
                            if trace { item.trace.as_ref() } else { None },
                        ),
                        ServeOutcome::DeadlineExpired { .. } => proto::rejected_response_traced(
                            id,
                            proto::RejectReason::DeadlineExceeded,
                            trace_id.as_deref(),
                        ),
                    };
                    #[cfg(any(test, feature = "chaos"))]
                    if cb_service
                        .fault_injector()
                        .is_some_and(|inj| inj.next_write_drops())
                    {
                        sever_mid_response(&cb_writer, &line);
                        return;
                    }
                    write_line(&cb_writer, &line);
                };
                let submitted = if trace {
                    service.submit_traced_with(function, deadline, on_done)
                } else {
                    service.submit_with_deadline(function, deadline, on_done)
                };
                match submitted {
                    Ok(()) => {}
                    Err(SubmitError::QueueFull { .. }) => {
                        write_line(
                            &writer,
                            &proto::rejected_response_traced(
                                id,
                                proto::RejectReason::QueueFull,
                                reject_trace_id.as_deref(),
                            ),
                        );
                    }
                    Err(SubmitError::ShuttingDown { .. }) => {
                        write_line(
                            &writer,
                            &proto::error_response(Some(id), "service is shutting down"),
                        );
                    }
                }
            }
            ("stats", Some(id)) => {
                write_line(&writer, &stats_response(id, &service.metrics()));
            }
            ("metrics", Some(_id)) => {
                // Prometheus text exposition: a deliberately non-JSON,
                // multi-line payload ending in `# EOF`. One write_line
                // call keeps it contiguous under the connection's
                // write lock even while worker callbacks are writing
                // response lines.
                write_line(&writer, &service.metrics().render_prometheus());
            }
            ("shutdown", Some(id)) => {
                write_line(
                    &writer,
                    &format!("{{\"id\":{id},\"ok\":true,\"stopping\":true}}"),
                );
                stop.store(true, Ordering::SeqCst);
                if let Some(addr) = self_addr {
                    // Wake the accept loop so Server::wait can drain.
                    let _ = TcpStream::connect(addr);
                }
            }
            (_, None) => {
                write_line(&writer, &proto::error_response(None, "request without id"));
            }
            (other, Some(id)) => {
                write_line(
                    &writer,
                    &proto::error_response(Some(id), &format!("unknown op {other:?}")),
                );
            }
        }
    }
    Ok(())
}

/// The chaos drop fault: flush half the response line, then sever the
/// connection — the torn frame is what a client's resilience layer
/// must survive. The byte split cannot tear a UTF-8 char across the
/// cut because raw bytes are written, and the latched `dead` flag
/// keeps later callbacks off the corpse.
#[cfg(any(test, feature = "chaos"))]
fn sever_mid_response(writer: &ConnWriter, line: &str) {
    let mut w = writer.stream.lock().unwrap_or_else(PoisonError::into_inner);
    let cut = line.len() / 2;
    let _ = w.write_all(&line.as_bytes()[..cut]);
    let _ = w.flush();
    let _ = w.shutdown(std::net::Shutdown::Both);
    writer.dead.store(true, Ordering::Relaxed);
}

/// Serialises a metrics snapshot as the `stats` response line.
fn stats_response(id: u64, m: &ServiceMetrics) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"served\":{},\"rejected\":{},\"degraded\":{},\"deadline_exceeded\":{},\"queue_high_water\":{},\"queue_capacity\":{},\"workers\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\"p50_us\":{},\"p95_us\":{}}}",
        m.served,
        m.rejected,
        m.degraded,
        m.deadline_exceeded,
        m.queue_high_water,
        m.queue_capacity,
        m.workers,
        m.cache.hits,
        m.cache.misses,
        m.cache.evictions,
        m.p50.as_micros(),
        m.p95.as_micros(),
    )
}
